//! Figure 1, as a runnable simulation: a vehicle network with several
//! transmitting ECUs, a malicious node flooding the bus, and an
//! IDS-capable ECU scanning all messages for possible attacks.
//!
//! ```sh
//! cargo run --release -p canids-core --example vehicle_network
//! ```

use canids_can::node::CanController;
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Train a quick DoS detector first (the IDS ECU's model).
    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let capture = pipeline.generate_capture();
    let detector = pipeline.train(&capture)?;
    let ip = pipeline.compile(&detector.int_mlp)?;

    // Build the high-speed CAN segment of Fig. 1.
    let mut bus = Bus::new(BusConfig {
        bitrate: Bitrate::HIGH_SPEED_500K,
        ..BusConfig::default()
    });
    let vehicle_sources = VehicleModel::sonata().into_sources(4, 99);
    let mut names = vec![];
    for (i, src) in vehicle_sources.into_iter().enumerate() {
        let node = bus.add_node(CanController::default());
        bus.attach_source(node, Box::new(src.with_horizon(SimTime::from_secs(2))));
        names.push((node, format!("ecu{i}")));
    }
    let attacker = bus.add_node(CanController::default());
    bus.attach_source(
        attacker,
        Box::new(
            AttackProfile::dos()
                .with_schedule(BurstSchedule::Periodic {
                    initial_delay: SimTime::from_millis(500),
                    on: SimTime::from_millis(500),
                    off: SimTime::from_millis(500),
                })
                .into_source(7, SimTime::from_secs(2)),
        ),
    );
    names.push((attacker, "malicious-node".to_owned()));
    let ids_node = bus.add_node(CanController::default());
    names.push((ids_node, "ids-ecu".to_owned()));

    bus.run_until(SimTime::from_secs(2));
    let events = bus.take_events();
    println!(
        "bus: {} frames in 2 s, utilization {:.1}%",
        events.len(),
        bus.stats().utilization(bus.now()) * 100.0
    );
    for (node, name) in &names {
        let s = bus.controller(*node).stats();
        println!(
            "  {name:<15} tx {:>6}  rx {:>6}  arb-losses {:>5}",
            s.tx_frames, s.rx_frames, s.arbitration_losses
        );
    }

    // The IDS ECU replays everything it observed through the accelerator.
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(ip)?;
    let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    let frames: Vec<(SimTime, CanFrame)> = events.iter().map(|e| (e.time, e.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let report = ecu.process_capture(&frames, &|f: &CanFrame| encoder.encode(f))?;

    let flagged = report.detections.iter().filter(|d| d.flagged).count();
    let dos_sent = events.iter().filter(|e| e.sender == attacker).count();
    println!(
        "\nids-ecu scanned {} frames: flagged {flagged} (attacker sent {dos_sent})",
        report.detections.len()
    );
    println!(
        "detection latency {:.3} ms mean / {:.3} ms max, {} dropped",
        report.mean_latency.as_millis_f64(),
        report.max_latency.as_millis_f64(),
        report.dropped
    );
    Ok(())
}
