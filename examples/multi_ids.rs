//! N-detector deployment: DoS, Fuzzy, gear-spoof and RPM-spoof
//! detectors planned, compiled and served together on one ZCU104 — the
//! paper's "comprehensive IDS integration" claim as a first-class
//! engine, with per-model folding budgets, shared feature packing and
//! the ECU scheduling-policy ablation.
//!
//! ```sh
//! cargo run --release -p canids-core --example multi_ids
//! ```

use canids_core::deploy::{DeploymentPlan, PlanConfig};
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Train all four detectors concurrently (one scoped thread each).
    let configs = [
        PipelineConfig::dos().quick(),
        PipelineConfig::fuzzy().quick(),
        PipelineConfig::gear_spoof().quick(),
        PipelineConfig::rpm_spoof().quick(),
    ];
    let mut bundles = Vec::new();
    for trained in IdsPipeline::train_many(&configs) {
        let (kind, detector) = trained?;
        println!("{:<12} {}", kind.slug(), detector.test_cm);
        bundles.push(detector.bundle(kind));
    }

    // Plan per-model folding budgets against the ZCU104, then compile
    // and attach every IP to one board.
    let plan = DeploymentPlan::build(&bundles, &PlanConfig::default())?;
    let mut table = Table::new(
        "Folding-budget plan (ZCU104)",
        &["Model", "Peak fps", "Demotions", "Resources"],
    );
    for m in &plan.models {
        table.push_row(&[
            m.name.clone(),
            format!("{:.0}", m.peak_fps),
            format!("{}", m.demotions),
            format!("{}", m.resources),
        ]);
    }
    println!("\n{table}");
    println!(
        "total {} | peak util {:.2}% | headroom for {} more of the largest IP",
        plan.total_resources,
        plan.utilization * 100.0,
        plan.headroom
    );
    let deployment = plan.deploy(&bundles, &CompileConfig::default(), EcuConfig::default())?;

    // A matching multi-attacker capture: fuzzy + gear-spoof overlaid on
    // one trace (a saturating DoS flood would starve the second
    // attacker off the bus).
    let mixed = canids_dataset::generator::multi_attacker(
        SimTime::from_secs(1),
        &[
            AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous),
            AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous),
        ],
        0x31D5,
    );
    let truth = mixed.iter().filter(|r| r.label.is_attack()).count();
    println!(
        "\nmixed capture: {} frames, {truth} attack frames (fuzzy + gear-spoof overlay)",
        mixed.len()
    );

    // Replay it at saturated 1 Mb/s wire pacing under every scheduling
    // policy through the unified harness (one EcuBackend, a fresh ECU
    // per replay): classification is identical by construction; timing,
    // drops and energy are the policy trade.
    let mut policies = Table::new(
        "Scheduling-policy ablation (1 Mb/s line rate, 4 detectors)",
        &[
            "Policy",
            "Offered fps",
            "p50",
            "p99",
            "Drops",
            "Energy/msg",
            "Keeps up",
        ],
    );
    let mut harness = ServeHarness::new(deployment.serve_backend());
    for policy in [
        SchedPolicy::Sequential,
        SchedPolicy::RoundRobin,
        SchedPolicy::DmaBatch { batch: 32 },
        SchedPolicy::InterruptPerFrame,
    ] {
        let report = harness.replay(&mixed, &ReplayConfig::default().with_policy(policy))?;
        let energy = report.energy.expect("the SoC path reports energy");
        policies.push_row(&[
            policy.label(),
            format!("{:.0}", report.offered_fps),
            format!("{:.1} us", report.latency.p50.as_micros_f64()),
            format!("{:.1} us", report.latency.p99.as_micros_f64()),
            format!("{}", report.dropped),
            format!("{:.3} mJ", energy.energy_per_message_j * 1e3),
            if report.keeps_up() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{policies}");
    println!(
        "the per-message policies pay the full driver path per frame and model;\n\
         DMA batching amortises it across the window — the first-class form of the\n\
         ablation_driver trade, now selectable per deployment"
    );
    Ok(())
}
