//! Multi-model deployment: DoS and Fuzzy detectors running
//! simultaneously on one ZCU104 — the paper's "comprehensive IDS
//! integration" claim, with the resource and power deltas.
//!
//! ```sh
//! cargo run --release -p canids-core --example multi_ids
//! ```

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Train both detectors on their own captures.
    let dos = IdsPipeline::new(PipelineConfig::dos().quick());
    let fuzzy = IdsPipeline::new(PipelineConfig::fuzzy().quick());
    let dos_detector = dos.train(&dos.generate_capture())?;
    let fuzzy_detector = fuzzy.train(&fuzzy.generate_capture())?;
    println!("dos   : {}", dos_detector.test_cm);
    println!("fuzzy : {}", fuzzy_detector.test_cm);

    // Deploy both IPs on one board.
    let mut deployment = deploy_multi_ids(
        &[
            DetectorBundle {
                kind: AttackKind::Dos,
                model: dos_detector.int_mlp.clone(),
            },
            DetectorBundle {
                kind: AttackKind::Fuzzy,
                model: fuzzy_detector.int_mlp.clone(),
            },
        ],
        CompileConfig::default(),
    )?;
    println!(
        "\ndeployed {:?}: total {}, ZCU104 peak util {:.2}%, headroom for {} more IPs",
        deployment.kinds,
        deployment.total_resources,
        deployment.utilization * 100.0,
        deployment.headroom
    );

    // Replay a mixed capture (DoS bursts over normal traffic) through the
    // dual-model ECU.
    let mixed = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_secs(2),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(400),
            on: SimTime::from_millis(400),
            off: SimTime::from_millis(400),
        })),
        seed: 0x31D5,
        ..TrafficConfig::default()
    })
    .build();
    let frames: Vec<(SimTime, CanFrame)> = mixed.iter().map(|r| (r.timestamp, r.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let report = deployment
        .ecu
        .process_capture(&frames, &|f: &CanFrame| encoder.encode(f))?;

    let flagged = report.detections.iter().filter(|d| d.flagged).count();
    let truth = mixed.iter().filter(|r| r.label.is_attack()).count();
    println!(
        "\nmixed capture: {} frames, {truth} attack frames, {flagged} flagged",
        mixed.len()
    );
    println!(
        "latency {:.3} ms (one model: ~0.118 ms; dual adds the arbitration margin)",
        report.mean_latency.as_millis_f64()
    );
    println!(
        "power {:.2} W, energy {:.3} mJ/msg",
        report.mean_power_w,
        report.energy_per_message_j * 1e3
    );
    Ok(())
}
