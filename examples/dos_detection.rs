//! Full DoS experiment: a 10-second capture with bursty 0x000 flooding,
//! paper-scale training, and an end-to-end evaluation.
//!
//! ```sh
//! cargo run --release -p canids-core --example dos_detection
//! ```

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let config = PipelineConfig {
        capture_duration: SimTime::from_secs(10),
        ..PipelineConfig::dos()
    };
    let pipeline = IdsPipeline::new(config);

    let capture = pipeline.generate_capture();
    println!("capture: {}", DatasetStats::of(&capture));

    let detector = pipeline.train(&capture)?;
    println!("test metrics : {}", detector.test_cm);

    let ip = pipeline.compile(&detector.int_mlp)?;
    println!(
        "IP           : latency {:.2} us, II {} cycles, {}",
        ip.latency_secs() * 1e6,
        ip.initiation_interval(),
        ip.resources()
    );

    let (ecu, agreement) = pipeline.deploy_and_replay(ip, &detector.test_set)?;
    println!(
        "ECU replay   : {:.3} ms/frame (max {:.3} ms), {:.0} frames/s, {:.2} W, {:.3} mJ",
        ecu.mean_latency.as_millis_f64(),
        ecu.max_latency.as_millis_f64(),
        ecu.throughput_fps,
        ecu.mean_power_w,
        ecu.energy_per_message_j * 1e3
    );
    println!("agreement    : {:.3}%", agreement * 100.0);

    let flagged = ecu.detections.iter().filter(|d| d.flagged).count();
    println!(
        "flagged      : {flagged}/{} frames in the replayed test capture",
        ecu.detections.len()
    );
    Ok(())
}
