//! The paper's design-space exploration: sweep uniform quantisation from
//! 2 to 8 bits and report accuracy vs resource cost. 4-bit should sit at
//! the knee (full accuracy, near-minimal cost).
//!
//! ```sh
//! cargo run --release -p canids-core --example dse_sweep
//! ```

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let config = PipelineConfig {
        capture_duration: SimTime::from_secs(4),
        ..PipelineConfig::fuzzy()
    };
    let capture = IdsPipeline::new(config.clone()).generate_capture();
    println!("capture: {}", DatasetStats::of(&capture));

    let report = sweep_bitwidths(&config, &capture, &[2, 3, 4, 6, 8])?;

    let mut table = Table::new(
        "DSE: uniform quantisation width (Fuzzy detector)",
        &[
            "bits",
            "precision",
            "recall",
            "F1",
            "FNR",
            "LUT",
            "BRAM",
            "ZCU104 util",
        ],
    );
    for p in &report.points {
        let (prec, rec, f1, fnr) = p.cm.table_row();
        table.push_row(&[
            format!("{}", p.bits),
            pct(prec),
            pct(rec),
            pct(f1),
            pct(fnr),
            format!("{}", p.luts),
            format!("{}", p.bram36),
            format!("{:.2}%", p.utilization * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "selected: {}-bit (paper selects 4-bit uniform quantisation)",
        report.selected_point().bits
    );
    Ok(())
}
