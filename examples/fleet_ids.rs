//! Cross-ECU fleet deployment: a vehicle's worth of detectors (four
//! trained kinds, tripled to twelve) sharded across six heterogeneous
//! boards, served through the gateway model at wire pacing, and governed
//! by the fleet admission policies — today's FIFO drops versus shedding
//! the lowest-value model under sustained overload.
//!
//! ```sh
//! cargo run --release -p canids-core --example fleet_ids
//! ```

use canids_core::fleet::FleetAction;
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Train the four detector kinds concurrently, then triple each into
    // a twelve-model fleet (duplicates are independent IPs).
    let configs = [
        PipelineConfig::dos().quick(),
        PipelineConfig::fuzzy().quick(),
        PipelineConfig::gear_spoof().quick(),
        PipelineConfig::rpm_spoof().quick(),
    ];
    let mut trained = Vec::new();
    for result in IdsPipeline::train_many(&configs) {
        let (kind, detector) = result?;
        println!("{:<12} {}", kind.slug(), detector.test_cm);
        trained.push((kind, detector));
    }
    let bundles: Vec<DetectorBundle> = (0..12)
        .map(|i| {
            let (kind, detector) = &trained[i % trained.len()];
            detector.bundle(*kind)
        })
        .collect();

    // Partition across six boards of three device classes; the admission
    // cap bounds per-board service load, not just resource fit.
    let fleet_config = FleetConfig::new(vec![
        BoardSpec::zcu104("zcu-a"),
        BoardSpec::zcu104("zcu-b"),
        BoardSpec::ultra96("u96-a"),
        BoardSpec::ultra96("u96-b"),
        BoardSpec::pynq_z2("pynq-a"),
        BoardSpec::pynq_z2("pynq-b"),
    ])
    .with_model_cap(2);
    let plan = FleetPlan::build(&bundles, &fleet_config)?;
    let mut table = Table::new(
        "Fleet plan (12 detectors, 6 boards)",
        &["Board", "Device", "Models", "Peak util"],
    );
    for shard in &plan.shards {
        table.push_row(&[
            shard.spec.name.clone(),
            shard.spec.device.name.to_owned(),
            format!("{}", shard.members.len()),
            format!("{:.2}%", shard.utilization() * 100.0),
        ]);
    }
    println!("\n{table}");
    let deployment = plan.deploy(&bundles, &CompileConfig::default())?;

    // One capture, three fleet replays: the DMA-batch integration at
    // saturated 1 Mb/s (zero drops), and a per-message overload under
    // both admission policies (one drops, one sheds).
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(300),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xF1EE7,
        ..TrafficConfig::default()
    })
    .build();
    let priorities: Vec<u32> = (0..12u32).map(|i| 100 - i).collect();
    let overload = ReplayConfig::default()
        .with_bitrate(Bitrate::new(750_000))
        .with_policy(SchedPolicy::Sequential);
    let scenarios = vec![
        ServeScenario {
            name: "dma-batch-32 @ 1M".into(),
            source: CaptureSource::Capture(&capture),
            config: ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 }),
        },
        ServeScenario {
            name: "sequential @ 750k".into(),
            source: CaptureSource::Capture(&capture),
            config: overload.clone(),
        },
        ServeScenario {
            name: "sequential @ 750k, shed".into(),
            source: CaptureSource::Capture(&capture),
            config: overload
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: priorities.clone(),
                }),
        },
        ServeScenario {
            name: "sequential @ 750k, measured".into(),
            source: CaptureSource::Capture(&capture),
            config: overload
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestMeasuredValue {
                    window: 256,
                    priorities,
                }),
        },
        // Same best-case replay through the event-driven network core:
        // bit-identical to the analytic gateway while uncongested, but
        // with per-gateway occupancy accounting and room for faults.
        ServeScenario {
            name: "dma-batch-32 @ 1M, event net".into(),
            source: CaptureSource::Capture(&capture),
            config: ReplayConfig::default()
                .with_policy(SchedPolicy::DmaBatch { batch: 32 })
                .with_transport(FleetTransport::EventDriven(NetConfig::default())),
        },
    ];
    // One scoped thread per replay, each through a fresh FleetBackend.
    let reports = ServeHarness::sweep(|| Ok(deployment.serve_backend()), &scenarios)?;

    let mut results = Table::new(
        "Fleet line rate (gateway-coupled, per-board SoC path)",
        &ServeReport::table_header(),
    );
    for report in &reports {
        results.push_row(&report.table_row());
    }
    println!("{results}");
    let shed = &reports[2];
    let victims: Vec<String> = shed
        .events
        .iter()
        .filter(|e| e.action == FleetAction::Shed)
        .map(|e| format!("model {} off board {}", e.model, e.board))
        .collect();
    println!(
        "under the same overload, drop-frames lost {} frames; shed-lowest-value lost {}\n\
         and degraded coverage instead ({} shed event(s): {}); the measured-value policy\n\
         shed {} model(s) by live confirmed-positive rate instead of static labels",
        reports[1].dropped,
        shed.dropped,
        shed.shed_count(),
        if victims.is_empty() {
            "none".to_owned()
        } else {
            victims.join(", ")
        },
        reports[3].shed_count(),
    );

    // The event-driven replay additionally reports per-gateway load.
    let event = &reports[4];
    let mut gw_table = Table::new(
        "Event-driven transport: per-gateway queues",
        &[
            "Gateway",
            "Forwarded",
            "Dropped",
            "Paused",
            "Peak queue",
            "Peak at (ms)",
        ],
    );
    for g in &event.gateways {
        gw_table.push_row(&[
            format!("gw-{}", g.gateway),
            format!("{}", g.forwarded),
            format!("{}", g.dropped()),
            format!("{}", g.paused),
            format!("{}", g.peak_queue),
            format!("{:.3}", g.peak_at.as_millis_f64()),
        ]);
    }
    println!("{gw_table}");
    Ok(())
}
