//! Generate a synthetic Car-Hacking-style capture and emit it in the
//! published CSV format (to stdout summary + a temp file).
//!
//! ```sh
//! cargo run --release -p canids-core --example generate_dataset
//! ```

use canids_core::prelude::*;
use canids_dataset::csv::to_csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, attack) in [
        ("normal", None),
        (
            "dos",
            Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        ),
        (
            "fuzzy",
            Some(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
        ),
        (
            "gear-spoof",
            Some(AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous)),
        ),
    ] {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_secs(2),
            attack,
            seed: 0xDA7A,
            ..TrafficConfig::default()
        })
        .build();
        println!("--- {name} ---");
        print!("{}", DatasetStats::of(&ds));
        let csv = to_csv(&ds);
        let path = std::env::temp_dir().join(format!("canids_{name}.csv"));
        std::fs::write(&path, &csv)?;
        println!("written: {} ({} rows)\n", path.display(), ds.len());
    }
    Ok(())
}
