//! Streaming line-rate evaluation: train a DoS detector, then serve it
//! frame-at-a-time against saturated 1 Mb/s classic-CAN and CAN-FD-class
//! replays, reporting sustained frames/s, p50/p99 verdict latency and
//! FIFO drops.
//!
//! ```sh
//! cargo run --release -p canids-core --example streaming_line_rate
//! ```
//!
//! Pass `--workers N` to pin the scale-out sweep's worker pool (default
//! auto = one worker per host core, capped at the shard count).
//!
//! Pass `--trace-out trace.json` to additionally replay the saturated
//! 1 Mb/s DoS capture with telemetry enabled and dump the per-stage
//! span stream as Chrome-trace JSON (open in `chrome://tracing` or
//! Perfetto). Without the flag no probe is attached and the replay is
//! the plain, telemetry-free path.

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    println!("canids streaming line-rate harness\n");

    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let capture = pipeline.generate_capture();
    let detector = pipeline.train(&capture)?;
    println!(
        "detector trained: test-set F1 {:.2}% over {} held-out frames\n",
        detector.test_cm.f1() * 100.0,
        detector.test_set.len()
    );

    // Scenario sweep through the unified harness: capture generation and
    // replay run concurrently on scoped threads, one per scenario, each
    // through a fresh SoftwareBackend.
    let duration = canids_can::time::SimTime::from_millis(400);
    let attack = Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous));
    let traffic = |attack, seed| TrafficConfig {
        duration,
        attack,
        seed,
        ..TrafficConfig::default()
    };
    let scenarios = vec![
        ServeScenario {
            name: "normal @ 1 Mb/s".into(),
            source: CaptureSource::Generate(traffic(None, 0x11E)),
            config: ReplayConfig::default(),
        },
        ServeScenario {
            name: "DoS flood @ 1 Mb/s".into(),
            source: CaptureSource::Generate(traffic(attack, 0x11E)),
            config: ReplayConfig::default(),
        },
        ServeScenario {
            name: "DoS flood @ FD-class 5 Mb/s".into(),
            source: CaptureSource::Generate(traffic(attack, 0x5FD)),
            config: ReplayConfig::default().with_pacing(Pacing::FdClass),
        },
    ];
    let model = detector.int_mlp.clone();
    let reports = ServeHarness::sweep(|| Ok(SoftwareBackend::single(model.clone())), &scenarios)?;

    let mut table = Table::new(
        "streaming line-rate replay (frame-at-a-time serving)",
        &ServeReport::table_header(),
    );
    for r in &reports {
        table.push_row(&r.table_row());
    }
    println!("{table}");
    if let Some(note) = canids_core::stream::contention_note(scenarios.len()) {
        println!("{note}\n");
    }

    let classic = &reports[1];
    println!(
        "1 Mb/s DoS replay: {} frames, accuracy {:.2}%, sustained {:.0} fps vs offered {:.0} fps",
        classic.serviced,
        classic.cm.accuracy() * 100.0,
        classic.sustained_fps.unwrap_or(0.0),
        classic.offered_fps,
    );

    // Scale-out sweep: the same saturated DoS capture split into
    // contiguous shards — parallel serving lanes, each re-paced from the
    // bus epoch — replayed through fresh per-lane backends on a bounded
    // worker pool with batched dispatch. The pool size is execution-only
    // (any worker count merges to the bit-identical report); `--workers`
    // pins it, default auto.
    let workers = parse_workers(std::env::args());
    let dos_capture = DatasetBuilder::new(traffic(attack, 0x11E)).build();
    println!("\nscale-out sweep ({workers:?} workers, batch 32):");
    println!("  shards  workers  sustained_fps  dropped");
    for shards in [1usize, 2, 4, 8] {
        let config = ReplayConfig::default()
            .with_batch(32)
            .with_shards(shards)
            .with_workers(workers);
        let r = ServeHarness::replay_sharded(
            || Ok(SoftwareBackend::single(model.clone())),
            &dos_capture,
            &config,
        )?;
        println!(
            "  {:>6}  {:>7}  {:>13.0}  {:>7}",
            shards,
            workers.count(shards),
            r.sustained_fps.unwrap_or(0.0),
            r.dropped,
        );
    }

    // Optional observability dump: one more saturated 1 Mb/s replay with
    // a telemetry probe attached, exported as Chrome-trace JSON.
    if let Some(path) = parse_trace_out(std::env::args()) {
        let traced = ReplayConfig::default()
            .with_batch(32)
            .with_telemetry(TelemetryConfig::default());
        let r = ServeHarness::new(SoftwareBackend::single(model.clone()))
            .replay(&dos_capture, &traced)?;
        let telemetry = r.telemetry.expect("telemetry was enabled");
        std::fs::write(&path, telemetry.to_chrome_trace()).expect("write Chrome trace");
        println!(
            "\nwrote Chrome trace ({} spans over {} serviced frames) to {path}",
            telemetry.spans.len(),
            r.serviced,
        );
    }
    Ok(())
}

/// Parses an optional `--trace-out PATH` argument (`--trace-out=PATH`
/// also works); absent means no trace is written.
fn parse_trace_out(mut args: std::env::Args) -> Option<String> {
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            if let Some(path) = args.next() {
                return Some(path);
            }
        } else if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.to_owned());
        }
    }
    None
}

/// Parses an optional `--workers N` argument (`--workers=N` also works);
/// anything absent or malformed falls back to [`ShardWorkers::Auto`].
fn parse_workers(mut args: std::env::Args) -> ShardWorkers {
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return ShardWorkers::Fixed(n);
            }
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            if let Ok(n) = v.parse() {
                return ShardWorkers::Fixed(n);
            }
        }
    }
    ShardWorkers::Auto
}
