//! Full Fuzzy experiment: random-identifier/payload injection every
//! 0.5 ms, trained and evaluated end to end.
//!
//! ```sh
//! cargo run --release -p canids-core --example fuzzy_detection
//! ```

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let config = PipelineConfig {
        capture_duration: SimTime::from_secs(10),
        ..PipelineConfig::fuzzy()
    };
    let pipeline = IdsPipeline::new(config);

    let capture = pipeline.generate_capture();
    println!("capture: {}", DatasetStats::of(&capture));

    let detector = pipeline.train(&capture)?;
    let (p, r, f1, fnr) = detector.test_cm.table_row();
    println!("ours  : precision {p:.2}  recall {r:.2}  f1 {f1:.2}  fnr {fnr:.2}");
    println!("paper : precision 99.68  recall 99.93  f1 99.80  fnr 0.07");

    let ip = pipeline.compile(&detector.int_mlp)?;
    let (ecu, _) = pipeline.deploy_and_replay(ip, &detector.test_set)?;
    println!(
        "latency {:.3} ms, power {:.2} W, energy {:.3} mJ/msg",
        ecu.mean_latency.as_millis_f64(),
        ecu.mean_power_w,
        ecu.energy_per_message_j * 1e3
    );
    Ok(())
}
