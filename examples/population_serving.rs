//! Population serving: the fourth serving tier. A trained DoS detector
//! serves a whole vehicle population — eight synthetic tenant streams
//! plus one real-format HC-RL CSV capture — through the multi-tenant
//! layer above `ServeHarness`, first with open admission, then through a
//! deliberately undersized backend pool so cross-tenant admission
//! control sheds and readmits whole streams by measured value.
//!
//! ```sh
//! cargo run --release -p canids-core --example population_serving
//! ```

use canids_core::population::{Population, PopulationConfig, TenantAdmission, TenantStream};
use canids_core::prelude::*;

/// A miniature capture in the HC-RL car-hacking CSV format — the same
/// loader (`from_hcrl_csv`) ingests the full published dataset files.
const HCRL_SNIPPET: &str = "\
    Timestamp,ID,DLC,DATA0,DATA1,DATA2,DATA3,DATA4,DATA5,DATA6,DATA7,Flag\n\
    1478198376.389427,0x0316,8,05,21,68,09,21,21,00,6F,R\n\
    1478198376.389636,0x018F,2,FE,5B,,,,,,,R\n\
    1478198376.389864,0000,8,00,00,00,00,00,00,00,00,T\n\
    1478198376.390105,0x0260,8,19,21,22,30,08,8E,6D,3A,R\n\
    1478198376.390330,0000,8,00,00,00,00,00,00,00,00,T\n\
    1478198376.390561,0x02A0,8,64,00,9A,1D,97,02,BD,00,R\n\
    1478198376.390791,0000,8,00,00,00,00,00,00,00,00,T\n\
    1478198376.391015,0x0329,8,40,BB,7F,14,11,20,00,14,R\n";

fn main() -> Result<(), CoreError> {
    println!("canids population serving\n");

    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let detector = pipeline.train(&pipeline.generate_capture())?;
    let model = detector.int_mlp.clone();
    println!(
        "detector trained: test-set F1 {:.2}%\n",
        detector.test_cm.f1() * 100.0
    );

    // The tenant registry: eight synthetic vehicles (uneven stream
    // lengths, half under DoS flood) plus one real-format CSV capture,
    // every stream paced at the 500 kb/s tenant default.
    let mut population = Population::new();
    for k in 0..8u64 {
        let capture = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(60 + 20 * k),
            attack: (k % 2 == 0)
                .then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed: 0xCAB + k,
            ..TrafficConfig::default()
        })
        .build();
        population.push(TenantStream::new(format!("vehicle-{k}"), capture));
    }
    let hcrl = canids_dataset::csv::from_hcrl_csv(HCRL_SNIPPET, Label::Dos)
        .expect("the inline HC-RL snippet is well-formed");
    population.push(TenantStream::new("hcrl-car", hcrl).with_priority(1));

    let factory = || Ok(SoftwareBackend::single(model.clone()));

    // 1. Open admission: every tenant gets a backend for its whole
    // stream — the baseline capacity picture.
    let open = population.serve(factory, &PopulationConfig::default())?;
    let mut table = Table::new(
        "open admission: one backend per tenant",
        &canids_core::population::TenantReport::table_header(),
    );
    for t in &open.tenants {
        table.push_row(&t.table_row());
    }
    println!("{table}");
    println!(
        "population: {} tenants, {} frames offered, {} served ({}%), {} dropped, \
         pooled p99 {:.1} us\n",
        open.tenants.len(),
        open.offered,
        open.serviced,
        pct_of(open.serviced as u64, open.offered as u64),
        open.dropped,
        open.latency.p99.as_micros_f64()
    );

    // 2. Overload: nine live streams onto a three-slot pool. The
    // admission layer sheds the stream with the lowest windowed
    // confirmed-positive count (quiet vehicles yield to attacked ones)
    // and readmits the most valuable shed stream whenever a slot frees.
    let squeezed =
        PopulationConfig::default().with_admission(TenantAdmission::ShedLowestValueTenant {
            capacity: 3,
            window: 128,
        });
    let report = population.serve(factory, &squeezed)?;
    let mut table = Table::new(
        "three-slot pool: lowest-value tenant sheds first",
        &canids_core::population::TenantReport::table_header(),
    );
    for t in &report.tenants {
        table.push_row(&t.table_row());
    }
    println!("{table}");
    println!(
        "admission events: {} sheds, {} readmits; {} frames ({}%) passed shed",
        report.shed_count(),
        report.readmit_count(),
        report.shed_frames,
        pct_of(report.shed_frames as u64, report.offered as u64)
    );
    for e in report.events.iter().take(6) {
        println!(
            "  {:>10?}  {:?} {}",
            e.time, e.action, report.tenants[e.tenant].name
        );
    }

    // The report merge is bit-deterministic in tenant-ordinal order: on
    // the simulated ECU backend (the software path measures real host
    // wall-clock, so its latencies are honest, not replayable) any
    // worker count produces the identical fingerprint.
    let bundles = vec![detector.bundle(AttackKind::Dos)];
    let ecu_factory = || {
        Ok(EcuBackend::owning(deploy_multi_ids(
            &bundles,
            CompileConfig::default(),
        )?))
    };
    let wide = population.serve(ecu_factory, &squeezed)?;
    let single = population.serve(
        ecu_factory,
        &squeezed.clone().with_workers(ShardWorkers::Fixed(1)),
    )?;
    assert_eq!(
        wide.fingerprint(),
        single.fingerprint(),
        "population fingerprint must not depend on the worker pool"
    );
    println!("\nfingerprint invariant across worker pools (simulated ECU backend): ok");
    Ok(())
}
