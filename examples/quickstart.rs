//! Quickstart: train a 4-bit QMLP DoS detector, compile it to a
//! FINN-style IP, deploy it on the simulated ZCU104 ECU and print the
//! paper's headline numbers.
//!
//! ```sh
//! cargo run --release -p canids-core --example quickstart
//! ```

use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    println!("canids quickstart — 4-bit QMLP DoS IDS\n");

    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let report = pipeline.run()?;

    let (p, r, f1, fnr) = report.detector.test_cm.table_row();
    println!("classification (integer model, held-out test set):");
    println!("  precision {p:6.2}%   recall {r:6.2}%   F1 {f1:6.2}%   FNR {fnr:5.2}%");
    println!("  paper:     99.99%          99.99%      99.99%       0.01%\n");

    println!("hardware IP:");
    println!(
        "  compute latency : {:.2} us",
        report.ip.latency_secs() * 1e6
    );
    println!("  resources       : {}", report.ip.resources());
    println!(
        "  ZCU104 usage    : {}",
        report.ip.utilization(Device::ZCU104)
    );

    println!("\nECU replay (full software path):");
    println!(
        "  per-message latency : {:.3} ms   (paper: 0.12 ms)",
        report.ecu.mean_latency.as_millis_f64()
    );
    println!(
        "  board power         : {:.2} W     (paper: 2.09 W)",
        report.ecu.mean_power_w
    );
    println!(
        "  energy per message  : {:.3} mJ   (paper: 0.25 mJ)",
        report.ecu.energy_per_message_j * 1e3
    );
    println!(
        "  verdict agreement   : {:.2}%",
        report.replay_agreement * 100.0
    );
    Ok(())
}
