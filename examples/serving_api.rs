//! The unified serving API: one `ServeHarness` driving the same trained
//! detector set through all three serving substrates — pure software,
//! one simulated N-detector ECU, and a gateway-coupled two-board fleet —
//! under one `ReplayConfig`, with the typed per-frame verdict stream and
//! the value-driven admission capstone
//! (`AdmissionPolicy::ShedLowestMeasuredValue`).
//!
//! ```sh
//! cargo run --release -p canids-core --example serving_api
//! ```

use canids_core::prelude::*;
use canids_core::serve::FleetAction;

fn main() -> Result<(), CoreError> {
    println!("canids unified serving API\n");

    // One trained detector set shared by every backend: DoS + Fuzzy,
    // trained concurrently.
    let configs = [
        PipelineConfig::dos().quick(),
        PipelineConfig::fuzzy().quick(),
    ];
    let mut trained = Vec::new();
    for result in IdsPipeline::train_many(&configs) {
        let (kind, detector) = result?;
        println!("{:<8} {}", kind.slug(), detector.test_cm);
        trained.push((kind, detector));
    }
    let models: Vec<canids_qnn::IntegerMlp> =
        trained.iter().map(|(_, d)| d.int_mlp.clone()).collect();
    let bundles: Vec<DetectorBundle> = trained
        .iter()
        .map(|(kind, detector)| detector.bundle(*kind))
        .collect();

    // One capture, one replay configuration, three backends.
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(300),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0x5E12E,
        ..TrafficConfig::default()
    })
    .build();
    let config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });

    let mut table = Table::new(
        "one capture, one ReplayConfig, three ServeBackends",
        &ServeReport::table_header(),
    );

    // 1. Software: wall-clock service times on this host.
    let mut software = ServeHarness::new(SoftwareBackend::new(models));
    table.push_row(&software.replay(&capture, &config)?.table_row());

    // 2. Single ECU: the full simulated SoC path.
    let deployment = deploy_multi_ids(&bundles, CompileConfig::default())?;
    let mut ecu = ServeHarness::new(deployment.serve_backend());
    table.push_row(&ecu.replay(&capture, &config)?.table_row());

    // 3. Fleet: two boards behind gateway forwarding. The verdict sink
    // watches the live stream while the replay runs.
    let plan = FleetPlan::build(
        &bundles,
        &FleetConfig::new(vec![BoardSpec::zcu104("front"), BoardSpec::ultra96("rear")]),
    )?;
    let fleet = plan.deploy(&bundles, &CompileConfig::default())?;
    let mut confirmed = 0usize;
    let mut missed = 0usize;
    let mut fleet_harness = ServeHarness::new(fleet.serve_backend());
    let fleet_report = fleet_harness.replay_with(&capture, &config, &mut |v: &Verdict| {
        if v.truth_attack {
            if v.flagged {
                confirmed += 1;
            } else {
                missed += 1;
            }
        }
    })?;
    table.push_row(&fleet_report.table_row());
    println!("\n{table}");
    println!(
        "verdict stream (fleet): {confirmed} confirmed positives, {missed} missed attacks, \
         fused F1 {:.2}%\n",
        fleet_report.cm.f1() * 100.0
    );

    // The capstone: under a deliberate sequential overload the shard
    // must shed one model. Static priorities mislabel the DoS detector
    // as the least valuable; the measured policy reads the verdict
    // stream instead and sheds the model that is not firing.
    let solo_plan = FleetPlan::build(&bundles, &FleetConfig::new(vec![BoardSpec::zcu104("solo")]))?;
    let solo = solo_plan.deploy(&bundles, &CompileConfig::default())?;
    let overload = ReplayConfig::default()
        .with_bitrate(Bitrate::new(750_000))
        .with_policy(SchedPolicy::Sequential);
    let static_priorities = vec![1u32, 5u32]; // DoS deliberately "lowest value"
    let mut ablation = Table::new(
        "value-driven admission under overload (2 models, 1 board)",
        &[
            "Admission",
            "Drops",
            "Shed victim",
            "Confirmed positives kept",
        ],
    );
    for admission in [
        AdmissionPolicy::ShedLowestValue {
            priorities: static_priorities.clone(),
        },
        AdmissionPolicy::ShedLowestMeasuredValue {
            window: 256,
            priorities: static_priorities.clone(),
        },
    ] {
        let report = ServeHarness::new(solo.serve_backend()).replay(
            &capture,
            &overload.clone().with_admission(admission.clone()),
        )?;
        let victims: Vec<String> = report
            .events
            .iter()
            .filter(|e| e.action == FleetAction::Shed)
            .map(|e| report.per_model[e.model].name.clone())
            .collect();
        ablation.push_row(&[
            admission.label().to_owned(),
            format!("{}", report.dropped),
            if victims.is_empty() {
                "-".to_owned()
            } else {
                victims.join(", ")
            },
            format!(
                "{}",
                report
                    .per_model
                    .iter()
                    .map(|m| m.confirmed_positives)
                    .sum::<usize>()
            ),
        ]);
    }
    println!("{ablation}");
    println!(
        "the static policy sheds whatever someone labelled cheapest; the measured policy\n\
         sheds the model whose windowed confirmed-positive rate is lowest — the detector\n\
         that is actually catching the attack stays online"
    );
    Ok(())
}
