//! Offline drop-in subset of the [`criterion`](https://bheisler.github.io/criterion.rs)
//! benchmarking API.
//!
//! The build environment has no crates.io access, so this crate
//! provides the criterion surface the `canids-bench` harness uses —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups and [`Bencher::iter`] — with a lean wall-clock
//! measurement loop instead of criterion's full statistical pipeline.
//!
//! Mode handling mirrors criterion so `cargo test` stays fast:
//!
//! * `cargo bench` invokes the bench binary with `--bench`, which
//!   selects measurement mode (warm-up, then `sample_size` timed
//!   samples; median ns/iter is printed);
//! * any other invocation (notably `cargo test`, which runs
//!   `harness = false` bench targets with no arguments) selects smoke
//!   mode: every registered closure runs exactly once, so benches are
//!   exercised for correctness without paying measurement time.

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, matching
/// `criterion::black_box`.
pub use std::hint::black_box;

/// How the binary was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// `cargo test` (or a bare run): run each benchmark body once.
    Smoke,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            mode: detect_mode(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form, as
    /// used in `criterion_group!` config expressions).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, name, f);
        self
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Group-scoped, as in real criterion: overrides here must not leak
    // into later groups or ungrouped benches.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion.mode, self.sample_size, &full, f);
        self
    }

    /// Ends the group. Reporting is immediate in this implementation,
    /// so this only consumes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, sample_size: usize, name: &str, mut f: F) {
    match mode {
        Mode::Smoke => {
            let mut b = Bencher {
                mode,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: smoke ok");
        }
        Mode::Measure => {
            // Calibrate the per-sample iteration count so one sample
            // costs roughly a millisecond.
            let mut calib = Bencher {
                mode,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut calib);
            let per_iter = calib.elapsed.max(Duration::from_nanos(1));
            let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos())
                .clamp(1, 1_000_000) as u64;

            let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let mut b = Bencher {
                    mode,
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
            }
            samples.sort_by(f64::total_cmp);
            let median = samples[samples.len() / 2];
            let (lo, hi) = (samples[0], samples[samples.len() - 1]);
            println!("{name}: median {median:.1} ns/iter (min {lo:.1}, max {hi:.1}, {sample_size} samples x {iters} iters)");
        }
    }
}

/// Timer handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (one call in smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => self.iters,
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`. Both the plain and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut calls = 0u32;
        run_one(Mode::Smoke, 10, "counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut calls = 0u64;
        run_one(Mode::Measure, 5, "counter", |b| b.iter(|| calls += 1));
        assert!(calls > 5);
    }

    #[test]
    fn group_sample_size_does_not_leak() {
        let mut c = Criterion {
            sample_size: 3,
            mode: Mode::Measure,
        };
        // The bench closure runs once for calibration plus once per
        // sample, so its invocation count reveals the effective
        // sample_size.
        let mut grouped = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("x", |b| {
                grouped += 1;
                b.iter(|| ());
            });
            g.finish();
        }
        assert_eq!(grouped, 1 + 5);
        let mut ungrouped = 0u32;
        c.bench_function("y", |b| {
            ungrouped += 1;
            b.iter(|| ());
        });
        assert_eq!(ungrouped, 1 + 3, "group override must stay group-scoped");
    }
}
