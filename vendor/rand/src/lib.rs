//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of `rand` APIs the simulators and trainers use
//! are reimplemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::SliceRandom`).
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the reproduction needs
//! (every caller seeds via [`SeedableRng::seed_from_u64`]).
//!
//! Only the surface the workspace actually calls is provided:
//! `gen_range` over integer/float ranges, `gen_bool`, `fill` for byte
//! slices, and `shuffle`.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with data drawn from `rng`.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Ranges that can be sampled uniformly to produce a `T`, mirroring
/// `rand`'s `SampleRange`. The trait is generic over the output type
/// (rather than using an associated type) so literal bounds like
/// `0.6..1.0` infer their float width from the call site, as they do
/// with real rand.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit word onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer draw from `[0, span)` by widening multiply, which
/// keeps the (negligible) modulo bias off the hot path.
///
/// `span` must be at most 2^64 — the widest inclusive u64/i64 range.
/// Then `wide * span <= (2^64 - 1) * 2^64 < 2^128` and the product
/// cannot wrap. Adding 128-bit `SampleRange` impls would violate this
/// bound and requires an actual split multiply.
fn below(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1u128 << 64);
    let wide = u128::from(rng.next_u64());
    (wide * span) >> 64
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for ::core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for ::core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for ::core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let v = self.start + unit_f64(rng.next_u64()) as $ty * (self.end - self.start);
                // Rounding in the cast/FMA can land exactly on the
                // excluded upper bound; honour the half-open contract.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange<$ty> for ::core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + unit_f64(rng.next_u64()) as $ty * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0u16..=0x7FF);
            assert!(u <= 0x7FF);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn exclusive_float_range_never_returns_end() {
        // A generator pinned at u64::MAX drives the unit sample to its
        // maximum, where f32 rounding would land exactly on the
        // excluded bound without the next_down guard.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let v: f32 = rng.gen_range(0.6f32..1.0);
        assert!((0.6..1.0).contains(&v), "{v}");
        let d: f64 = rng.gen_range(-1.0f64..3.0);
        assert!((-1.0..3.0).contains(&d), "{d}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_covers_whole_buffer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 8];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 8]);
    }
}
