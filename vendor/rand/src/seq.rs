//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngCore, SampleRange};

/// In-place slice operations driven by a generator.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[sample_index(rng, self.len())])
        }
    }
}

fn sample_index<R: RngCore + ?Sized>(rng: &mut R, len: usize) -> usize {
    (0..len).sample_from(rng)
}
