//! Offline drop-in subset of the [`serde`](https://serde.rs) facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! report types so they stay serialisation-ready, but no code path
//! serialises yet (the CSV codec in `canids-dataset` is hand-rolled).
//! Since the build environment has no crates.io access, this crate
//! provides the two marker traits and their derive macros locally; the
//! derives register the trait implementations without generating any
//! format code. Swapping in real serde later is a one-line manifest
//! change — the derive spelling in the sources is already canonical.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose serialised form is derivable.
///
/// The real trait's `serialize` method is intentionally absent: nothing
/// in the workspace serialises through serde yet, and leaving the
/// method off keeps the no-op derive honest (it cannot silently produce
/// wrong bytes).
pub trait Serialize {}

/// Marker for types whose deserialised form is derivable.
pub trait Deserialize<'de>: Sized {}
