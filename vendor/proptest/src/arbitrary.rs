//! The [`any`] entry point, mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one value uniformly from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`; mirrors `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(core::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A>(core::marker::PhantomData<fn() -> A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
