//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`; mirrors `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type; mirrors `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value; mirrors `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-valued strategies — the engine behind
/// [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

/// Numeric ranges are strategies, as in proptest: `0u16..=0x7FF`,
/// `-10.0f32..10.0`, ...
macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Tuples of strategies are strategies over tuples of values.
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
