//! Offline drop-in subset of the [`proptest`](https://proptest-rs.github.io)
//! property-testing API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest the workspace's property suites
//! use: the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! range and tuple strategies, [`collection::vec`], [`strategy::Just`],
//! [`arbitrary::any`], and [`test_runner::ProptestConfig`].
//!
//! Semantics deliberately kept from real proptest:
//!
//! * each `#[test]` inside [`proptest!`] runs `ProptestConfig::cases`
//!   times (default 256) with independently sampled inputs;
//! * sampling is deterministic — the RNG stream is keyed on the test
//!   name and case index, so failures reproduce exactly on re-run;
//! * a failing case reports the sampled inputs via the panic message of
//!   the underlying `assert!`.
//!
//! Omitted (unused by this workspace): shrinking, persisted failure
//! regressions, `prop_compose!`, and filtered strategies. A failing
//! property therefore reports the raw counterexample rather than a
//! minimal one.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports for property suites, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares a block of property tests.
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item
/// expands to a plain `#[test]` that samples every binding
/// `ProptestConfig::cases` times and runs the body on each sample. An
/// optional leading `#![proptest_config(expr)]` overrides the config
/// for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds; mirrors `proptest::prop_assert!`.
///
/// Without shrinking there is no need to unwind specially, so this is
/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several same-valued strategies per sample;
/// mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
