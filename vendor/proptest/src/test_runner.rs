//! Test execution config and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching real proptest's default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies; keyed on (test name, case index) so
/// every run of a test samples the same sequence of inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test path keeps distinct tests on distinct
        // streams even for equal case indices.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
