//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive length range for generated collections, accepting the
/// same spellings proptest does: `64`, `0..256`, `0..=8`, `1..64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi: len }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`; mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
