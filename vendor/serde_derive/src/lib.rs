//! No-op `Serialize`/`Deserialize` derives for the offline serde facade.
//!
//! Each derive parses just enough of the item — attributes, visibility,
//! `struct`/`enum`, name — to emit a marker-trait impl for the type.
//! The workspace has no generic derive targets, so generics are
//! rejected loudly rather than mis-handled silently.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item, skipping outer
/// attributes and visibility, and asserts the type is not generic.
fn type_name(input: TokenStream, trait_name: &str) -> String {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            // Outer attribute: `#` followed by a bracketed group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    break;
                }
                // `pub` (possibly followed by a `(crate)` group) — skip.
            }
            // `pub(...)` restriction group or stray punctuation — skip.
            Some(_) => {}
            None => panic!("derive({trait_name}): no struct/enum found"),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("derive({trait_name}): expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        assert!(
            p.as_char() != '<',
            "derive({trait_name}): generic type `{name}` is not supported by the offline stub",
        );
    }
    name
}

/// Derives the offline `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input, "Serialize");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the offline `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input, "Deserialize");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
