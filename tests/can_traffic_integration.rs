//! CAN substrate ↔ dataset integration: wire-level effects visible in
//! the generated captures.

use canids_core::prelude::*;
use canids_dataset::csv::{from_csv, to_csv};

#[test]
fn dos_flood_dominates_capture_via_arbitration() {
    let ds = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(500),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 9,
        ..TrafficConfig::default()
    })
    .build();
    // ID 0 wins every arbitration: the flood must account for the
    // majority of the capture (matching the published trace's balance).
    assert!(ds.attack_fraction() > 0.5, "{}", ds.attack_fraction());
    // And normal traffic still flows between injections.
    assert!(ds.class_count(Label::Normal) > 100);
}

#[test]
fn frame_timestamps_respect_wire_time() {
    let ds = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(300),
        seed: 10,
        ..TrafficConfig::default()
    })
    .build();
    let bit_time = Bitrate::HIGH_SPEED_500K.bit_time();
    for w in ds.records().windows(2) {
        let gap = w[1].timestamp - w[0].timestamp;
        // No two frame completions can be closer than the shortest
        // possible frame (~47 bits for DLC 0 + interframe space).
        assert!(gap >= bit_time.mul_u64(40), "gap {gap} below wire minimum");
    }
}

#[test]
fn line_rate_matches_frame_encoding() {
    // The paper's ">8300 msg/s at highest payload capacity": check the
    // encoder-derived line rate against a saturated bus simulation.
    let analytic = max_frame_rate(Bitrate::HIGH_SPEED_1M, 8).unwrap();
    assert!(analytic > 8_300.0, "analytic {analytic}");

    let mut bus = Bus::new(BusConfig {
        bitrate: Bitrate::HIGH_SPEED_1M,
        ..BusConfig::default()
    });
    let tx = bus.add_node(canids_can::node::CanController::default());
    let frames: Vec<(SimTime, CanFrame)> = (0..2_000)
        .map(|i| {
            (
                SimTime::ZERO,
                CanFrame::new(
                    CanId::standard(0x2C0).unwrap(),
                    &[u8::try_from(i % 251).unwrap(); 8],
                )
                .unwrap(),
            )
        })
        .collect();
    bus.attach_source(tx, Box::new(frames.into_iter()));
    bus.run_until(SimTime::from_millis(200));
    let measured = bus.stats().frames_delivered as f64 / bus.now().as_secs_f64();
    assert!(
        (measured - analytic).abs() / analytic < 0.05,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn csv_round_trip_preserves_capture_semantics() {
    let ds = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(200),
        attack: Some(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
        seed: 11,
        ..TrafficConfig::default()
    })
    .build();
    let text = to_csv(&ds);
    let back = from_csv(&text, Label::Fuzzy).unwrap();
    assert_eq!(back.len(), ds.len());
    assert_eq!(
        back.iter().filter(|r| r.label.is_attack()).count(),
        ds.iter().filter(|r| r.label.is_attack()).count()
    );
    // Feature extraction sees identical frames.
    let enc = IdBitsPayloadBits;
    for (a, b) in ds.iter().zip(back.iter()) {
        assert_eq!(enc.encode(&a.frame), enc.encode(&b.frame));
    }
}

#[test]
fn spoofing_extension_generates_legit_ids() {
    let ds = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(400),
        attack: Some(AttackProfile::rpm_spoof().with_schedule(BurstSchedule::Continuous)),
        seed: 12,
        ..TrafficConfig::default()
    })
    .build();
    let spoofed: Vec<_> = ds.iter().filter(|r| r.label == Label::RpmSpoof).collect();
    assert!(spoofed.len() > 100);
    assert!(spoofed.iter().all(|r| r.frame.id().raw() == 0x316));
}
