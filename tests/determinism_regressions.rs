//! Determinism regressions for the unordered-map sites flagged by the
//! `unordered-iteration` lint (ISSUE 7): duplicate-kind IP naming and
//! seeded jitter-release ordering must depend only on their inputs —
//! never on hash-map iteration order.

use canids_can::bus::TrafficSource;
use canids_can::time::SimTime;
use canids_core::deploy::{DeploymentPlan, PlanConfig};
use canids_core::prelude::*;
use canids_dataset::vehicle::{MessageSpec, VehicleSource};

fn tiny_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        hidden: vec![16],
        ..MlpConfig::default()
    })
    .unwrap()
    .export()
    .unwrap()
}

#[test]
fn duplicate_kind_ip_names_follow_bundle_input_order() {
    // Names are assigned positionally: the first DoS bundle is
    // `dos-ids`, the second `dos-ids-2`, and so on — regardless of how
    // the kinds interleave. This is the contract the report and the
    // admission event log key on.
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::Dos,
        AttackKind::Dos,
        AttackKind::Fuzzy,
    ];
    let bundles: Vec<DetectorBundle> = kinds
        .iter()
        .enumerate()
        .map(|(i, &k)| DetectorBundle::new(k, tiny_model(i as u64 + 1)))
        .collect();
    let plan = DeploymentPlan::build(&bundles, &PlanConfig::default()).unwrap();
    let names: Vec<&str> = plan.models.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "dos-ids",
            "fuzzy-ids",
            "dos-ids-2",
            "dos-ids-3",
            "fuzzy-ids-2"
        ]
    );

    // Re-planning the same input reproduces the same names verbatim.
    let replay = DeploymentPlan::build(&bundles, &PlanConfig::default()).unwrap();
    let replay_names: Vec<&str> = replay.models.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, replay_names);
}

fn jitter_schedule(seed: u64, frames: usize) -> Vec<(SimTime, u32)> {
    let specs: Vec<MessageSpec> = (0..6u16)
        .map(|i| {
            let mut s = MessageSpec::constant(0x100 + i, SimTime::from_millis(10), 8, [0u8; 8]);
            s.jitter_frac = 0.1;
            s
        })
        .collect();
    let mut src = VehicleSource::new(specs, seed).with_load_jitter(0.5);
    (0..frames)
        .map(|_| {
            let (t, f) = src.next_frame().unwrap();
            (t, f.id().raw())
        })
        .collect()
}

#[test]
fn jitter_release_ordering_is_seed_deterministic() {
    // Two sources built from the same specs and seed release the same
    // frames at the same instants in the same order; a different seed
    // jitters differently. Load-dependent jitter folds the recent
    // release history into each draw, so this pins the whole
    // release-ordering pipeline, not just the per-message PRNG.
    let a = jitter_schedule(42, 240);
    let b = jitter_schedule(42, 240);
    assert_eq!(a, b, "same seed must reproduce the release schedule");

    let c = jitter_schedule(43, 240);
    assert_ne!(a, c, "a different seed must jitter differently");

    // The releases are a deterministic interleaving: timestamps are
    // nondecreasing, so downstream consumers never reorder them.
    for w in a.windows(2) {
        assert!(w[0].0 <= w[1].0, "release times regressed: {w:?}");
    }

    // The mean relative jitter — a float fold over per-id release
    // groups — is bit-for-bit stable across identical runs, which is
    // exactly what the BTreeMap fix in `vehicle.rs` guarantees.
    let mean = |sched: &[(SimTime, u32)]| -> f64 {
        let mut groups: std::collections::BTreeMap<u32, Vec<SimTime>> =
            std::collections::BTreeMap::new();
        for &(t, id) in sched {
            groups.entry(id).or_default().push(t);
        }
        let period = SimTime::from_millis(10).as_secs_f64();
        let mut sum = 0.0;
        let mut count = 0u32;
        for times in groups.values() {
            for w in times.windows(2) {
                sum += (w[1] - w[0]).as_secs_f64() / period - 1.0;
                count += 1;
            }
        }
        sum / f64::from(count.max(1))
    };
    assert_eq!(mean(&a).to_bits(), mean(&b).to_bits());
}
