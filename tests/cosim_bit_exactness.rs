//! The FINN cosim invariant, property-tested across the whole stack:
//!
//! float fake-quant network → integer export → dataflow graph →
//! cycle-accurate simulator → memory-mapped peripheral
//!
//! must all produce identical classes (and scores where exposed) for
//! every input.

use canids_can::time::SimTime;
use canids_dataflow::folding::{auto_fold, FoldingGoal};
use canids_dataflow::graph::DataflowGraph;
use canids_dataflow::ip::{AcceleratorIp, CompileConfig, RegisterMap};
use canids_dataflow::simulator::{AcceleratorSim, SimConfig};
use canids_dataflow::verify::verify_bit_exact;
use canids_qnn::prelude::*;
use canids_soc::accel::{pack_features, AccelPeripheral, CTRL_START};
use canids_soc::axi::MmioDevice;
use proptest::prelude::*;

/// Trains a small model so thresholds are calibrated and non-trivial.
fn trained_model(bits: u8, hidden: Vec<usize>, seed: u64) -> IntegerMlp {
    let dim = 16usize;
    let mut mlp = QuantMlp::new(MlpConfig {
        input_dim: dim,
        hidden,
        weight_bits: BitWidth::new(bits).unwrap(),
        act_bits: BitWidth::new(bits).unwrap(),
        seed,
        ..MlpConfig::default()
    })
    .unwrap();
    // Deterministic toy training set keyed on the seed.
    let mut state = seed | 1;
    let mut bit = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1 == 1
    };
    let xs: Vec<Vec<f32>> = (0..300)
        .map(|_| (0..dim).map(|_| f32::from(bit() as u8)).collect())
        .collect();
    let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] + x[3] > 1.0)).collect();
    Trainer::new(TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    })
    .fit(&mut mlp, &xs, &ys)
    .unwrap();
    mlp.export().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn integer_graph_sim_peripheral_agree(
        bits in prop_oneof![Just(2u8), Just(3), Just(4), Just(8)],
        seed in 0u64..1_000,
        inputs in proptest::collection::vec(
            proptest::collection::vec(0u32..=1, 16), 1..8),
    ) {
        let model = trained_model(bits, vec![10, 6], seed);

        // Layer 1: graph lowering must be exact.
        let graph = DataflowGraph::from_integer_mlp(&model).unwrap();
        verify_bit_exact(&graph, &model, 32, seed).unwrap();

        // Layer 2: the cycle-accurate simulator must be exact.
        let folding = auto_fold(&graph, FoldingGoal::MinResource).unwrap();
        let sim = AcceleratorSim::new(graph.clone(), &folding, SimConfig::default()).unwrap();
        let report = sim.run(&inputs);
        for (i, x) in inputs.iter().enumerate() {
            let want = model.infer(x);
            prop_assert_eq!(report.predictions[i], want.class);
            prop_assert_eq!(&report.scores[i], &want.scores);
        }

        // Layer 3: the memory-mapped peripheral must be exact.
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        let mut dev = AccelPeripheral::new(ip);
        let mut now = SimTime::ZERO;
        for x in &inputs {
            let bits_f: Vec<f32> = x.iter().map(|&b| b as f32).collect();
            for (w, word) in pack_features(&bits_f).into_iter().enumerate() {
                dev.write(RegisterMap::INPUT_BASE + 4 * w as u32, word, now).unwrap();
            }
            dev.write(RegisterMap::CTRL, CTRL_START, now).unwrap();
            now += SimTime::from_micros(100);
            let class = dev.read(RegisterMap::OUT_CLASS, now).unwrap() as usize;
            prop_assert_eq!(class, model.infer(x).class);
            now += SimTime::from_micros(10);
        }
    }
}

#[test]
fn paper_topology_cosim_holds() {
    // The exact deployment topology (75-64-32-2 at 4 bits).
    let mut mlp = QuantMlp::new(MlpConfig::paper_4bit()).unwrap();
    let mut state = 0xBEEFu64;
    let mut bit = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1 == 1
    };
    let xs: Vec<Vec<f32>> = (0..400)
        .map(|_| (0..75).map(|_| f32::from(bit() as u8)).collect())
        .collect();
    let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
    Trainer::new(TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    })
    .fit(&mut mlp, &xs, &ys)
    .unwrap();
    let model = mlp.export().unwrap();
    let graph = DataflowGraph::from_integer_mlp(&model).unwrap();
    verify_bit_exact(&graph, &model, 512, 0xC0).unwrap();
}
