//! Unified serving API acceptance (ISSUE 5).
//!
//! 1. The `ServeHarness` + `FleetBackend` path reproduces the PR 4
//!    acceptance numbers (12 detectors / 6 boards: zero drops under
//!    DmaBatch-32; shed-vs-drop frame counts under the 750 kb/s
//!    sequential overload), and the two `EcuBackend` constructors
//!    (`new` over a deployment, `over` an existing ECU) report the
//!    *same bits* for the same replay.
//! 2. The capstone: `AdmissionPolicy::ShedLowestMeasuredValue` sheds the
//!    never-firing (useless) model on the overload capture, while the
//!    static `ShedLowestValue` policy sheds a different, actually-firing
//!    model that someone labelled lowest priority. `bench_summary`
//!    records the same contrast in `BENCH_5.json`.
//! 3. `ServeHarness::sweep` results are independent of thread
//!    interleaving: the scenario-parallel sweep matches sequential
//!    replays bit for bit on the simulated backends.
use canids_core::prelude::*;
use canids_core::serve::FleetAction;

/// Untrained paper-topology model (weights seeded).
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

/// The PR 4 acceptance fleet: 12 detectors, 4 kinds tripled.
fn twelve_bundles() -> Vec<DetectorBundle> {
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::GearSpoof,
        AttackKind::RpmSpoof,
    ];
    (0..12)
        .map(|i| DetectorBundle::new(kinds[i % 4], seeded_model(400 + i as u64)))
        .collect()
}

fn six_board_fleet() -> FleetConfig {
    FleetConfig::new(vec![
        BoardSpec::zcu104("zcu-a"),
        BoardSpec::zcu104("zcu-b"),
        BoardSpec::ultra96("u96-a"),
        BoardSpec::ultra96("u96-b"),
        BoardSpec::pynq_z2("pynq-a"),
        BoardSpec::pynq_z2("pynq-b"),
    ])
    .with_model_cap(2)
}

fn saturated_dos_capture() -> Dataset {
    DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(400),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xF1EE7,
        ..TrafficConfig::default()
    })
    .build()
}

/// Field-for-field bitwise equality between two `ServeReport`s (f64s
/// compared via `to_bits`, so "close" is not "equal").
fn assert_serve_reports_identical(a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.admission, b.admission);
    assert_eq!(a.bitrate_bps, b.bitrate_bps);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.offered_fps.to_bits(), b.offered_fps.to_bits());
    assert_eq!(a.serviced, b.serviced);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.latency.max, b.latency.max);
    assert_eq!(a.flagged, b.flagged);
    assert_eq!(a.fully_covered, b.fully_covered);
    match (&a.energy, &b.energy) {
        (Some(ea), Some(eb)) => {
            assert_eq!(ea.mean_power_w.to_bits(), eb.mean_power_w.to_bits());
            assert_eq!(
                ea.energy_per_message_j.to_bits(),
                eb.energy_per_message_j.to_bits()
            );
        }
        (None, None) => {}
        _ => panic!("one report meters energy, the other does not"),
    }
    assert_eq!(a.events, b.events);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.boards.len(), b.boards.len());
    for (ab, bb) in a.boards.iter().zip(&b.boards) {
        assert_eq!(ab.board, bb.board);
        assert_eq!(ab.serviced, bb.serviced);
        assert_eq!(ab.dropped, bb.dropped);
        assert_eq!(ab.latency.p50, bb.latency.p50);
        assert_eq!(ab.latency.p99, bb.latency.p99);
        assert_eq!(ab.latency.max, bb.latency.max);
    }
}

#[test]
fn harness_reproduces_pr4_acceptance_bit_identically() {
    let bundles = twelve_bundles();
    let plan = FleetPlan::build(&bundles, &six_board_fleet()).expect("fleet plan fits");
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default())
        .expect("fleet compiles");
    let capture = saturated_dos_capture();

    // 1. Best integration through the new API: 12 detectors over 6
    // boards absorb the saturated 1 Mb/s backbone with zero drops.
    let best_config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });
    let mut harness = ServeHarness::new(deployment.serve_backend());
    let best = harness.replay(&capture, &best_config).unwrap();
    assert_eq!(best.offered, capture.len());
    assert_eq!(best.dropped, 0, "DMA batching must absorb full line rate");
    assert_eq!(best.fully_covered, best.offered);
    assert_eq!(best.boards.len(), 6);
    assert!(best.events.is_empty());

    // The simulated fleet is deterministic: a second replay over a
    // fresh backend reports the same bits.
    let best_again = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &best_config)
        .unwrap();
    assert_serve_reports_identical(&best, &best_again);

    // 2. The 750 kb/s sequential overload: drop-frames loses >100
    // frames, shed-lowest-value loses none — the PR 4 contrast.
    let overload = ReplayConfig::default()
        .with_bitrate(Bitrate::new(750_000))
        .with_policy(SchedPolicy::Sequential);
    let dropped = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &overload)
        .unwrap();
    assert!(dropped.dropped > 100, "dropped {}", dropped.dropped);

    let priorities: Vec<u32> = (0..12u32).map(|i| 100 - i).collect();
    let shed_config = overload
        .clone()
        .with_admission(AdmissionPolicy::ShedLowestValue {
            priorities: priorities.clone(),
        });
    let shed = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &shed_config)
        .unwrap();
    assert_eq!(shed.dropped, 0, "shedding must prevent every FIFO drop");
    assert!(shed.shed_count() >= 1);

    // Determinism holds on the shed replay too — admission decisions
    // are driven by simulated time, not host scheduling.
    let shed_again = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &shed_config)
        .unwrap();
    assert_serve_reports_identical(&shed, &shed_again);
}

#[test]
fn ecu_backend_over_an_existing_ecu_matches_the_deployment_backend() {
    let bundles: Vec<DetectorBundle> = (0..4)
        .map(|i| {
            DetectorBundle::new(
                [
                    AttackKind::Dos,
                    AttackKind::Fuzzy,
                    AttackKind::GearSpoof,
                    AttackKind::RpmSpoof,
                ][i % 4],
                seeded_model(100 + i as u64),
            )
        })
        .collect();
    let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(250),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0x8DE7,
        ..TrafficConfig::default()
    })
    .build();

    for policy in [SchedPolicy::Sequential, SchedPolicy::DmaBatch { batch: 32 }] {
        let mut ecu = deployment
            .fresh_ecu(EcuConfig {
                policy,
                ..EcuConfig::default()
            })
            .unwrap();
        let over = ServeHarness::new(EcuBackend::over(&mut ecu))
            .replay(&capture, &ReplayConfig::default().with_policy(policy))
            .unwrap();

        let new = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &ReplayConfig::default().with_policy(policy))
            .unwrap();
        assert_eq!(new.sched, policy.label());
        assert_eq!(over.offered, new.offered);
        assert_eq!(over.serviced, new.serviced);
        assert_eq!(over.dropped, new.dropped);
        assert_eq!(over.latency.p50, new.latency.p50);
        assert_eq!(over.latency.p99, new.latency.p99);
        assert_eq!(over.latency.max, new.latency.max);
        assert_eq!(over.flagged, new.flagged);
        let (eo, en) = (over.energy.unwrap(), new.energy.unwrap());
        assert_eq!(eo.mean_power_w.to_bits(), en.mean_power_w.to_bits());
        assert_eq!(
            eo.energy_per_message_j.to_bits(),
            en.energy_per_message_j.to_bits()
        );
    }
}

/// A detector that can never fire: the output layer's normal-class bias
/// is pushed far above (and every attack class far below) any
/// achievable accumulator score, so the argmax is always "normal". The
/// doctored bias lowers verbatim through the dataflow compiler, so the
/// compiled IP is just as silent as the integer model.
fn never_firing_model(seed: u64) -> canids_qnn::IntegerMlp {
    let mut model = seeded_model(seed);
    let dominate = 1i64 << 40;
    model.output.bias_q[0] += dominate;
    for b in model.output.bias_q.iter_mut().skip(1) {
        *b -= dominate;
    }
    model
}

#[test]
fn measured_value_sheds_the_never_firing_model_not_the_lowest_priority() {
    // One ZCU104 carrying two models under a sequential overload: the
    // shard must shed exactly one. Model 0 is a *trained* DoS detector
    // that fires on the capture (real detection value); model 1 never
    // fires (useless). Static priorities are deliberately wrong: model 0
    // is labelled the *lowest* static value, so `ShedLowestValue` sheds
    // the useful model — while `ShedLowestMeasuredValue` reads the
    // verdict stream and sheds the useless one instead.
    let capture = saturated_dos_capture();
    let trained = {
        let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
        let train_capture = pipeline.generate_capture();
        pipeline.train(&train_capture).expect("training").int_mlp
    };
    let never_fires = never_firing_model(7_001);
    {
        let mut eval = StreamingEvaluator::new(never_fires.clone());
        assert!(
            capture.iter().all(|rec| !eval.push(rec).flagged),
            "the doctored model must never fire"
        );
    }
    let bundles = vec![
        DetectorBundle::new(AttackKind::Dos, trained),
        DetectorBundle::new(AttackKind::Fuzzy, never_fires),
    ];
    let plan = FleetPlan::build(&bundles, &FleetConfig::new(vec![BoardSpec::zcu104("solo")]))
        .expect("two models fit one board");
    let deployment = plan.deploy(&bundles, &CompileConfig::default()).unwrap();

    let overload = ReplayConfig::default()
        .with_bitrate(Bitrate::new(750_000))
        .with_policy(SchedPolicy::Sequential);
    // Static labels: the firing model 0 is "lowest value", the useless
    // model 1 is "highest value".
    let static_priorities = vec![1u32, 5u32];

    let static_shed = ServeHarness::new(deployment.serve_backend())
        .replay(
            &capture,
            &overload
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: static_priorities.clone(),
                }),
        )
        .unwrap();
    let measured_shed = ServeHarness::new(deployment.serve_backend())
        .replay(
            &capture,
            &overload
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestMeasuredValue {
                    window: 256,
                    priorities: static_priorities,
                }),
        )
        .unwrap();

    // Both policies keep the line flowing.
    assert_eq!(static_shed.dropped, 0, "static shed must prevent drops");
    assert_eq!(measured_shed.dropped, 0, "measured shed must prevent drops");
    let static_victims: Vec<usize> = static_shed
        .events
        .iter()
        .filter(|e| e.action == FleetAction::Shed)
        .map(|e| e.model)
        .collect();
    let measured_victims: Vec<usize> = measured_shed
        .events
        .iter()
        .filter(|e| e.action == FleetAction::Shed)
        .map(|e| e.model)
        .collect();
    assert!(!static_victims.is_empty(), "overload must trigger shedding");
    assert!(!measured_victims.is_empty());
    assert!(
        static_victims.iter().all(|&m| m == 0),
        "static priorities shed the mislabelled-but-useful model 0: {static_victims:?}"
    );
    assert!(
        measured_victims.iter().all(|&m| m == 1),
        "measured value sheds the never-firing model 1: {measured_victims:?}"
    );
    // The measured replay keeps the firing detector serving: its
    // confirmed-positive count stays positive, the useless model's is 0.
    assert!(measured_shed.per_model[0].confirmed_positives > 0);
    assert_eq!(measured_shed.per_model[1].confirmed_positives, 0);
    // And keeping the useful model online preserves detections the
    // static policy gave away.
    assert!(
        measured_shed.flagged > static_shed.flagged,
        "measured {} !> static {}",
        measured_shed.flagged,
        static_shed.flagged
    );
}

#[test]
fn sweep_results_are_independent_of_thread_interleaving() {
    // Simulated backends are deterministic, so the scenario-parallel
    // sweep must reproduce sequential replays bit for bit — per-scenario
    // results cannot depend on thread interleaving.
    let bundles = twelve_bundles();
    let plan = FleetPlan::build(&bundles, &six_board_fleet()).unwrap();
    let deployment = plan.deploy(&bundles, &CompileConfig::default()).unwrap();
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(200),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0x5EED,
        ..TrafficConfig::default()
    })
    .build();
    let priorities: Vec<u32> = (0..12u32).map(|i| 100 - i).collect();
    let scenarios: Vec<ServeScenario<'_>> = [
        ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 }),
        ReplayConfig::default()
            .with_bitrate(Bitrate::new(750_000))
            .with_policy(SchedPolicy::Sequential),
        ReplayConfig::default()
            .with_bitrate(Bitrate::new(750_000))
            .with_policy(SchedPolicy::Sequential)
            .with_admission(AdmissionPolicy::ShedLowestValue {
                priorities: priorities.clone(),
            }),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, config)| ServeScenario {
        name: format!("scenario-{i}"),
        source: CaptureSource::Capture(&capture),
        config,
    })
    .collect();

    let parallel = ServeHarness::sweep(|| Ok(deployment.serve_backend()), &scenarios).unwrap();
    for (scenario, from_sweep) in scenarios.iter().zip(&parallel) {
        let sequential = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &scenario.config)
            .unwrap();
        assert_eq!(from_sweep.offered, sequential.offered);
        assert_eq!(from_sweep.dropped, sequential.dropped);
        assert_eq!(from_sweep.latency, sequential.latency);
        assert_eq!(from_sweep.events, sequential.events);
        assert_eq!(from_sweep.verdicts, sequential.verdicts);
        assert_eq!(from_sweep.cm, sequential.cm);
    }
    // And a second parallel run agrees with the first.
    let parallel2 = ServeHarness::sweep(|| Ok(deployment.serve_backend()), &scenarios).unwrap();
    for (a, b) in parallel.iter().zip(&parallel2) {
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.events, b.events);
    }
}
