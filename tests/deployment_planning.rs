//! Property tests of the N-detector folding-budget allocator: a plan
//! either fits the device in *every* resource class or fails with a
//! typed error naming the offending model — it never returns an
//! overflowing plan — and scheduling policies never change
//! classification.

use canids_core::deploy::{DeploymentPlan, PlanConfig};
use canids_core::prelude::*;
use canids_dataflow::resources::estimate_resources;
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = Device> {
    prop_oneof![
        Just(Device::ZCU104),
        Just(Device::PYNQ_Z2),
        Just(Device::ULTRA96),
        // A deliberately tight toy device that forces deep folding or
        // overflow.
        Just(Device {
            name: "toy-8k",
            luts: 8_000,
            ffs: 16_000,
            bram36: 12,
            dsps: 16,
        }),
    ]
}

fn arb_kind() -> impl Strategy<Value = AttackKind> {
    prop_oneof![
        Just(AttackKind::Dos),
        Just(AttackKind::Fuzzy),
        Just(AttackKind::GearSpoof),
        Just(AttackKind::RpmSpoof),
    ]
}

fn arb_hidden() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![16]),
        Just(vec![32, 16]),
        Just(vec![64, 32]),
        Just(vec![64, 32, 16]),
    ]
}

fn component(r: ResourceEstimate, class: &str) -> u64 {
    match class {
        "LUT" => r.lut,
        "FF" => r.ff,
        "BRAM36" => r.bram36,
        "DSP" => r.dsp,
        _ => panic!("unknown class {class}"),
    }
}

fn capacity(d: Device, class: &str) -> u64 {
    match class {
        "LUT" => d.luts,
        "FF" => d.ffs,
        "BRAM36" => d.bram36,
        "DSP" => d.dsps,
        _ => panic!("unknown class {class}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planned_totals_never_exceed_the_device(
        seed in 0u64..500,
        n in 1usize..10,
        hidden in arb_hidden(),
        kind in arb_kind(),
        device in arb_device(),
    ) {
        let bundles: Vec<DetectorBundle> = (0..n)
            .map(|i| {
                let mlp = QuantMlp::new(MlpConfig {
                    seed: seed + i as u64,
                    hidden: hidden.clone(),
                    ..MlpConfig::default()
                })
                .unwrap();
                DetectorBundle::new(kind, mlp.export().unwrap())
            })
            .collect();
        let config = PlanConfig {
            device,
            ..PlanConfig::default()
        };
        match DeploymentPlan::build(&bundles, &config) {
            Ok(plan) => {
                // The invariant under test: the summed estimate fits in
                // every class.
                prop_assert!(
                    device.first_overflow(plan.total_resources).is_none(),
                    "allocator returned an overflowing plan on {}: {}",
                    device.name,
                    plan.total_resources
                );
                // Internal consistency: the total is the sum of the
                // per-model budgets, and utilization/headroom derive
                // from it.
                let summed = plan
                    .models
                    .iter()
                    .fold(ResourceEstimate::default(), |acc, m| acc + m.resources);
                prop_assert_eq!(summed, plan.total_resources);
                prop_assert!(plan.utilization <= 1.0 + 1e-9);
                prop_assert_eq!(plan.models.len(), n);
            }
            Err(CoreError::PlanOverflow {
                detector,
                resource,
                required,
                capacity: cap,
                ..
            }) => {
                // The typed error names a real model and a genuinely
                // overflowing class even at the deepest folding.
                prop_assert!(detector < n);
                prop_assert!(required > cap);
                prop_assert_eq!(cap, capacity(device, resource));
                // Re-planning fully sequential confirms the overflow is
                // intrinsic: the sequential estimate of every model
                // summed still exceeds the class.
                let mut sequential_total = ResourceEstimate::default();
                for b in &bundles {
                    let graph = DataflowGraph::from_integer_mlp(&b.model).unwrap();
                    let folding = auto_fold(&graph, FoldingGoal::MinResource).unwrap();
                    sequential_total += estimate_resources(&graph, &folding);
                }
                prop_assert!(
                    component(sequential_total, resource) > cap,
                    "allocator gave up although sequential folding fits: {} {} <= {}",
                    resource,
                    component(sequential_total, resource),
                    cap
                );
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn policies_share_one_classification(
        seed in 0u64..200,
        batch in 2usize..24,
    ) {
        let bundles = vec![
            DetectorBundle::new(
                AttackKind::Dos,
                QuantMlp::new(MlpConfig { seed, ..MlpConfig::default() })
                    .unwrap()
                    .export()
                    .unwrap(),
            ),
            DetectorBundle::new(
                AttackKind::Fuzzy,
                QuantMlp::new(MlpConfig { seed: seed + 1, ..MlpConfig::default() })
                    .unwrap()
                    .export()
                    .unwrap(),
            ),
        ];
        let plan = DeploymentPlan::build(&bundles, &PlanConfig::default()).unwrap();
        let deployment = plan
            .deploy(&bundles, &CompileConfig::default(), EcuConfig::default())
            .unwrap();

        // Gear spoofing at 1 ms keeps the offered rate below even the
        // sequential service rate, so the comparison is drop-free.
        let capture = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(120),
            attack: Some(AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        })
        .build();
        // Original capture pacing (not saturated), so no policy drops
        // frames and the verdict sequences are directly comparable.
        let frames: Vec<(SimTime, CanFrame)> =
            capture.iter().map(|r| (r.timestamp, r.frame)).collect();
        let encoder = IdBitsPayloadBits;
        let featurize = |f: &CanFrame| encoder.encode(f);

        let mut baseline: Option<Vec<bool>> = None;
        for policy in [
            SchedPolicy::Sequential,
            SchedPolicy::RoundRobin,
            SchedPolicy::DmaBatch { batch },
            SchedPolicy::InterruptPerFrame,
        ] {
            let mut ecu = deployment
                .fresh_ecu(EcuConfig { policy, ..EcuConfig::default() })
                .unwrap();
            let report = ecu.process_capture(&frames, &featurize).unwrap();
            prop_assert_eq!(report.dropped, 0, "{} dropped frames", policy.label());
            let flags: Vec<bool> = report.detections.iter().map(|d| d.flagged).collect();
            match &baseline {
                None => baseline = Some(flags),
                Some(b) => prop_assert_eq!(
                    &flags, b,
                    "policy {} changed classification",
                    policy.label()
                ),
            }
        }
    }
}
