//! Property tests for the event-driven network core (ISSUE 6):
//!
//! 1. The scheduler executes events in nondecreasing time, with stable
//!    FIFO ordering among same-time events — the invariant the
//!    bit-for-bit analytic equivalence rests on.
//! 2. Random multi-segment topologies conserve frames: every injected
//!    frame (and every fault-generated flood frame) ends either
//!    delivered at a sink or in the drop log with a typed reason.

use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_core::net::{
    Event, EventTime, Fault, NetOutcome, NetSim, QueueDiscipline, Scheduler, SinkId, Topology,
};
use proptest::prelude::*;

// --------------------------------------------------------------------
// 1. Scheduler ordering
// --------------------------------------------------------------------

/// Records `(firing time, insertion id)` into the shared trace.
struct Probe {
    at: SimTime,
    id: u32,
}

impl Event<Vec<(SimTime, u32)>> for Probe {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.at)
    }
    fn exec(
        self: Box<Self>,
        now: SimTime,
        trace: &mut Vec<(SimTime, u32)>,
    ) -> Vec<Box<dyn Event<Vec<(SimTime, u32)>>>> {
        trace.push((now, self.id));
        Vec::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_fires_in_nondecreasing_time_with_fifo_ties(
        // Few distinct times over many events forces plenty of ties.
        times in proptest::collection::vec(0u64..16, 1..60),
    ) {
        let mut sched: Scheduler<Vec<(SimTime, u32)>> = Scheduler::new();
        for (id, &t) in times.iter().enumerate() {
            sched.schedule(Box::new(Probe {
                at: SimTime::from_micros(t),
                id: u32::try_from(id).unwrap(),
            }));
        }
        let mut trace = Vec::new();
        sched.run(&mut trace);

        prop_assert_eq!(trace.len(), times.len());
        prop_assert_eq!(sched.executed(), times.len() as u64);
        for pair in trace.windows(2) {
            // Time never goes backwards.
            prop_assert!(pair[0].0 <= pair[1].0, "time regressed: {pair:?}");
            // Ties fire in insertion order (stable FIFO).
            if pair[0].0 == pair[1].0 {
                prop_assert!(
                    pair[0].1 < pair[1].1,
                    "same-time events reordered: {pair:?}"
                );
            }
        }
        // Every event fired at its own requested time.
        for &(now, id) in &trace {
            prop_assert_eq!(now, SimTime::from_micros(times[id as usize]));
        }
    }
}

// --------------------------------------------------------------------
// 2. Frame conservation on random topologies
// --------------------------------------------------------------------

/// A random single-backbone tree: each board hangs off the backbone
/// behind a chain of 1..=3 gateway+segment hops.
#[derive(Debug, Clone)]
struct RandomTopo {
    depths: Vec<usize>,
    bitrate_kbps: u32,
    discipline: QueueDiscipline,
    fault: Option<u8>,
    /// Injections as `(time µs, board index modulus)`.
    frames: Vec<(u64, usize)>,
}

fn random_topo() -> impl Strategy<Value = RandomTopo> {
    (
        proptest::collection::vec(1usize..=3, 1..=4),
        prop_oneof![Just(125u32), Just(250), Just(500), Just(1_000)],
        prop_oneof![
            (1usize..24).prop_map(|capacity| QueueDiscipline::DropTail { capacity }),
            (1usize..24).prop_map(|quota| QueueDiscipline::Pfc { quota }),
        ],
        prop_oneof![Just(None), (0u8..3).prop_map(Some)],
        proptest::collection::vec((0u64..20_000, 0usize..4), 1..80),
    )
        .prop_map(
            |(depths, bitrate_kbps, discipline, fault, frames)| RandomTopo {
                depths,
                bitrate_kbps,
                discipline,
                fault,
                frames,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_topologies_conserve_every_frame(topo in random_topo()) {
        let bitrate = Bitrate::new(topo.bitrate_kbps * 1_000);
        let delay = SimTime::from_micros(20);
        let mut b = Topology::builder();
        let backbone = b.segment(bitrate);
        let sinks: Vec<SinkId> = topo
            .depths
            .iter()
            .map(|&depth| {
                let mut upstream = backbone;
                for _ in 0..depth {
                    let gw = b.gateway(upstream, delay, topo.discipline);
                    let seg = b.segment(bitrate);
                    b.port(gw, seg);
                    upstream = seg;
                }
                b.sink(upstream)
            })
            .collect();
        let mut sim = NetSim::new(b.build());

        match topo.fault {
            Some(0) => sim.apply(Fault::BabblingIdiot {
                segment: backbone,
                dest: sinks[0],
                start: SimTime::from_micros(1_000),
                stop: SimTime::from_micros(9_000),
                gap: SimTime::from_micros(80),
            }),
            Some(1) => sim.apply(Fault::BusOff {
                segment: backbone,
                start: SimTime::from_micros(4_000),
                end: SimTime::from_micros(12_000),
            }),
            Some(2) => sim.apply(Fault::GatewayOutage {
                gateway: canids_core::net::GatewayId(0),
                start: SimTime::from_micros(4_000),
                end: SimTime::from_micros(12_000),
            }),
            _ => {}
        }

        let frame = CanFrame::new(CanId::standard(0x321).unwrap(), &[7; 8]).unwrap();
        let tokens: Vec<_> = topo
            .frames
            .iter()
            .map(|&(t, board)| {
                sim.inject(
                    SimTime::from_micros(t),
                    backbone,
                    sinks[board % sinks.len()],
                    frame,
                )
            })
            .collect();
        sim.run();

        let t = sim.topology();
        // Every injected frame resolved to a terminal outcome.
        prop_assert_eq!(t.in_flight(), 0);
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for token in tokens {
            match t.outcome(token) {
                Some(NetOutcome::Delivered(_)) => delivered += 1,
                Some(NetOutcome::Dropped(_)) => dropped += 1,
                None => prop_assert!(false, "unresolved token {token:?}"),
            }
        }
        prop_assert_eq!(delivered + dropped, topo.frames.len() as u64);

        // Global conservation, fault traffic included: everything that
        // entered the network left it at a sink or in the drop log.
        let sunk: u64 = t.sinks_delivered().iter().sum();
        prop_assert_eq!(
            sunk + t.drop_log().len() as u64,
            t.injected() as u64 + t.flood_injected()
        );
        // Typed-reason accounting matches the injected-token ledger:
        // token-carrying drop records are exactly the dropped tokens.
        let token_drops = t.drop_log().iter().filter(|r| r.token.is_some()).count() as u64;
        prop_assert_eq!(token_drops, dropped);
        // Nothing is left buffered in any gateway.
        for load in t.gateway_loads() {
            prop_assert_eq!(load.queued, 0, "gateway {} still buffered", load.gateway);
        }
    }
}
