//! Streaming-vs-batch equivalence — the correctness anchor of the
//! streaming serving mode — plus line-rate harness accounting.

use canids_core::prelude::*;
use canids_dataset::generator::TrafficConfig;

fn trained() -> TrainedDetector {
    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let capture = pipeline.generate_capture();
    pipeline.train(&capture).unwrap()
}

#[test]
fn streaming_and_batch_agree_on_every_frame() {
    let detector = trained();
    let enc = IdBitsPayloadBits;

    // Batch path: whole capture materialised, then classified.
    let (xs, ys) = detector.test_set.to_xy(&enc);
    let mut batch_preds = Vec::with_capacity(xs.len());
    let mut batch_cm = ConfusionMatrix::new();
    for (x, &y) in xs.iter().zip(&ys) {
        let pred = detector.int_mlp.infer_bits(x).class;
        batch_preds.push(pred);
        batch_cm.record(pred != 0, y != 0);
    }
    assert_eq!(
        batch_cm, detector.test_cm,
        "batch path reproduces training-time metrics"
    );

    // Streaming path: frame at a time, reused buffers, online matrix.
    let mut eval = detector.streaming_evaluator();
    let stream_preds: Vec<usize> = detector
        .test_set
        .iter()
        .map(|rec| eval.push(rec).class)
        .collect();

    assert_eq!(stream_preds, batch_preds, "identical predictions");
    assert_eq!(*eval.confusion(), batch_cm, "identical confusion matrices");
}

#[test]
fn streaming_order_does_not_leak_state() {
    // Pushing the same record twice yields the same verdict: the
    // evaluator's reused buffers must be fully overwritten per frame.
    let detector = trained();
    let mut eval = detector.streaming_evaluator();
    let records: Vec<_> = detector.test_set.iter().take(20).collect();
    let first: Vec<usize> = records.iter().map(|r| eval.push(r).class).collect();
    let second: Vec<usize> = records.iter().map(|r| eval.push(r).class).collect();
    assert_eq!(first, second);
}

#[test]
fn line_rate_replay_is_conservative_and_complete() {
    let detector = trained();
    let scenarios = [
        LineRateScenario::classic_1m(
            "dos-1m",
            Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            canids_can::time::SimTime::from_millis(150),
        ),
        LineRateScenario::fd_class(
            "dos-fd",
            Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            canids_can::time::SimTime::from_millis(150),
        ),
    ];
    let serve_scenarios: Vec<ServeScenario<'_>> = scenarios
        .iter()
        .map(|s| ServeScenario {
            name: s.name.clone(),
            source: CaptureSource::Generate(TrafficConfig {
                duration: s.duration,
                attack: s.attack,
                seed: s.seed,
                ..TrafficConfig::default()
            }),
            config: s.replay_config(),
        })
        .collect();
    let reports = ServeHarness::sweep(
        || Ok(SoftwareBackend::single(detector.int_mlp.clone())),
        &serve_scenarios,
    )
    .unwrap();
    assert_eq!(reports.len(), 2);
    for r in &reports {
        // Conservation: every offered frame is serviced or dropped.
        assert_eq!(r.serviced + r.dropped as usize, r.offered);
        assert_eq!(r.cm.total() as usize, r.serviced);
        assert!(r.latency.p50 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        assert!(
            r.offered_fps > 1_000.0,
            "{} offers {}",
            r.scenario,
            r.offered_fps
        );
    }
    // FD-class pacing strictly raises the offered load.
    assert!(reports[1].offered_fps > reports[0].offered_fps);
    // The paper's line-rate claim, checked for real in release builds
    // (debug builds measure an unoptimised binary).
    if !cfg!(debug_assertions) {
        let classic = &reports[0];
        assert!(
            classic.keeps_up() && classic.sustained_fps.unwrap_or(0.0) >= classic.offered_fps,
            "classic CAN line rate not sustained: {:.0}/{:.0} fps, {} drops",
            classic.sustained_fps.unwrap_or(0.0),
            classic.offered_fps,
            classic.dropped
        );
    }
}

#[test]
fn ecu_streaming_session_equals_batch_processing() {
    // The SoC-level second serving mode: pushing frames one at a time
    // through an EcuStream session matches process_capture exactly.
    let detector = trained();
    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let ip = pipeline.compile(&detector.int_mlp).unwrap();
    let frames: Vec<_> = detector
        .test_set
        .iter()
        .take(200)
        .map(|r| (r.timestamp, r.frame))
        .collect();
    let enc = IdBitsPayloadBits;
    let featurize = move |f: &canids_can::frame::CanFrame| enc.encode(f);

    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(ip.clone()).unwrap();
    let mut batch_ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    let batch = batch_ecu.process_capture(&frames, &featurize).unwrap();

    let mut board2 = Zcu104Board::new(BoardConfig::default());
    let idx2 = board2.attach_accelerator(ip).unwrap();
    let mut stream_ecu = IdsEcu::new(board2, vec![idx2], EcuConfig::default());
    let mut session = stream_ecu.stream();
    for &(t, f) in &frames {
        session.push(t, f, &featurize).unwrap();
    }
    let streamed = session.finish();

    assert_eq!(batch, streamed);
    assert!(!streamed.detections.is_empty());
}

#[test]
fn fast_kernel_classifies_real_captures_like_pinned_kernel() {
    // Capture-level re-validation of the reassociated eval kernel: over
    // a trained detector's real held-out capture, the fast float
    // forward and the pinned-order reference forward pick the same
    // class on every frame — except where the pinned top-2 logits
    // mathematically tie within kernel rounding, where either order is
    // a legitimate rounding of the same sum. (The deployed integer
    // path is bit-identical unconditionally; the streaming tests above
    // pin that.)
    let mut detector = trained();
    let enc = IdBitsPayloadBits;
    let (xs, _) = detector.test_set.to_xy(&enc);
    let dim = enc.dim();
    let mut ties = 0usize;
    for (i, feats) in xs.iter().enumerate() {
        let x = Matrix::from_vec(1, dim, feats.clone());
        let fast = detector.mlp.forward(&x, false);
        let pinned = detector.mlp.forward_reference(&x);
        let argmax = |row: &[f32]| {
            row.iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(k, _)| k)
                .unwrap_or(0)
        };
        let (p, f) = (argmax(pinned.row(0)), argmax(fast.row(0)));
        if p != f {
            let gap = (pinned.row(0)[p] - pinned.row(0)[f]).abs();
            assert!(
                gap <= 1e-3 * (1.0 + pinned.row(0)[p].abs()),
                "frame {i}: argmax {p} vs {f} with non-tied gap {gap}"
            );
            ties += 1;
        }
    }
    // Ties are the exception, not the rule: the kernels agree outright
    // on the overwhelming majority of real frames.
    assert!(
        ties * 100 <= xs.len(),
        "{ties} ties out of {} frames — reassociation moved more than 1%",
        xs.len()
    );
}
