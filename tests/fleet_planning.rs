//! Property tests of the cross-ECU fleet partitioner: a fleet plan
//! either fits every shard on its board in *every* resource class (an
//! exact partition of the bundles, admission caps respected) or fails
//! with a typed [`CoreError::FleetOverflow`] naming a real detector and
//! a genuine shortfall — and a sharded fleet classifies bit-identically
//! to the same detectors deployed together on one sufficiently large
//! board.
use canids_core::fleet::{FleetPlan, FleetShard};
use canids_core::prelude::*;
use proptest::prelude::*;

fn arb_boards() -> impl Strategy<Value = Vec<BoardSpec>> {
    prop_oneof![
        Just(vec![
            BoardSpec::zcu104("zcu-a"),
            BoardSpec::ultra96("u96-a"),
            BoardSpec::pynq_z2("pynq-a"),
        ]),
        Just(vec![
            BoardSpec::pynq_z2("pynq-a"),
            BoardSpec::pynq_z2("pynq-b")
        ]),
        Just(vec![BoardSpec::zcu104("zcu-a")]),
        // A deliberately tight fleet that forces deep folding or
        // overflow.
        Just(vec![
            BoardSpec {
                name: "toy-a".to_owned(),
                device: Device {
                    name: "toy-8k",
                    luts: 8_000,
                    ffs: 16_000,
                    bram36: 12,
                    dsps: 16,
                },
                clock_hz: 100_000_000,
            },
            BoardSpec {
                name: "toy-b".to_owned(),
                device: Device {
                    name: "toy-8k",
                    luts: 8_000,
                    ffs: 16_000,
                    bram36: 12,
                    dsps: 16,
                },
                clock_hz: 100_000_000,
            },
        ]),
    ]
}

fn arb_hidden() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![Just(vec![16]), Just(vec![32, 16]), Just(vec![64, 32])]
}

fn arb_cap() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), Just(Some(1)), Just(Some(2)), Just(Some(4))]
}

fn bundles(seed: u64, n: usize, hidden: &[usize]) -> Vec<DetectorBundle> {
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::GearSpoof,
        AttackKind::RpmSpoof,
    ];
    (0..n)
        .map(|i| {
            let mlp = QuantMlp::new(MlpConfig {
                seed: seed + i as u64,
                hidden: hidden.to_vec(),
                ..MlpConfig::default()
            })
            .unwrap();
            DetectorBundle::new(kinds[i % 4], mlp.export().unwrap())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fleet_plans_partition_exactly_and_never_overflow_any_board(
        seed in 0u64..300,
        n in 1usize..8,
        hidden in arb_hidden(),
        boards in arb_boards(),
        cap in arb_cap(),
    ) {
        let bs = bundles(seed, n, &hidden);
        let m = boards.len();
        let mut config = FleetConfig::new(boards);
        config.max_models_per_board = cap;
        match FleetPlan::build(&bs, &config) {
            Ok(plan) => {
                // Exact partition: every bundle on exactly one board.
                let mut placed: Vec<usize> = plan
                    .shards
                    .iter()
                    .flat_map(|s| s.members.iter().copied())
                    .collect();
                placed.sort_unstable();
                prop_assert_eq!(placed, (0..n).collect::<Vec<_>>());
                prop_assert_eq!(plan.assignment.len(), n);
                for (i, &b) in plan.assignment.iter().enumerate() {
                    prop_assert!(plan.shards[b].members.contains(&i));
                }
                // Every shard fits its own device in every class, and
                // respects the admission cap.
                for shard in &plan.shards {
                    if let Some(c) = cap {
                        prop_assert!(shard.members.len() <= c);
                    }
                    match &shard.plan {
                        Some(p) => {
                            prop_assert!(
                                shard.spec.device.first_overflow(p.total_resources).is_none(),
                                "shard {} overflows: {}",
                                shard.spec.name,
                                p.total_resources
                            );
                            prop_assert_eq!(p.models.len(), shard.members.len());
                        }
                        None => prop_assert!(shard.members.is_empty()),
                    }
                }
            }
            Err(CoreError::FleetOverflow {
                detector,
                boards: tried,
                resource,
                required,
                capacity,
                ..
            }) => {
                // The typed error names a real detector, the whole
                // fleet, and a genuine shortfall.
                prop_assert!(detector < n);
                prop_assert_eq!(tried, m);
                prop_assert!(required > capacity, "{} !> {}", required, capacity);
                if resource == "SLOTS" {
                    let c = cap.expect("SLOTS overflow only with a cap");
                    prop_assert_eq!(capacity, c as u64);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

/// A device big enough to hold any fleet this file generates on one
/// board.
fn mega_board() -> Device {
    Device {
        name: "mega",
        luts: 10_000_000,
        ffs: 20_000_000,
        bram36: 10_000,
        dsps: 50_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sharded_fleet_classifies_bit_identically_to_one_big_board(
        seed in 0u64..100,
        n in 2usize..5,
    ) {
        let bs = bundles(seed, n, &[16]);

        // Fleet: three heterogeneous boards behind gateways.
        let fleet_plan = FleetPlan::build(
            &bs,
            &FleetConfig::new(vec![
                BoardSpec::zcu104("zcu-a"),
                BoardSpec::ultra96("u96-a"),
                BoardSpec::pynq_z2("pynq-a"),
            ]),
        )
        .unwrap();
        let fleet = fleet_plan.deploy(&bs, &CompileConfig::default()).unwrap();

        // Reference: the same bundles side by side on one huge board.
        let single_plan = DeploymentPlan::build(
            &bs,
            &PlanConfig {
                device: mega_board(),
                ..PlanConfig::default()
            },
        )
        .unwrap();
        let single = single_plan
            .deploy(&bs, &CompileConfig::default(), EcuConfig::default())
            .unwrap();

        // A non-saturating capture (original 500 kb/s pacing): neither
        // deployment drops, so the verdict sequences align frame for
        // frame.
        let capture = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(150),
            attack: Some(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
            seed: 0xBEEF + seed,
            ..TrafficConfig::default()
        })
        .build();

        let report = ServeHarness::new(fleet.serve_backend())
            .replay(
                &capture,
                &ReplayConfig::default().with_pacing(Pacing::AsRecorded),
            )
            .unwrap();
        prop_assert_eq!(report.dropped, 0, "fleet must not drop at capture pacing");
        prop_assert_eq!(report.verdicts.len(), capture.len());

        let frames: Vec<(SimTime, CanFrame)> =
            capture.iter().map(|r| (r.timestamp, r.frame)).collect();
        let encoder = IdBitsPayloadBits;
        let mut ecu = single.fresh_ecu(EcuConfig::default()).unwrap();
        let single_report = ecu
            .process_capture(&frames, &|f: &CanFrame| encoder.encode(f))
            .unwrap();
        prop_assert_eq!(single_report.dropped, 0);

        // Bit-identical fused classification: the OR over shards equals
        // the OR over all models on one board, frame for frame.
        prop_assert_eq!(single_report.detections.len(), report.verdicts.len());
        for (d, v) in single_report.detections.iter().zip(&report.verdicts) {
            prop_assert_eq!(d.arrival, v.0, "arrival alignment");
            prop_assert_eq!(d.flagged, v.1, "fused verdict diverged at {}", v.0);
        }
    }
}

#[test]
fn spare_board_shards_expose_zero_resources() {
    let bs = bundles(7, 1, &[16]);
    let plan = FleetPlan::build(
        &bs,
        &FleetConfig::new(vec![BoardSpec::zcu104("a"), BoardSpec::zcu104("b")]),
    )
    .unwrap();
    let spare: Vec<&FleetShard> = plan
        .shards
        .iter()
        .filter(|s| s.members.is_empty())
        .collect();
    assert_eq!(spare.len(), 1);
    assert_eq!(spare[0].resources(), ResourceEstimate::default());
    assert_eq!(spare[0].utilization(), 0.0);
}
