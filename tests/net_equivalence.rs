//! Event-driven network core vs analytic gateway path (ISSUE 6).
//!
//! On uncongested single-backbone topologies the event-driven
//! [`FleetTransport::EventDriven`] replay must reproduce the analytic
//! `SegmentForwarder` path **bit for bit** (every f64 compared via
//! `to_bits`), across all four `SchedPolicy`s and all four
//! `AdmissionPolicy`s: the event core's `PortService` computes exactly
//! the analytic forwarding recurrence on carried timestamps, so
//! identical delivery times must yield identical reports. The analytic
//! model cannot express congestion or faults, and a babbling-idiot
//! flood through a finite drop-tail gateway demonstrably diverges.

use canids_core::net::{Fault, NetConfig, QueueDiscipline, SegmentId, SinkId};
use canids_core::prelude::*;
use canids_core::serve::FleetTransport;

/// Untrained paper-topology model (weights seeded): transport timing
/// and admission behaviour do not depend on weight values.
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

/// Four detectors over two ZCU104 boards, two per shard — small enough
/// to replay 4 policies × 2 transports quickly, loaded enough that a
/// sequential per-message overload trips every admission policy.
fn four_bundles() -> Vec<DetectorBundle> {
    let kinds = [AttackKind::Dos, AttackKind::Fuzzy];
    (0..4)
        .map(|i| DetectorBundle::new(kinds[i % 2], seeded_model(600 + i as u64)))
        .collect()
}

fn two_board_fleet() -> FleetDeployment {
    let bundles = four_bundles();
    let config = FleetConfig::new(vec![BoardSpec::zcu104("zcu-a"), BoardSpec::zcu104("zcu-b")])
        .with_model_cap(2);
    let plan = FleetPlan::build(&bundles, &config).expect("fleet plan fits");
    plan.deploy(&bundles, &CompileConfig::default())
        .expect("fleet compiles")
}

fn dos_capture(millis: u64, seed: u64) -> Dataset {
    DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(millis),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed,
        ..TrafficConfig::default()
    })
    .build()
}

/// Descending static priorities for the 4-model fleet.
fn priorities() -> Vec<u32> {
    (0..4u32).map(|i| 100 - i).collect()
}

/// Every `ServeReport` field except `gateways` compared bitwise (f64s
/// via `to_bits`, so "close" is not "equal"). `gateways` is the one
/// legitimate difference: the analytic transport has no buffer model to
/// report, the event-driven one does.
fn assert_reports_bit_identical(a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.scenario, b.scenario);
    assert_eq!(a.backend, b.backend);
    assert_eq!(a.sched, b.sched);
    assert_eq!(a.admission, b.admission);
    assert_eq!(a.bitrate_bps, b.bitrate_bps);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.serviced, b.serviced);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.first_arrival, b.first_arrival);
    assert_eq!(a.last_arrival, b.last_arrival);
    assert_eq!(a.offered_fps.to_bits(), b.offered_fps.to_bits());
    assert_eq!(
        a.sustained_fps.map(f64::to_bits),
        b.sustained_fps.map(f64::to_bits)
    );
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.latency.max, b.latency.max);
    assert_eq!(a.flagged, b.flagged);
    assert_eq!(a.fully_covered, b.fully_covered);
    assert_eq!(a.cm, b.cm);
    match (&a.energy, &b.energy) {
        (Some(ea), Some(eb)) => {
            assert_eq!(ea.mean_power_w.to_bits(), eb.mean_power_w.to_bits());
            assert_eq!(
                ea.energy_per_message_j.to_bits(),
                eb.energy_per_message_j.to_bits()
            );
        }
        (None, None) => {}
        _ => panic!("one report meters energy, the other does not"),
    }
    assert_eq!(a.boards.len(), b.boards.len());
    for (ab, bb) in a.boards.iter().zip(&b.boards) {
        assert_eq!(ab.board, bb.board);
        assert_eq!(ab.models, bb.models);
        assert_eq!(ab.offered, bb.offered);
        assert_eq!(ab.serviced, bb.serviced);
        assert_eq!(ab.dropped, bb.dropped);
        assert_eq!(ab.latency.p50, bb.latency.p50);
        assert_eq!(ab.latency.p99, bb.latency.p99);
        assert_eq!(ab.latency.max, bb.latency.max);
        match (&ab.energy, &bb.energy) {
            (Some(ea), Some(eb)) => {
                assert_eq!(ea.mean_power_w.to_bits(), eb.mean_power_w.to_bits());
                assert_eq!(
                    ea.energy_per_message_j.to_bits(),
                    eb.energy_per_message_j.to_bits()
                );
            }
            (None, None) => {}
            _ => panic!("board {} energy mismatch", ab.board),
        }
    }
    assert_eq!(a.per_model.len(), b.per_model.len());
    for (am, bm) in a.per_model.iter().zip(&b.per_model) {
        assert_eq!(am.model, bm.model);
        assert_eq!(am.name, bm.name);
        assert_eq!(am.home, bm.home);
        assert_eq!(am.consulted, bm.consulted);
        assert_eq!(am.flagged, bm.flagged);
        assert_eq!(am.confirmed_positives, bm.confirmed_positives);
        assert_eq!(am.cm, bm.cm);
    }
    assert_eq!(a.events, b.events);
    assert_eq!(a.verdicts, b.verdicts);
}

#[test]
fn event_transport_matches_analytic_bit_for_bit_across_sched_policies() {
    let deployment = two_board_fleet();
    let capture = dos_capture(200, 0x6E7A);

    let policies = [
        SchedPolicy::Sequential,
        SchedPolicy::RoundRobin,
        SchedPolicy::DmaBatch { batch: 32 },
        SchedPolicy::InterruptPerFrame,
    ];
    for policy in policies {
        let analytic_config = ReplayConfig::default().with_policy(policy);
        let event_config = analytic_config
            .clone()
            .with_transport(FleetTransport::EventDriven(NetConfig::default()));

        let analytic = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &analytic_config)
            .expect("analytic replay");
        let event = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &event_config)
            .expect("event-driven replay");

        assert_reports_bit_identical(&analytic, &event);

        // The one intended difference: only the event-driven transport
        // carries a per-gateway networking section, and while
        // uncongested its gateways forward everything they see.
        assert!(analytic.gateways.is_empty(), "{}", policy.label());
        assert_eq!(event.gateways.len(), 2, "{}", policy.label());
        for g in &event.gateways {
            assert_eq!(g.forwarded, capture.len() as u64, "gw {}", g.gateway);
            assert_eq!(g.dropped(), 0, "gw {}", g.gateway);
            assert_eq!(g.paused, 0, "gw {}", g.gateway);
            assert_eq!(g.queued, 0, "gw {}", g.gateway);
        }
    }
}

#[test]
fn event_transport_matches_analytic_bit_for_bit_across_admission_policies() {
    let deployment = two_board_fleet();
    let capture = dos_capture(250, 0xAD31);

    // A deliberate per-message overload so every admission policy has
    // real shed/readmit/migrate decisions to reproduce.
    let overloaded = ReplayConfig {
        bitrate: Bitrate::new(750_000),
        ecu: EcuConfig {
            policy: SchedPolicy::Sequential,
            ..EcuConfig::default()
        },
        ..ReplayConfig::default()
    };
    let admissions = [
        AdmissionPolicy::DropFrames,
        AdmissionPolicy::ShedLowestValue {
            priorities: priorities(),
        },
        AdmissionPolicy::ShedLowestMeasuredValue {
            window: 256,
            priorities: priorities(),
        },
        AdmissionPolicy::Rebalance {
            priorities: priorities(),
        },
    ];
    for admission in admissions {
        let analytic_config = overloaded.clone().with_admission(admission.clone());
        let event_config = analytic_config
            .clone()
            .with_transport(FleetTransport::EventDriven(NetConfig::default()));

        let analytic = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &analytic_config)
            .expect("analytic replay");
        let event = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &event_config)
            .expect("event-driven replay");

        assert_eq!(analytic.admission, admission.label());
        assert_reports_bit_identical(&analytic, &event);
        assert!(analytic.gateways.is_empty());
        assert_eq!(event.gateways.len(), 2);
    }
    // The overload is real: DropFrames drops, the shed policies do not.
    let dropped = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &overloaded)
        .unwrap();
    assert!(dropped.dropped > 0, "the 750 kb/s overload must drop");
    let shed = ServeHarness::new(deployment.serve_backend())
        .replay(
            &capture,
            &overloaded
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: priorities(),
                }),
        )
        .unwrap();
    assert!(shed.shed_count() >= 1, "the overload must trigger shedding");
}

#[test]
fn congested_event_topology_diverges_from_the_analytic_model() {
    // A babbling idiot floods board 0's gateway port faster than its
    // leaf segment can drain, through a 4-frame shared drop-tail
    // buffer. The analytic forwarder has no buffer to fill — it keeps
    // reporting zero loss — while the event-driven core drops board-0
    // frames with a typed buffer-full reason. This is the scenario the
    // closed form cannot express.
    let deployment = two_board_fleet();
    let capture = dos_capture(200, 0xBAB);

    let best = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });
    let analytic = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &best)
        .unwrap();
    assert_eq!(analytic.dropped, 0, "uncongested baseline keeps up");
    assert_eq!(analytic.fully_covered, analytic.offered);

    let flooded = best.with_transport(FleetTransport::EventDriven(NetConfig {
        discipline: QueueDiscipline::DropTail { capacity: 4 },
        faults: vec![Fault::BabblingIdiot {
            segment: SegmentId(0),
            dest: SinkId(0),
            start: SimTime::ZERO,
            stop: SimTime::from_millis(400),
            gap: SimTime::from_micros(60),
        }],
    }));
    let event = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &flooded)
        .unwrap();

    // Divergence, not equivalence: the flood starves board 0.
    assert!(
        event.dropped > 0,
        "the flooded drop-tail gateway must lose board-0 frames"
    );
    assert!(event.fully_covered < event.offered);
    assert!(event.boards[0].dropped > analytic.boards[0].dropped);
    // Board 1's gateway is untouched — every frame still arrives there.
    assert_eq!(event.boards[1].dropped, analytic.boards[1].dropped);
    // The loss is typed and accounted at gateway 0.
    let g0 = &event.gateways[0];
    assert!(g0.dropped_full > 0, "drop-tail losses must be buffer-full");
    assert_eq!(g0.dropped_outage, 0);
    assert_eq!(g0.dropped_bus_off, 0);
    assert_eq!(event.gateways[1].dropped(), 0);
}
