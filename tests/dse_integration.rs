//! Design-space-exploration integration: the sweep trains real models,
//! compiles real IPs and orders costs sensibly.

use canids_core::dse::sweep_bitwidths;
use canids_core::prelude::*;

#[test]
fn sweep_over_widths_is_cost_monotone_and_accurate() {
    let config = PipelineConfig::dos().quick();
    let capture = IdsPipeline::new(config.clone()).generate_capture();
    let report = sweep_bitwidths(&config, &capture, &[2, 4, 8]).expect("sweep");

    assert_eq!(report.points.len(), 3);
    // Resource cost never shrinks with wider datapaths.
    assert!(report.points[0].luts <= report.points[1].luts);
    assert!(report.points[1].luts <= report.points[2].luts);

    // The DoS problem is separable at every width ≥ 2 (the paper's DSE
    // finds no accuracy loss at 4 bits).
    for p in &report.points {
        assert!(
            p.cm.accuracy() > 0.95,
            "{}-bit accuracy {}",
            p.bits,
            p.cm.accuracy()
        );
    }

    // The selected point is never dominated: no other point has both
    // higher F1 and lower utilisation.
    let sel = report.selected_point();
    for p in &report.points {
        let dominates = p.cm.f1() > sel.cm.f1() + 1e-9 && p.utilization < sel.utilization;
        assert!(!dominates, "{}-bit dominates the selection", p.bits);
    }
}

#[test]
fn four_bit_matches_eight_bit_accuracy_at_lower_cost() {
    // The core DSE claim: 4-bit ≈ 8-bit accuracy with a cheaper design.
    let config = PipelineConfig::fuzzy().quick();
    let capture = IdsPipeline::new(config.clone()).generate_capture();
    let report = sweep_bitwidths(&config, &capture, &[4, 8]).expect("sweep");
    let four = &report.points[0];
    let eight = &report.points[1];
    assert!(
        four.cm.f1() >= eight.cm.f1() - 0.01,
        "4-bit f1 {} vs 8-bit {}",
        four.cm.f1(),
        eight.cm.f1()
    );
    assert!(four.luts <= eight.luts);
}
