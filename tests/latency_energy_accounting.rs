//! Accounting invariants across driver, ECU, power and energy paths.

use canids_core::prelude::*;
use canids_dataflow::ip::AcceleratorIp;

fn quick_ip() -> AcceleratorIp {
    let mlp = QuantMlp::new(MlpConfig::paper_4bit()).unwrap();
    AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap()
}

#[test]
fn driver_breakdown_sums_to_latency() {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(quick_ip()).unwrap();
    for seed in 0..8u64 {
        let bits: Vec<f32> = (0..75)
            .map(|i| f32::from((seed.wrapping_mul(i as u64 + 3) >> 2) & 1 == 1))
            .collect();
        let rec = board.infer(idx, &bits).unwrap();
        assert_eq!(rec.latency(), rec.breakdown.total());
        assert!(rec.breakdown.dispatch >= SimTime::from_micros(90));
        assert!(rec.breakdown.compute_wait >= SimTime::ZERO);
    }
}

#[test]
fn energy_equals_power_times_latency() {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(quick_ip()).unwrap();
    let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    let frames: Vec<(SimTime, CanFrame)> = (0..100u8)
        .map(|i| {
            (
                SimTime::from_micros(130 * u64::from(i)),
                CanFrame::new(CanId::standard(0x2C0).unwrap(), &[i; 8]).unwrap(),
            )
        })
        .collect();
    let report = ecu
        .process_capture(&frames, &|_f: &CanFrame| vec![0.0; 75])
        .unwrap();
    let derived = report.mean_power_w * report.mean_latency.as_secs_f64();
    assert!(
        (derived - report.energy_per_message_j).abs() < 1e-12,
        "energy accounting must be power x latency"
    );
}

#[test]
fn power_monitor_integrates_ecu_profile() {
    // Sample a synthetic busy/idle profile and check the integral.
    let mut monitor = PowerMonitor::new();
    let busy = 2.09f64;
    let idle = 1.76f64;
    for i in 0..=10u64 {
        let w = if i % 2 == 0 { busy } else { idle };
        monitor.sample(SimTime::from_millis(i * 10), w);
    }
    let e = monitor.energy_j();
    let span = 0.1f64;
    assert!(e > idle * span && e < busy * span, "energy {e}");
}

#[test]
fn baremetal_ablation_shows_software_dominance() {
    // Swap the Linux cost model for bare-metal: the per-message latency
    // collapses, proving the 0.12 ms is software-bound (the paper's
    // AUTOSAR-integration discussion).
    let mut linux_board = Zcu104Board::new(BoardConfig::default());
    let li = linux_board.attach_accelerator(quick_ip()).unwrap();
    let linux_rec = linux_board.infer(li, &[0.0; 75]).unwrap();

    let mut bm_board = Zcu104Board::new(BoardConfig {
        cpu: CpuModel::zynqmp_a53_baremetal(),
        ..BoardConfig::default()
    });
    let bi = bm_board.attach_accelerator(quick_ip()).unwrap();
    let bm_rec = bm_board.infer(bi, &[0.0; 75]).unwrap();

    assert!(
        bm_rec.latency().as_nanos() * 5 < linux_rec.latency().as_nanos(),
        "bare-metal {} vs linux {}",
        bm_rec.latency(),
        linux_rec.latency()
    );
}

#[test]
fn queue_latency_grows_monotonically_under_burst() {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(quick_ip()).unwrap();
    let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    // A burst of simultaneous arrivals: each later frame waits longer.
    let frames: Vec<(SimTime, CanFrame)> = (0..10u8)
        .map(|i| {
            (
                SimTime::ZERO,
                CanFrame::new(CanId::standard(0x100).unwrap(), &[i]).unwrap(),
            )
        })
        .collect();
    let report = ecu
        .process_capture(&frames, &|_f: &CanFrame| vec![0.0; 75])
        .unwrap();
    for w in report.detections.windows(2) {
        assert!(w[1].latency() > w[0].latency());
    }
}
