//! Cross-ECU fleet acceptance (ISSUE 4): twelve detectors sharded over
//! six heterogeneous boards (three device classes) sustain a saturated
//! 1 Mb/s backbone with zero drops under the best integration, and under
//! a deliberate per-message overload the `ShedLowestValue` admission
//! policy sheds only each overloaded shard's lowest-priority model — no
//! frame drops — while `DropFrames` measurably drops. `bench_summary`
//! records the same scenario in `BENCH_4.json`.

use canids_core::fleet::{FleetAction, FleetEvent};
use canids_core::prelude::*;
use canids_core::serve::CaptureSource;

/// Untrained paper-topology model (weights seeded): fleet geometry,
/// timing and admission behaviour do not depend on weight values.
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

/// The acceptance fleet: DoS, Fuzzy, gear-spoof, RPM-spoof and two
/// duplicates of each — a vehicle's worth of detectors.
fn twelve_bundles() -> Vec<DetectorBundle> {
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::GearSpoof,
        AttackKind::RpmSpoof,
    ];
    (0..12)
        .map(|i| DetectorBundle::new(kinds[i % 4], seeded_model(400 + i as u64)))
        .collect()
}

/// Six boards, three device classes, admission-capped at two models per
/// board so per-message serving stays one shed away from line rate.
fn six_board_fleet() -> FleetConfig {
    FleetConfig::new(vec![
        BoardSpec::zcu104("zcu-a"),
        BoardSpec::zcu104("zcu-b"),
        BoardSpec::ultra96("u96-a"),
        BoardSpec::ultra96("u96-b"),
        BoardSpec::pynq_z2("pynq-a"),
        BoardSpec::pynq_z2("pynq-b"),
    ])
    .with_model_cap(2)
}

fn saturated_dos_capture() -> Dataset {
    DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(400),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xF1EE7,
        ..TrafficConfig::default()
    })
    .build()
}

/// Descending priorities: model 0 is the most valuable, model 11 the
/// first to shed.
fn priorities() -> Vec<u32> {
    (0..12u32).map(|i| 100 - i).collect()
}

#[test]
fn twelve_detectors_on_six_heterogeneous_boards_hold_line_rate_and_degrade_gracefully() {
    let bundles = twelve_bundles();

    // 1. The partitioner spreads 12 detectors two per board, every shard
    // proven to fit its own device.
    let plan = FleetPlan::build(&bundles, &six_board_fleet()).expect("fleet plan fits");
    assert_eq!(plan.models(), 12);
    assert_eq!(plan.occupied_boards(), 6);
    for shard in &plan.shards {
        assert_eq!(shard.members.len(), 2, "{}", shard.spec.name);
        let p = shard.plan.as_ref().unwrap();
        assert!(
            shard
                .spec
                .device
                .first_overflow(p.total_resources)
                .is_none(),
            "{} overflows",
            shard.spec.name
        );
    }
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default())
        .expect("fleet compiles");
    assert_eq!(deployment.models(), 12);

    let capture = saturated_dos_capture();

    // 2. Best integration: per-shard DMA batching absorbs the saturated
    // 1 Mb/s backbone on every board with zero drops, full coverage.
    let best = ServeHarness::new(deployment.serve_backend())
        .replay(
            &capture,
            &ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 }),
        )
        .expect("best-policy replay");
    assert_eq!(best.offered, capture.len());
    assert!(
        best.offered_fps > 7_000.0,
        "saturated 1 Mb/s offers ~8 kfps: {}",
        best.offered_fps
    );
    assert_eq!(best.dropped, 0, "DMA batching must absorb full line rate");
    assert_eq!(
        best.fully_covered, best.offered,
        "all 6 boards saw every frame"
    );
    assert!(best.keeps_up());
    assert!(best.events.is_empty());

    // 3. Deliberate overload: per-message sequential serving costs ~2
    // full driver paths (~190 us) per frame against a ~167 us
    // inter-arrival at 750 kb/s — two models overload every shard, one
    // holds comfortably. Today's behaviour (DropFrames) measurably
    // drops on every shard.
    let overloaded = ReplayConfig {
        bitrate: Bitrate::new(750_000),
        ecu: EcuConfig {
            policy: SchedPolicy::Sequential,
            ..EcuConfig::default()
        },
        ..ReplayConfig::default()
    };
    let dropped = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &overloaded)
        .expect("drop-frames overload replay");
    assert!(
        dropped.dropped > 100,
        "sequential 2-model shards cannot hold 1 Mb/s: dropped {}",
        dropped.dropped
    );
    assert!(!dropped.keeps_up());

    // 4. Same overload under ShedLowestValue: zero drops, and only each
    // overloaded shard's lowest-priority model is ever shed.
    let shed_config = ReplayConfig {
        admission: AdmissionPolicy::ShedLowestValue {
            priorities: priorities(),
        },
        ..overloaded
    };
    let shed = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &shed_config)
        .expect("shed overload replay");
    assert_eq!(shed.dropped, 0, "shedding must prevent every FIFO drop");
    assert!(shed.shed_count() >= 1, "the overload must trigger shedding");

    // Per shard, the expected victim is its lowest-priority member.
    let prios = priorities();
    let expected_victim: Vec<usize> = plan
        .shards
        .iter()
        .map(|s| s.members.iter().copied().min_by_key(|&m| prios[m]).unwrap())
        .collect();
    let sheds: Vec<&FleetEvent> = shed
        .events
        .iter()
        .filter(|e| e.action == FleetAction::Shed)
        .collect();
    for e in &sheds {
        assert_eq!(
            e.model, expected_victim[e.board],
            "board {} shed model {}, expected its lowest-priority member {}",
            e.board, e.model, expected_victim[e.board]
        );
    }
    // "Only the lowest-priority model": one distinct victim per board.
    for b in 0..6 {
        let mut victims: Vec<usize> = sheds
            .iter()
            .filter(|e| e.board == b)
            .map(|e| e.model)
            .collect();
        victims.dedup();
        assert!(
            victims.len() <= 1,
            "board {b} shed more than one distinct model: {victims:?}"
        );
    }
    // Coverage still flows: every frame got at least one verdict.
    assert_eq!(shed.verdicts.len(), shed.offered);
}

#[test]
fn policy_sweep_contrasts_admission_policies_in_parallel() {
    // The scenario-parallel sweep (one scoped thread per replay)
    // reproduces the sequential contrast: DropFrames
    // drops under per-message overload, ShedLowestValue does not.
    let bundles = twelve_bundles();
    let plan = FleetPlan::build(&bundles, &six_board_fleet()).unwrap();
    let deployment = plan.deploy(&bundles, &CompileConfig::default()).unwrap();
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(200),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0x5EED,
        ..TrafficConfig::default()
    })
    .build();
    let overload = EcuConfig {
        policy: SchedPolicy::Sequential,
        ..EcuConfig::default()
    };
    let scenarios = vec![
        ServeScenario {
            name: "drop-frames".into(),
            source: CaptureSource::Capture(&capture),
            config: ReplayConfig {
                bitrate: Bitrate::new(750_000),
                ecu: overload,
                ..ReplayConfig::default()
            },
        },
        ServeScenario {
            name: "shed-lowest-value".into(),
            source: CaptureSource::Capture(&capture),
            config: ReplayConfig {
                bitrate: Bitrate::new(750_000),
                ecu: overload,
                admission: AdmissionPolicy::ShedLowestValue {
                    priorities: priorities(),
                },
                ..ReplayConfig::default()
            },
        },
    ];
    let reports = ServeHarness::sweep(|| Ok(deployment.serve_backend()), &scenarios).unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].admission, "drop-frames");
    assert_eq!(reports[1].admission, "shed-lowest-value");
    assert!(reports[0].dropped > 0);
    assert_eq!(reports[1].dropped, 0);
    // Degrading gracefully costs coverage, not frames: the shed replay
    // answers every frame, the dropping one misses some everywhere.
    assert_eq!(reports[1].verdicts.len(), reports[1].offered);
    assert!(reports[0].boards.iter().all(|b| b.dropped > 0));
}
