//! Multi-model deployment integration: trained DoS + Fuzzy detectors on
//! one board, and the ISSUE-3 acceptance scenario — an 8-detector plan
//! (DoS, Fuzzy, gear-spoof, RPM-spoof + duplicates) that fits the
//! ZCU104 under the folding-budget allocator and sustains saturated
//! 1 Mb/s replay with zero FIFO drops under the DMA-batch policy.

use canids_core::deploy::{DeploymentPlan, PlanConfig};
use canids_core::prelude::*;

fn quick_detector(config: PipelineConfig) -> (AttackKind, canids_qnn::IntegerMlp) {
    let pipeline = IdsPipeline::new(config.clone());
    let capture = pipeline.generate_capture();
    let detector = pipeline.train(&capture).expect("training");
    (config.attack.kind, detector.int_mlp)
}

/// Untrained paper-topology model (weights seeded): deployment geometry,
/// timing and fit do not depend on weight values.
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

/// The acceptance fleet: DoS, Fuzzy, gear-spoof, RPM-spoof plus one
/// duplicate of each (the allocator may fold duplicates deeper).
fn eight_bundles() -> Vec<DetectorBundle> {
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::GearSpoof,
        AttackKind::RpmSpoof,
    ];
    (0..8)
        .map(|i| DetectorBundle::new(kinds[i % 4], seeded_model(100 + i as u64)))
        .collect()
}

#[test]
fn dual_model_ecu_detects_both_attacks() {
    let (dos_kind, dos_model) = quick_detector(PipelineConfig::dos().quick());
    let (fuzzy_kind, fuzzy_model) = quick_detector(PipelineConfig::fuzzy().quick());

    let mut deployment = deploy_multi_ids(
        &[
            DetectorBundle {
                kind: dos_kind,
                model: dos_model,
            },
            DetectorBundle {
                kind: fuzzy_kind,
                model: fuzzy_model,
            },
        ],
        CompileConfig::default(),
    )
    .expect("deployment");

    // Both IPs fit with plenty of headroom (paper: <4% each).
    assert!(deployment.utilization < 0.08, "{}", deployment.utilization);
    assert!(deployment.headroom >= 4);

    // Replay a capture with DoS injection; the DoS model must flag it.
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(600),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xABCD,
        ..TrafficConfig::default()
    })
    .build();
    let frames: Vec<(SimTime, CanFrame)> = capture.iter().map(|r| (r.timestamp, r.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let report = deployment
        .ecu
        .process_capture(&frames, &|f: &CanFrame| encoder.encode(f))
        .expect("replay");

    let truth_attacks = capture.iter().filter(|r| r.label.is_attack()).count();
    let flagged = report.detections.iter().filter(|d| d.flagged).count();
    let ratio = flagged as f64 / truth_attacks.max(1) as f64;
    assert!(
        (0.9..1.3).contains(&ratio),
        "flagged {flagged} vs {truth_attacks} attack frames"
    );
}

#[test]
fn dual_model_latency_overhead_is_small() {
    let (kind_a, model_a) = quick_detector(PipelineConfig::dos().quick());
    let frames: Vec<(SimTime, CanFrame)> = (0..30u8)
        .map(|i| {
            (
                SimTime::from_micros(250 * u64::from(i)),
                CanFrame::new(CanId::standard(0x200).unwrap(), &[i; 8]).unwrap(),
            )
        })
        .collect();
    let encoder = IdBitsPayloadBits;
    let featurize = |f: &CanFrame| encoder.encode(f);

    let mut single = deploy_multi_ids(
        &[DetectorBundle {
            kind: kind_a,
            model: model_a.clone(),
        }],
        CompileConfig::default(),
    )
    .unwrap();
    let single_report = single.ecu.process_capture(&frames, &featurize).unwrap();

    let (kind_b, model_b) = quick_detector(PipelineConfig::fuzzy().quick());
    let mut dual = deploy_multi_ids(
        &[
            DetectorBundle {
                kind: kind_a,
                model: model_a,
            },
            DetectorBundle {
                kind: kind_b,
                model: model_b,
            },
        ],
        CompileConfig::default(),
    )
    .unwrap();
    let dual_report = dual.ecu.process_capture(&frames, &featurize).unwrap();

    let ratio = dual_report.mean_latency.as_secs_f64() / single_report.mean_latency.as_secs_f64();
    assert!(
        (1.0..1.25).contains(&ratio),
        "dual/single latency ratio {ratio} (paper: slightly higher cost)"
    );
    assert!(dual_report.mean_power_w > single_report.mean_power_w);
}

#[test]
fn eight_detector_plan_fits_zcu104_and_sustains_line_rate_under_dma_batch() {
    let bundles = eight_bundles();

    // 1. The allocator fits all eight on the ZCU104.
    let plan = DeploymentPlan::build(&bundles, &PlanConfig::default()).expect("plan fits");
    assert_eq!(plan.models.len(), 8);
    assert!(
        plan.device.first_overflow(plan.total_resources).is_none(),
        "allocator returned an overflowing plan"
    );
    assert!(plan.utilization < 0.5, "utilization {}", plan.utilization);
    // Every budget still meets classic-CAN line rate.
    assert!(plan.min_peak_fps() >= 8_300.0);

    // 2. The plan compiles end to end.
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default(), EcuConfig::default())
        .expect("compile + attach");
    assert_eq!(deployment.ips.len(), 8);
    assert_eq!(deployment.kinds.len(), 8);

    // 3. Saturated 1 Mb/s replay, zero drops under DmaBatch.
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(500),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0x8DE7,
        ..TrafficConfig::default()
    })
    .build();
    let report = ServeHarness::new(EcuBackend::new(&deployment))
        .replay(
            &capture,
            &ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 }),
        )
        .unwrap();
    assert_eq!(report.per_model.len(), 8);
    assert_eq!(report.offered, capture.len());
    assert!(
        report.offered_fps > 7_000.0,
        "saturated 1 Mb/s pacing offers ~8.3k fps: {}",
        report.offered_fps
    );
    assert_eq!(report.dropped, 0, "DMA batch must absorb full line rate");
    assert_eq!(report.serviced, report.offered);
    assert!(report.latency.p50 <= report.latency.p99);

    // 4. The per-message policies cannot hold 8 detectors at line rate —
    // the quantitative reason the batch integration exists.
    let seq = ServeHarness::new(EcuBackend::new(&deployment))
        .replay(
            &capture,
            &ReplayConfig::default().with_policy(SchedPolicy::Sequential),
        )
        .unwrap();
    assert!(
        seq.dropped > 0,
        "eight sequential driver calls per frame cannot keep 1 Mb/s"
    );
}

#[test]
fn scheduling_policies_agree_on_classification() {
    // Streaming-vs-batch equivalence holds for every policy, and the
    // policies agree with each other frame for frame (timing/energy
    // change, classification never does).
    let bundles = vec![
        DetectorBundle::new(AttackKind::Dos, seeded_model(7)),
        DetectorBundle::new(AttackKind::Fuzzy, seeded_model(8)),
    ];
    let plan = DeploymentPlan::build(&bundles, &PlanConfig::default()).unwrap();
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default(), EcuConfig::default())
        .unwrap();

    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(300),
        attack: Some(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
        seed: 0xF00,
        ..TrafficConfig::default()
    })
    .build();
    let frames: Vec<(SimTime, CanFrame)> = capture.iter().map(|r| (r.timestamp, r.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let featurize = |f: &CanFrame| encoder.encode(f);

    let policies = [
        SchedPolicy::Sequential,
        SchedPolicy::RoundRobin,
        SchedPolicy::DmaBatch { batch: 16 },
        SchedPolicy::InterruptPerFrame,
    ];
    let mut baseline: Option<Vec<(SimTime, bool)>> = None;
    for policy in policies {
        // Batch serving mode.
        let mut batch_ecu = deployment
            .fresh_ecu(EcuConfig {
                policy,
                ..EcuConfig::default()
            })
            .unwrap();
        let batch_report = batch_ecu.process_capture(&frames, &featurize).unwrap();

        // Streaming serving mode on an identically built ECU.
        let mut stream_ecu = deployment
            .fresh_ecu(EcuConfig {
                policy,
                ..EcuConfig::default()
            })
            .unwrap();
        let mut session = stream_ecu.stream();
        for &(t, f) in &frames {
            session.push(t, f, &featurize).unwrap();
        }
        let streamed = session.try_finish().unwrap();
        assert_eq!(
            batch_report,
            streamed,
            "streaming-vs-batch equivalence broke under {}",
            policy.label()
        );
        assert_eq!(batch_report.dropped, 0, "{}", policy.label());

        let verdicts: Vec<(SimTime, bool)> = batch_report
            .detections
            .iter()
            .map(|d| (d.arrival, d.flagged))
            .collect();
        match &baseline {
            None => baseline = Some(verdicts),
            Some(b) => assert_eq!(
                &verdicts,
                b,
                "{} diverged from the baseline classification",
                policy.label()
            ),
        }
    }
}
