//! Multi-model deployment integration: DoS + Fuzzy detectors on one
//! board, replaying mixed traffic.

use canids_core::prelude::*;

fn quick_detector(config: PipelineConfig) -> (AttackKind, canids_qnn::IntegerMlp) {
    let pipeline = IdsPipeline::new(config.clone());
    let capture = pipeline.generate_capture();
    let detector = pipeline.train(&capture).expect("training");
    (config.attack.kind, detector.int_mlp)
}

#[test]
fn dual_model_ecu_detects_both_attacks() {
    let (dos_kind, dos_model) = quick_detector(PipelineConfig::dos().quick());
    let (fuzzy_kind, fuzzy_model) = quick_detector(PipelineConfig::fuzzy().quick());

    let mut deployment = deploy_multi_ids(
        &[
            DetectorBundle {
                kind: dos_kind,
                model: dos_model,
            },
            DetectorBundle {
                kind: fuzzy_kind,
                model: fuzzy_model,
            },
        ],
        CompileConfig::default(),
    )
    .expect("deployment");

    // Both IPs fit with plenty of headroom (paper: <4% each).
    assert!(deployment.utilization < 0.08, "{}", deployment.utilization);
    assert!(deployment.headroom >= 4);

    // Replay a capture with DoS injection; the DoS model must flag it.
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(600),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xABCD,
        ..TrafficConfig::default()
    })
    .build();
    let frames: Vec<(SimTime, CanFrame)> = capture.iter().map(|r| (r.timestamp, r.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let report = deployment
        .ecu
        .process_capture(&frames, &|f: &CanFrame| encoder.encode(f))
        .expect("replay");

    let truth_attacks = capture.iter().filter(|r| r.label.is_attack()).count();
    let flagged = report.detections.iter().filter(|d| d.flagged).count();
    let ratio = flagged as f64 / truth_attacks.max(1) as f64;
    assert!(
        (0.9..1.3).contains(&ratio),
        "flagged {flagged} vs {truth_attacks} attack frames"
    );
}

#[test]
fn dual_model_latency_overhead_is_small() {
    let (kind_a, model_a) = quick_detector(PipelineConfig::dos().quick());
    let frames: Vec<(SimTime, CanFrame)> = (0..30)
        .map(|i| {
            (
                SimTime::from_micros(250 * i as u64),
                CanFrame::new(CanId::standard(0x200).unwrap(), &[i as u8; 8]).unwrap(),
            )
        })
        .collect();
    let encoder = IdBitsPayloadBits;
    let featurize = |f: &CanFrame| encoder.encode(f);

    let mut single = deploy_multi_ids(
        &[DetectorBundle {
            kind: kind_a,
            model: model_a.clone(),
        }],
        CompileConfig::default(),
    )
    .unwrap();
    let single_report = single.ecu.process_capture(&frames, &featurize).unwrap();

    let (kind_b, model_b) = quick_detector(PipelineConfig::fuzzy().quick());
    let mut dual = deploy_multi_ids(
        &[
            DetectorBundle {
                kind: kind_a,
                model: model_a,
            },
            DetectorBundle {
                kind: kind_b,
                model: model_b,
            },
        ],
        CompileConfig::default(),
    )
    .unwrap();
    let dual_report = dual.ecu.process_capture(&frames, &featurize).unwrap();

    let ratio = dual_report.mean_latency.as_secs_f64() / single_report.mean_latency.as_secs_f64();
    assert!(
        (1.0..1.25).contains(&ratio),
        "dual/single latency ratio {ratio} (paper: slightly higher cost)"
    );
    assert!(dual_report.mean_power_w > single_report.mean_power_w);
}
