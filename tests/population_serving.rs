//! Population serving acceptance (ISSUE 10).
//!
//! 1. A single-tenant population run is **bit-identical** to a plain
//!    `ServeHarness::replay` of the same capture under the same
//!    configuration — the population layer adds multiplexing, never
//!    arithmetic.
//! 2. Frame conservation (proptest): every tenant's offered frames are
//!    exactly-once served, FIFO-dropped, or covered by a typed shed
//!    window — `offered == serviced + dropped + shed_frames` for every
//!    tenant, with no silent starvation under `AdmitAll`.
//! 3. `PopulationReport::fingerprint()` is invariant across worker
//!    counts 1 / 2 / Auto, with cross-tenant shedding and telemetry
//!    engaged — the same schedule-independence guarantee the sharded
//!    replay pins for shards.

use canids_core::population::{Population, PopulationConfig, TenantAdmission, TenantStream};
use canids_core::prelude::*;
use proptest::prelude::*;

/// Untrained paper-topology model (weights seeded).
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

fn capture(attack: bool, seed: u64, ms: u64) -> Dataset {
    DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(ms),
        attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed,
        ..TrafficConfig::default()
    })
    .build()
}

/// Field-for-field bitwise equality between two `ServeReport`s (f64s
/// compared via `to_bits`, so "close" is not "equal").
fn assert_serve_reports_identical(a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.admission, b.admission);
    assert_eq!(a.bitrate_bps, b.bitrate_bps);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.offered_fps.to_bits(), b.offered_fps.to_bits());
    assert_eq!(a.serviced, b.serviced);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.flagged, b.flagged);
    assert_eq!(a.fully_covered, b.fully_covered);
    assert_eq!(a.cm, b.cm);
    assert_eq!(a.events, b.events);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.boards.len(), b.boards.len());
}

#[test]
fn single_tenant_population_is_bit_identical_to_plain_replay() {
    let bundles = vec![
        DetectorBundle::new(AttackKind::Dos, seeded_model(900)),
        DetectorBundle::new(AttackKind::Fuzzy, seeded_model(901)),
    ];
    let cap = capture(true, 0xB0B, 250);

    let mut pop = Population::new();
    pop.push(TenantStream::new("vehicle-0", cap.clone()));
    // The ECU deployment is compiled inside the factory so nothing
    // non-`Sync` crosses the worker threads (the `owning` idiom the
    // sharded replay uses).
    let factory = || {
        Ok(EcuBackend::owning(deploy_multi_ids(
            &bundles,
            CompileConfig::default(),
        )?))
    };
    let report = pop.serve(factory, &PopulationConfig::default()).unwrap();

    // The plain replay under exactly the tenant's effective
    // configuration: tenant bitrate (500 kb/s default), single shard.
    let plain = ServeHarness::new(EcuBackend::owning(
        deploy_multi_ids(&bundles, CompileConfig::default()).unwrap(),
    ))
    .replay(
        &cap,
        &ReplayConfig::default()
            .with_bitrate(Bitrate::HIGH_SPEED_500K)
            .with_shards(1),
    )
    .unwrap();

    assert_eq!(report.tenants.len(), 1);
    let t = &report.tenants[0];
    assert_serve_reports_identical(&t.serve, &plain);

    // The admission ledger sees what the replay saw: with one tenant and
    // unbounded admission nothing is shed, and the ledger's counters
    // reproduce the replay's.
    assert_eq!(t.offered, plain.offered);
    assert_eq!(t.serviced, plain.serviced);
    assert_eq!(t.dropped, plain.dropped);
    assert_eq!(t.shed_frames, 0);
    assert_eq!(t.windows, 1);
    assert!(t.conserved());
    assert_eq!(report.latency, plain.latency);
    assert!(report.events.is_empty());

    // And the population fingerprint itself is reproducible.
    let again = pop.serve(factory, &PopulationConfig::default()).unwrap();
    assert_eq!(report.fingerprint(), again.fingerprint());
}

#[test]
fn population_fingerprint_is_invariant_across_worker_counts() {
    // Six tenant streams of uneven length onto a two-slot pool: sheds
    // engage at arrival, readmits engage as short streams finish. Every
    // worker count must report the same bits — scheduling is
    // execution-only.
    let bundles = vec![
        DetectorBundle::new(AttackKind::Dos, seeded_model(910)),
        DetectorBundle::new(AttackKind::Fuzzy, seeded_model(911)),
    ];
    let factory = || {
        Ok(EcuBackend::owning(deploy_multi_ids(
            &bundles,
            CompileConfig::default(),
        )?))
    };

    let mut pop = Population::new();
    for (k, ms) in [60u64, 140, 80, 160, 100, 120].iter().enumerate() {
        pop.push(
            TenantStream::new(
                format!("vehicle-{k}"),
                capture(k % 2 == 0, 0xA110 + k as u64, *ms),
            )
            .with_priority((k % 3) as u32),
        );
    }

    let base = PopulationConfig::default()
        .with_replay(ReplayConfig::default().with_telemetry(TelemetryConfig::default()))
        .with_stagger(SimTime::from_micros(300))
        .with_admission(TenantAdmission::ShedLowestValueTenant {
            capacity: 2,
            window: 64,
        });

    let mut prints = Vec::new();
    for workers in [
        ShardWorkers::Fixed(1),
        ShardWorkers::Fixed(2),
        ShardWorkers::Auto,
    ] {
        let report = pop
            .serve(factory, &base.clone().with_workers(workers))
            .unwrap();
        // The overload is real: more streams than slots forces sheds,
        // and uneven stream lengths free slots for readmission.
        assert!(report.shed_count() >= 1, "no shed under {workers:?}");
        assert!(report.readmit_count() >= 1, "no readmit under {workers:?}");
        assert!(report.shed_frames > 0);
        assert!(report.tenants.iter().all(|t| t.conserved()));
        // Telemetry rode along: tenant residency windows and admission
        // decisions render as tenant lanes in the Chrome trace.
        let telemetry = report.telemetry.as_ref().expect("telemetry enabled");
        assert!(telemetry
            .spans
            .iter()
            .any(|s| s.stage == Stage::TenantWindow));
        assert!(telemetry
            .spans
            .iter()
            .any(|s| s.stage == Stage::TenantAdmission));
        assert!(telemetry
            .to_chrome_trace()
            .contains("\"name\":\"tenant 0\""));
        prints.push((workers, report.fingerprint()));
    }
    for pair in prints.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "fingerprint differs between {:?} and {:?}",
            pair[0].0, pair[1].0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Frame conservation: for every generated population shape, every
    // tenant's offered frames are exactly-once served, dropped by the
    // backend FIFO, or covered by a typed shed window — and the event
    // log is consistent with the ledger.
    #[test]
    fn every_offered_frame_is_served_dropped_or_shed(
        n_tenants in 1usize..5,
        capacity in 1usize..4,
        window in 1usize..64,
        stagger_us in 0u64..1500,
        seed in 0u64..1000,
    ) {
        let model = seeded_model(0xC0 + seed);
        let mut pop = Population::new();
        for k in 0..n_tenants {
            pop.push(
                TenantStream::new(
                    format!("t{k}"),
                    capture(k % 2 == 0, seed * 31 + k as u64, 30 + 10 * k as u64),
                )
                .with_priority((seed as u32 + k as u32) % 4),
            );
        }
        let config = PopulationConfig::default()
            .with_stagger(SimTime::from_micros(stagger_us))
            .with_admission(TenantAdmission::ShedLowestValueTenant { capacity, window });
        let report = pop
            .serve(|| Ok(SoftwareBackend::single(model.clone())), &config)
            .unwrap();

        let mut serviced = 0usize;
        let mut dropped = 0u64;
        let mut shed = 0usize;
        for t in &report.tenants {
            prop_assert_eq!(t.offered, pop.tenants()[t.tenant].capture.len());
            prop_assert!(
                t.conserved(),
                "tenant {} ledger: {} != {} + {} + {}",
                t.tenant, t.offered, t.serviced, t.dropped, t.shed_frames
            );
            // A tenant only loses frames to shedding through a typed
            // event, and only serves frames inside a residency window.
            if t.shed_frames > 0 {
                prop_assert!(report.events.iter().any(|e| e.tenant == t.tenant));
            }
            if t.serviced > 0 || t.dropped > 0 {
                prop_assert!(t.windows >= 1);
            }
            serviced += t.serviced;
            dropped += t.dropped;
            shed += t.shed_frames;
        }
        prop_assert_eq!(report.serviced, serviced);
        prop_assert_eq!(report.dropped, dropped);
        prop_assert_eq!(report.shed_frames, shed);
        prop_assert_eq!(report.offered, serviced + dropped as usize + shed);

        // With capacity for everyone, nothing is ever shed: the bounded
        // policy degenerates to AdmitAll and the whole population serves.
        if capacity >= n_tenants {
            prop_assert_eq!(report.shed_frames, 0);
            prop_assert_eq!(report.shed_count(), 0);
        }
        // AdmitAll never starves anyone, whatever the shape.
        let open = pop
            .serve(|| Ok(SoftwareBackend::single(model.clone())), &PopulationConfig::default())
            .unwrap();
        prop_assert_eq!(open.shed_frames, 0);
        prop_assert!(open.events.is_empty());
        prop_assert!(open.tenants.iter().all(|t| t.conserved()));
    }
}
