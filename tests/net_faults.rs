//! Fault-injection regressions for the event-driven network core
//! (ISSUE 6): a babbling idiot starves unrelated traffic through a
//! shared drop-tail buffer but not under PFC backpressure, a timed
//! gateway outage drops exactly the dark-window frames (and lands in
//! the serve report's admission event log), and a bus-off window loses
//! exactly the frames released inside it.

use canids_core::net::{
    DropReason, Fault, GatewayId, NetConfig, NetOutcome, NetSim, QueueDiscipline, SegmentId,
    SinkId, Topology,
};
use canids_core::prelude::*;
use canids_core::serve::{FleetAction, FleetEvent, FleetTransport};

fn frame(id: u16) -> CanFrame {
    let cid = CanId::standard(id).unwrap();
    CanFrame::new(cid, &[cid.low_byte(); 8]).unwrap()
}

/// One gateway, two egress ports: a "near" leaf the babbler floods and
/// a "far" leaf carrying unrelated traffic.
fn two_port_sim(discipline: QueueDiscipline) -> (NetSim, SegmentId, SinkId, SinkId) {
    let mut b = Topology::builder();
    let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
    let gw = b.gateway(backbone, SimTime::from_micros(20), discipline);
    let near = b.segment(Bitrate::HIGH_SPEED_1M);
    let far = b.segment(Bitrate::HIGH_SPEED_1M);
    b.port(gw, near);
    b.port(gw, far);
    let near_sink = b.sink(near);
    let far_sink = b.sink(far);
    let mut sim = NetSim::new(b.build());
    sim.apply(Fault::BabblingIdiot {
        segment: backbone,
        dest: near_sink,
        start: SimTime::ZERO,
        stop: SimTime::from_millis(50),
        gap: SimTime::from_micros(60),
    });
    (sim, backbone, near_sink, far_sink)
}

#[test]
fn babbling_idiot_starves_the_far_port_under_drop_tail_but_not_under_pfc() {
    // The babbler emits every 60 µs; the near leaf drains one 8-byte
    // frame per ~118 µs, so the gateway buffer only ever grows while
    // the flood runs. What happens to *far*-port traffic is pure
    // discipline policy.
    let victims: Vec<SimTime> = (0..30)
        .map(|i| SimTime::from_millis(10) + SimTime::from_micros(1_000 * i))
        .collect();

    // Drop-tail: one shared pool — the flood fills it and far-port
    // frames are collateral damage.
    let (mut sim, backbone, _near, far) = two_port_sim(QueueDiscipline::DropTail { capacity: 8 });
    let tokens: Vec<_> = victims
        .iter()
        .map(|&t| sim.inject(t, backbone, far, frame(0x300)))
        .collect();
    sim.run();
    let far_dropped = tokens
        .iter()
        .filter(|&&t| matches!(sim.outcome(t), Some(NetOutcome::Dropped(_))))
        .count();
    assert!(
        far_dropped > 0,
        "a full shared drop-tail buffer must starve the far port"
    );
    let loads = sim.topology().gateway_loads();
    assert!(loads[0].dropped_full > 0);
    assert_eq!(loads[0].paused, 0);
    assert!(sim
        .topology()
        .drop_log()
        .iter()
        .all(|r| r.reason == DropReason::BufferFull));

    // PFC: the flooded near port pauses past its quota, the far port
    // keeps its own reserved buffer — nothing is ever dropped.
    let (mut sim, backbone, _near, far) = two_port_sim(QueueDiscipline::Pfc { quota: 8 });
    let tokens: Vec<_> = victims
        .iter()
        .map(|&t| sim.inject(t, backbone, far, frame(0x300)))
        .collect();
    sim.run();
    for token in tokens {
        assert!(
            matches!(sim.outcome(token), Some(NetOutcome::Delivered(_))),
            "PFC must not drop far-port traffic"
        );
    }
    let loads = sim.topology().gateway_loads();
    assert_eq!(loads[0].dropped(), 0, "PFC pauses, never drops");
    assert!(loads[0].paused > 0, "the flood must exceed the near quota");
    assert!(sim.topology().drop_log().is_empty());
}

#[test]
fn bus_off_window_loses_exactly_the_frames_released_inside_it() {
    let mut b = Topology::builder();
    let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
    let gw = b.gateway(
        backbone,
        SimTime::from_micros(20),
        QueueDiscipline::default(),
    );
    let leaf = b.segment(Bitrate::HIGH_SPEED_1M);
    b.port(gw, leaf);
    let board = b.sink(leaf);
    let mut sim = NetSim::new(b.build());
    let (start, end) = (SimTime::from_millis(5), SimTime::from_millis(8));
    sim.apply(Fault::BusOff {
        segment: backbone,
        start,
        end,
    });

    // Sparse arrivals (1 ms apart) so each frame's fate is decided
    // solely by its own arrival time against the window.
    let arrivals: Vec<SimTime> = (0..15).map(SimTime::from_millis).collect();
    let tokens: Vec<_> = arrivals
        .iter()
        .map(|&t| sim.inject(t, backbone, board, frame(0x111)))
        .collect();
    sim.run();

    for (&t, &token) in arrivals.iter().zip(&tokens) {
        let outcome = sim.outcome(token).expect("resolved");
        if t >= start && t < end {
            assert_eq!(
                outcome,
                NetOutcome::Dropped(DropReason::BusOff),
                "frame at {t} is inside the bus-off window"
            );
        } else {
            assert!(
                matches!(outcome, NetOutcome::Delivered(_)),
                "frame at {t} is outside the bus-off window"
            );
        }
    }
}

/// Untrained paper-topology model (weights seeded).
fn seeded_model(seed: u64) -> canids_qnn::IntegerMlp {
    QuantMlp::new(MlpConfig {
        seed,
        ..MlpConfig::paper_4bit()
    })
    .unwrap()
    .export()
    .unwrap()
}

#[test]
fn gateway_outage_drops_exactly_the_dark_window_frames_and_is_logged() {
    // Two detectors on two boards; board 0's gateway goes dark for a
    // 70 ms window mid-replay. With as-recorded pacing the transport
    // sees the capture's own timestamps, so the loss must be *exactly*
    // the frames arriving inside [start, end) — no more, no fewer —
    // and the dark window must surface in the admission event log.
    let bundles = vec![
        DetectorBundle::new(AttackKind::Dos, seeded_model(700)),
        DetectorBundle::new(AttackKind::Fuzzy, seeded_model(701)),
    ];
    let config = FleetConfig::new(vec![BoardSpec::zcu104("zcu-a"), BoardSpec::zcu104("zcu-b")]);
    let plan = FleetPlan::build(&bundles, &config).expect("fleet plan fits");
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default())
        .expect("fleet compiles");

    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(300),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xDA7E,
        ..TrafficConfig::default()
    })
    .build();
    let (start, end) = (SimTime::from_millis(100), SimTime::from_millis(170));
    let dark_window_frames = capture
        .iter()
        .filter(|r| r.timestamp >= start && r.timestamp < end)
        .count() as u64;
    assert!(dark_window_frames > 0, "the window must cover real frames");

    let base = ReplayConfig::default()
        .with_pacing(Pacing::AsRecorded)
        .with_policy(SchedPolicy::DmaBatch { batch: 32 });
    let baseline = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &base)
        .unwrap();
    assert_eq!(baseline.dropped, 0, "no-fault baseline keeps up");

    let outage = base.with_transport(FleetTransport::EventDriven(NetConfig {
        discipline: QueueDiscipline::default(),
        faults: vec![Fault::GatewayOutage {
            gateway: GatewayId(0),
            start,
            end,
        }],
    }));
    let report = ServeHarness::new(deployment.serve_backend())
        .replay(&capture, &outage)
        .unwrap();

    // Exactly the dark-window frames are lost, all at board 0, all
    // typed as outage drops.
    assert_eq!(report.dropped, dark_window_frames);
    assert_eq!(report.boards[0].dropped, dark_window_frames);
    assert_eq!(report.boards[1].dropped, 0);
    assert_eq!(report.gateways[0].dropped_outage, dark_window_frames);
    assert_eq!(report.gateways[0].dropped_full, 0);
    assert_eq!(report.gateways[1].dropped(), 0);
    // Board 1 still covers every frame.
    assert_eq!(report.serviced, report.offered);
    assert_eq!(
        report.fully_covered,
        report.offered - dark_window_frames as usize
    );
    // The dark window is first-class in the admission event log.
    assert!(report.events.contains(&FleetEvent {
        time: start,
        board: 0,
        model: 0,
        action: FleetAction::GatewayDark { until: end },
    }));
}
