//! Cross-crate integration: the full paper pipeline for both attacks.

use canids_core::prelude::*;

#[test]
fn dos_pipeline_hits_paper_band() {
    let report = IdsPipeline::new(PipelineConfig::dos().quick())
        .run()
        .expect("pipeline");
    let (p, r, f1, fnr) = report.detector.test_cm.table_row();
    // Paper: 99.99 / 99.99 / 99.99 / 0.01. Allow the synthetic-capture
    // band: everything above 99.5 with sub-0.5% FNR.
    assert!(p > 99.5, "precision {p}");
    assert!(r > 99.5, "recall {r}");
    assert!(f1 > 99.5, "f1 {f1}");
    assert!(fnr < 0.5, "fnr {fnr}");
}

#[test]
fn fuzzy_pipeline_hits_paper_band() {
    let report = IdsPipeline::new(PipelineConfig::fuzzy().quick())
        .run()
        .expect("pipeline");
    let (p, r, f1, fnr) = report.detector.test_cm.table_row();
    // Paper: 99.68 / 99.93 / 99.80 / 0.07.
    assert!(p > 99.0, "precision {p}");
    assert!(r > 99.0, "recall {r}");
    assert!(f1 > 99.0, "f1 {f1}");
    assert!(fnr < 1.0, "fnr {fnr}");
}

#[test]
fn headline_numbers_reproduce() {
    let report = IdsPipeline::new(PipelineConfig::dos().quick())
        .run()
        .expect("pipeline");
    let paper = paper_headlines();

    // Per-message latency: paper 0.12 ms.
    let ms = report.ecu.mean_latency.as_millis_f64();
    assert!((0.09..0.14).contains(&ms), "latency {ms} ms");

    // Board power: paper 2.09 W (replay duty cycle may sit below the
    // saturated operating point).
    assert!(
        (paper.power_w - report.ecu.mean_power_w).abs() < 0.35,
        "power {} W",
        report.ecu.mean_power_w
    );

    // Energy per message: paper 0.25 mJ.
    let mj = report.ecu.energy_per_message_j * 1e3;
    assert!((0.15..0.35).contains(&mj), "energy {mj} mJ");

    // Resources: paper < 4 % of the ZCU104.
    let util = report.ip.utilization(Device::ZCU104).max_fraction();
    assert!(util < paper.resource_fraction, "utilization {util}");
}

#[test]
fn compute_latency_is_tiny_fraction_of_driver_path() {
    let report = IdsPipeline::new(PipelineConfig::dos().quick())
        .run()
        .expect("pipeline");
    // The accelerator computes in microseconds; the 0.12 ms path is
    // dominated by the software stack, as the paper's architecture
    // implies.
    let compute = report.ip.latency_secs();
    let total = report.ecu.mean_latency.as_secs_f64();
    assert!(compute < total / 20.0, "compute {compute} vs total {total}");
}

#[test]
fn throughput_exceeds_line_rate_requirement() {
    // Paper: >8300 messages/s at highest payload capacity on high-speed
    // CAN. The ECU service rate must cover that arrival rate.
    let report = IdsPipeline::new(PipelineConfig::dos().quick())
        .run()
        .expect("pipeline");
    let service_rate = 1.0 / report.ecu.mean_latency.as_secs_f64();
    assert!(service_rate > 8_300.0, "service rate {service_rate}/s");
}
