//! PE/SIMD folding selection.
//!
//! FINN time-multiplexes each layer's matrix onto `PE` processing
//! elements with `SIMD` input lanes; one output batch of `PE` neurons
//! takes `MW / SIMD` cycles, and the full layer takes
//! `fold = (MH / PE) · (MW / SIMD)` cycles per frame, which is also the
//! layer's initiation interval. Folding trades LUTs for cycles; the
//! auto-folder picks the cheapest configuration meeting a throughput
//! target (the paper needs line-rate: ≳8.3 kframe/s).

use serde::{Deserialize, Serialize};

use crate::error::DataflowError;
use crate::graph::DataflowGraph;

/// Parallelism of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerFolding {
    /// Processing elements (must divide the output dimension).
    pub pe: usize,
    /// Input lanes per PE (must divide the input dimension).
    pub simd: usize,
}

impl LayerFolding {
    /// Fully sequential: one MAC per cycle.
    pub const SEQUENTIAL: LayerFolding = LayerFolding { pe: 1, simd: 1 };

    /// Cycles per frame for a `mh × mw` layer at this folding, clamped to
    /// at least one cycle.
    ///
    /// The clamp lives *here* — the single source every consumer (the
    /// cycle-accurate simulator, FIFO sizing, the analytic latency and
    /// initiation-interval identities) derives folds from — so a
    /// degenerate zero-cycle stage cannot make the simulator and the
    /// analytic accessors diverge.
    pub fn fold_cycles(&self, mh: usize, mw: usize) -> u64 {
        (((mh / self.pe.max(1)) * (mw / self.simd.max(1))) as u64).max(1)
    }
}

/// Folding for the whole pipeline (one entry per stage, label-select
/// included as the last entry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldingConfig {
    /// Per-stage parallelism.
    pub layers: Vec<LayerFolding>,
}

impl FoldingConfig {
    /// Fully sequential folding for an `n`-stage pipeline.
    pub fn sequential(n: usize) -> Self {
        FoldingConfig {
            layers: vec![LayerFolding::SEQUENTIAL; n],
        }
    }

    /// Validates divisibility against a graph.
    ///
    /// # Errors
    ///
    /// [`DataflowError::FoldingArity`], [`DataflowError::PeNotDivisor`] or
    /// [`DataflowError::SimdNotDivisor`].
    pub fn validate(&self, graph: &DataflowGraph) -> Result<(), DataflowError> {
        let dims = graph.stage_dims();
        if self.layers.len() != dims.len() {
            return Err(DataflowError::FoldingArity {
                expected: dims.len(),
                actual: self.layers.len(),
            });
        }
        for (i, (f, &(mw, mh))) in self.layers.iter().zip(&dims).enumerate() {
            if f.pe == 0 || mh % f.pe != 0 {
                return Err(DataflowError::PeNotDivisor {
                    layer: i,
                    pe: f.pe,
                    mh,
                });
            }
            if f.simd == 0 || mw % f.simd != 0 {
                return Err(DataflowError::SimdNotDivisor {
                    layer: i,
                    simd: f.simd,
                    mw,
                });
            }
        }
        Ok(())
    }

    /// Per-stage fold (cycles per frame), each `≥ 1` by construction
    /// (see [`LayerFolding::fold_cycles`]).
    pub fn fold_cycles(&self, graph: &DataflowGraph) -> Vec<u64> {
        graph
            .stage_dims()
            .iter()
            .zip(&self.layers)
            .map(|(&(mw, mh), f)| f.fold_cycles(mh, mw))
            .collect()
    }

    /// Pipeline initiation interval: the slowest stage's fold.
    pub fn initiation_interval(&self, graph: &DataflowGraph) -> u64 {
        self.fold_cycles(graph).into_iter().max().unwrap_or(1)
    }

    /// Total multiplier lanes (`Σ pe·simd`), the dominant LUT driver.
    pub fn total_lanes(&self) -> usize {
        self.layers.iter().map(|f| f.pe * f.simd).sum()
    }
}

/// What the auto-folder optimises for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoldingGoal {
    /// Cheapest folding whose frame rate at `clock_hz` meets the target.
    TargetFps {
        /// Required frames per second.
        fps: f64,
        /// Accelerator clock in Hz.
        clock_hz: u64,
    },
    /// Fully sequential (minimum area).
    MinResource,
    /// Maximum parallelism (minimum latency).
    MaxParallel,
}

fn divisors(n: usize) -> Vec<usize> {
    let mut d: Vec<usize> = (1..=n).filter(|&k| n.is_multiple_of(k)).collect();
    d.sort_unstable();
    d
}

/// Chooses a folding for `graph` meeting `goal`.
///
/// The target-throughput search balances the pipeline: every stage gets
/// the smallest `pe·simd` product whose fold meets the per-stage cycle
/// budget implied by the target frame rate.
///
/// # Errors
///
/// [`DataflowError::TargetUnreachable`] when even full parallelism cannot
/// reach the requested rate.
///
/// # Example
///
/// ```
/// use canids_dataflow::folding::{auto_fold, FoldingGoal};
/// use canids_dataflow::graph::DataflowGraph;
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let graph = DataflowGraph::from_integer_mlp(&mlp.export()?)?;
/// let folding = auto_fold(&graph, FoldingGoal::TargetFps {
///     fps: 10_000.0,
///     clock_hz: 200_000_000,
/// })?;
/// assert!(folding.initiation_interval(&graph) <= 20_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn auto_fold(graph: &DataflowGraph, goal: FoldingGoal) -> Result<FoldingConfig, DataflowError> {
    let dims = graph.stage_dims();
    if dims.is_empty() {
        return Err(DataflowError::EmptyNetwork);
    }
    let config = match goal {
        FoldingGoal::MinResource => FoldingConfig::sequential(dims.len()),
        FoldingGoal::MaxParallel => FoldingConfig {
            layers: dims
                .iter()
                .map(|&(mw, mh)| LayerFolding { pe: mh, simd: mw })
                .collect(),
        },
        FoldingGoal::TargetFps { fps, clock_hz } => {
            let budget_cycles = (clock_hz as f64 / fps.max(1e-9)).floor() as u64;
            if budget_cycles == 0 {
                // Even a fold of one cycle per frame cannot reach the
                // target on this clock.
                return Err(DataflowError::TargetUnreachable {
                    target_fps: fps,
                    best_fps: clock_hz as f64,
                });
            }
            let mut layers = Vec::with_capacity(dims.len());
            for &(mw, mh) in &dims {
                // Smallest pe*simd with (mh/pe)*(mw/simd) <= budget.
                let mut best: Option<LayerFolding> = None;
                for &pe in &divisors(mh) {
                    for &simd in &divisors(mw) {
                        let f = LayerFolding { pe, simd };
                        if f.fold_cycles(mh, mw) <= budget_cycles {
                            let better = match best {
                                None => true,
                                Some(b) => pe * simd < b.pe * b.simd,
                            };
                            if better {
                                best = Some(f);
                            }
                        }
                    }
                }
                match best {
                    Some(f) => layers.push(f),
                    None => {
                        let best_fps = clock_hz as f64; // fold == 1 at full parallelism
                        return Err(DataflowError::TargetUnreachable {
                            target_fps: fps,
                            best_fps,
                        });
                    }
                }
            }
            FoldingConfig { layers }
        }
    };
    config.validate(graph)?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataflowGraph, LabelSelectNode, MvtuNode};

    fn graph(dims: &[(usize, usize)]) -> DataflowGraph {
        // dims: (in, out) per MVTU stage; a final 2-class select is added.
        let mvtus = dims
            .iter()
            .map(|&(i, o)| MvtuNode {
                in_dim: i,
                out_dim: o,
                weights: vec![1; i * o],
                thresholds: vec![0; o * 3],
                levels: 3,
                in_levels: 1,
                weight_bits: 4,
            })
            .collect::<Vec<_>>();
        let last = dims.last().map(|&(_, o)| o).unwrap_or(4);
        DataflowGraph {
            mvtus,
            label_select: LabelSelectNode {
                in_dim: last,
                classes: 2,
                weights: vec![1; 2 * last],
                bias_q: vec![0, 0],
                in_levels: 3,
                weight_bits: 4,
            },
        }
    }

    #[test]
    fn fold_cycles_formula() {
        let f = LayerFolding { pe: 8, simd: 15 };
        assert_eq!(f.fold_cycles(64, 75), (64 / 8) as u64 * (75 / 15) as u64);
        assert_eq!(LayerFolding::SEQUENTIAL.fold_cycles(64, 75), 64 * 75);
    }

    #[test]
    fn validate_catches_bad_divisors() {
        let g = graph(&[(75, 64)]);
        let bad_pe = FoldingConfig {
            layers: vec![LayerFolding { pe: 7, simd: 1 }, LayerFolding::SEQUENTIAL],
        };
        assert!(matches!(
            bad_pe.validate(&g),
            Err(DataflowError::PeNotDivisor { .. })
        ));
        let bad_simd = FoldingConfig {
            layers: vec![LayerFolding { pe: 1, simd: 7 }, LayerFolding::SEQUENTIAL],
        };
        assert!(matches!(
            bad_simd.validate(&g),
            Err(DataflowError::SimdNotDivisor { .. })
        ));
        let wrong_len = FoldingConfig::sequential(1);
        assert!(matches!(
            wrong_len.validate(&g),
            Err(DataflowError::FoldingArity { .. })
        ));
    }

    #[test]
    fn auto_fold_min_resource_is_sequential() {
        let g = graph(&[(75, 64), (64, 32)]);
        let f = auto_fold(&g, FoldingGoal::MinResource).unwrap();
        assert!(f.layers.iter().all(|l| l.pe == 1 && l.simd == 1));
        assert_eq!(f.initiation_interval(&g), 75 * 64);
    }

    #[test]
    fn auto_fold_max_parallel_reaches_ii_one() {
        let g = graph(&[(75, 64), (64, 32)]);
        let f = auto_fold(&g, FoldingGoal::MaxParallel).unwrap();
        assert_eq!(f.initiation_interval(&g), 1);
    }

    #[test]
    fn target_fps_meets_budget_with_minimal_lanes() {
        let g = graph(&[(75, 64), (64, 32)]);
        let clock = 200_000_000u64;
        for fps in [1_000.0, 10_000.0, 100_000.0, 1_000_000.0] {
            let f = auto_fold(
                &g,
                FoldingGoal::TargetFps {
                    fps,
                    clock_hz: clock,
                },
            )
            .unwrap();
            let ii = f.initiation_interval(&g);
            let achieved = clock as f64 / ii as f64;
            assert!(achieved >= fps, "fps {fps}: achieved {achieved}");
        }
    }

    #[test]
    fn higher_targets_cost_more_lanes() {
        let g = graph(&[(75, 64), (64, 32)]);
        let clock = 200_000_000u64;
        let cheap = auto_fold(
            &g,
            FoldingGoal::TargetFps {
                fps: 1_000.0,
                clock_hz: clock,
            },
        )
        .unwrap();
        let fast = auto_fold(
            &g,
            FoldingGoal::TargetFps {
                fps: 2_000_000.0,
                clock_hz: clock,
            },
        )
        .unwrap();
        assert!(fast.total_lanes() > cheap.total_lanes());
    }

    #[test]
    fn unreachable_target_errors() {
        let g = graph(&[(75, 64)]);
        let err = auto_fold(
            &g,
            FoldingGoal::TargetFps {
                fps: 1e12,
                clock_hz: 100_000_000,
            },
        )
        .unwrap_err();
        assert!(matches!(err, DataflowError::TargetUnreachable { .. }));
    }

    #[test]
    fn monotone_folding_invariant() {
        // Increasing parallelism never increases the fold.
        let g = graph(&[(24, 16)]);
        let mut last = u64::MAX;
        for pe in [1usize, 2, 4, 8, 16] {
            let f = FoldingConfig {
                layers: vec![LayerFolding { pe, simd: 1 }, LayerFolding::SEQUENTIAL],
            };
            f.validate(&g).unwrap();
            let fold = f.fold_cycles(&g)[0];
            assert!(fold <= last);
            last = fold;
        }
    }
}
