//! Error types for the dataflow compiler.

use std::error::Error;
use std::fmt;

/// Errors raised while compiling or simulating an accelerator.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// PE must divide the layer's output dimension.
    PeNotDivisor {
        /// Layer index.
        layer: usize,
        /// Requested processing elements.
        pe: usize,
        /// Output dimension (matrix height).
        mh: usize,
    },
    /// SIMD must divide the layer's input dimension.
    SimdNotDivisor {
        /// Layer index.
        layer: usize,
        /// Requested SIMD lanes.
        simd: usize,
        /// Input dimension (matrix width).
        mw: usize,
    },
    /// The network has no layers.
    EmptyNetwork,
    /// Folding list length does not match the layer count.
    FoldingArity {
        /// Expected (layer count).
        expected: usize,
        /// Provided.
        actual: usize,
    },
    /// No folding meets the requested throughput on this clock.
    TargetUnreachable {
        /// Requested frames/second.
        target_fps: f64,
        /// Best achievable frames/second at full parallelism.
        best_fps: f64,
    },
    /// Bit-exactness verification against the reference model failed.
    VerificationFailed {
        /// Index of the first mismatching sample.
        sample: usize,
        /// Expected class.
        expected: usize,
        /// Accelerator output class.
        actual: usize,
    },
    /// The design does not fit the selected device.
    DeviceOverflow {
        /// Resource that overflowed (e.g. "LUT").
        resource: &'static str,
        /// Required amount.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::PeNotDivisor { layer, pe, mh } => {
                write!(f, "layer {layer}: PE {pe} does not divide output dim {mh}")
            }
            DataflowError::SimdNotDivisor { layer, simd, mw } => {
                write!(f, "layer {layer}: SIMD {simd} does not divide input dim {mw}")
            }
            DataflowError::EmptyNetwork => write!(f, "network has no layers"),
            DataflowError::FoldingArity { expected, actual } => {
                write!(f, "folding list has {actual} entries, network has {expected} layers")
            }
            DataflowError::TargetUnreachable {
                target_fps,
                best_fps,
            } => write!(
                f,
                "target {target_fps:.0} frames/s unreachable (best {best_fps:.0})"
            ),
            DataflowError::VerificationFailed {
                sample,
                expected,
                actual,
            } => write!(
                f,
                "bit-exactness verification failed at sample {sample}: expected class {expected}, got {actual}"
            ),
            DataflowError::DeviceOverflow {
                resource,
                required,
                capacity,
            } => write!(f, "{resource} overflow: need {required}, device has {capacity}"),
        }
    }
}

impl Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = DataflowError::PeNotDivisor {
            layer: 1,
            pe: 7,
            mh: 64,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("64"));
        let v = DataflowError::VerificationFailed {
            sample: 3,
            expected: 1,
            actual: 0,
        }
        .to_string();
        assert!(v.contains("sample 3"));
    }
}
