//! Bit-exactness verification (FINN's cppsim/rtlsim gate).
//!
//! Every compiled accelerator must produce *identical* classes and scores
//! to the streamlined [`IntegerMlp`] reference for every input. The
//! compile flow runs [`verify_bit_exact`] on seeded random vectors before
//! an IP is handed to the SoC; integration tests re-run it across the
//! full stack (property-based in `tests/cosim_bit_exactness.rs`).

use canids_qnn::export::IntegerMlp;

use crate::error::DataflowError;
use crate::graph::DataflowGraph;

/// Compares the graph's functional model against the reference network on
/// `samples` seeded random binary inputs.
///
/// # Errors
///
/// [`DataflowError::VerificationFailed`] at the first mismatch.
///
/// # Example
///
/// ```
/// use canids_dataflow::graph::DataflowGraph;
/// use canids_dataflow::verify::verify_bit_exact;
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig {
///     input_dim: 16,
///     hidden: vec![8],
///     ..MlpConfig::default()
/// })?;
/// let model = mlp.export()?;
/// let graph = DataflowGraph::from_integer_mlp(&model)?;
/// verify_bit_exact(&graph, &model, 128, 42)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_bit_exact(
    graph: &DataflowGraph,
    model: &IntegerMlp,
    samples: usize,
    seed: u64,
) -> Result<(), DataflowError> {
    let dim = graph.input_dim();
    let mut state = seed | 1;
    let mut next_bit = move || {
        // xorshift64* — deterministic input generator.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1 == 1
    };
    for sample in 0..samples {
        let x: Vec<u32> = (0..dim).map(|_| u32::from(next_bit())).collect();
        let want = model.infer(&x);
        let (class, scores) = graph.compute(&x);
        if class != want.class || scores != want.scores {
            return Err(DataflowError::VerificationFailed {
                sample,
                expected: want.class,
                actual: class,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_qnn::prelude::*;

    fn model() -> IntegerMlp {
        QuantMlp::new(MlpConfig {
            input_dim: 12,
            hidden: vec![6],
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap()
    }

    #[test]
    fn faithful_graph_passes() {
        let m = model();
        let g = DataflowGraph::from_integer_mlp(&m).unwrap();
        verify_bit_exact(&g, &m, 256, 7).unwrap();
    }

    #[test]
    fn corrupted_weight_is_caught() {
        let m = model();
        let mut g = DataflowGraph::from_integer_mlp(&m).unwrap();
        // Corrupt one label-select weight: scores must differ even when
        // the argmax happens to survive.
        g.label_select.weights[0] += 3;
        let err = verify_bit_exact(&g, &m, 256, 7).unwrap_err();
        assert!(matches!(err, DataflowError::VerificationFailed { .. }));
    }

    #[test]
    fn corrupted_threshold_is_caught() {
        let m = model();
        let mut g = DataflowGraph::from_integer_mlp(&m).unwrap();
        // Push every first-layer threshold far negative: all neurons fire
        // at max level, which must change some score downstream.
        for t in &mut g.mvtus[0].thresholds {
            *t = i64::MIN / 2;
        }
        let err = verify_bit_exact(&g, &m, 256, 9).unwrap_err();
        assert!(matches!(err, DataflowError::VerificationFailed { .. }));
    }

    #[test]
    fn deterministic_for_seed() {
        let m = model();
        let g = DataflowGraph::from_integer_mlp(&m).unwrap();
        assert_eq!(
            verify_bit_exact(&g, &m, 64, 1).is_ok(),
            verify_bit_exact(&g, &m, 64, 1).is_ok()
        );
    }
}
