//! The streaming dataflow intermediate representation.
//!
//! A network compiles to a linear pipeline of nodes, mirroring FINN's
//! graph after streamlining and `to_hls` conversion:
//!
//! * [`MvtuNode`] — Matrix-Vector-Threshold Unit: integer matrix-vector
//!   product followed by per-neuron MultiThreshold activation,
//! * [`LabelSelectNode`] — final integer argmax with fixed-point bias.
//!
//! Node arithmetic is exactly the [`canids_qnn::IntegerMlp`] semantics;
//! the graph adds the hardware-facing facts: accumulator widths, memory
//! footprints and (after folding) cycle counts.

use canids_qnn::export::{IntegerMlp, BIAS_SHIFT};
use serde::{Deserialize, Serialize};

use crate::error::DataflowError;

/// Integer matrix-vector product with MultiThreshold activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvtuNode {
    /// Input vector length (matrix width, `MW`).
    pub in_dim: usize,
    /// Output vector length (matrix height, `MH`).
    pub out_dim: usize,
    /// Row-major `out_dim × in_dim` integer weights.
    pub weights: Vec<i32>,
    /// Row-major `out_dim × levels` ascending thresholds.
    pub thresholds: Vec<i64>,
    /// Thresholds per neuron (output levels `0..=levels`).
    pub levels: u32,
    /// Maximum input activation level (datapath width derivation).
    pub in_levels: u32,
    /// Weight bit-width (resource estimation).
    pub weight_bits: u8,
}

impl MvtuNode {
    /// Functional model: one input vector through weights + thresholds.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn compute(&self, x: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.compute_into(x, &mut out);
        out
    }

    /// [`MvtuNode::compute`] into a caller-owned buffer (cleared and
    /// refilled), so per-frame hot paths — the cycle-accurate simulator's
    /// inner loop — reuse allocations instead of paying one per stage
    /// step.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn compute_into(&self, x: &[u32], out: &mut Vec<u32>) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        out.clear();
        for j in 0..self.out_dim {
            let row = &self.weights[j * self.in_dim..(j + 1) * self.in_dim];
            let mut acc = 0i64;
            for (w, &a) in row.iter().zip(x) {
                acc += i64::from(*w) * i64::from(a);
            }
            let trow = &self.thresholds[j * self.levels as usize..(j + 1) * self.levels as usize];
            let mut level = 0u32;
            for &t in trow {
                if acc >= t {
                    level += 1;
                } else {
                    break;
                }
            }
            out.push(level);
        }
    }

    /// Accumulator range over all neurons for inputs in `0..=in_levels`.
    pub fn acc_bounds(&self) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for j in 0..self.out_dim {
            let mut jlo = 0i64;
            let mut jhi = 0i64;
            for &w in &self.weights[j * self.in_dim..(j + 1) * self.in_dim] {
                if w > 0 {
                    jhi += i64::from(w) * i64::from(self.in_levels);
                } else {
                    jlo += i64::from(w) * i64::from(self.in_levels);
                }
            }
            lo = lo.min(jlo);
            hi = hi.max(jhi);
        }
        (lo, hi)
    }

    /// Signed bits needed for the accumulator datapath.
    pub fn acc_bits(&self) -> u32 {
        let (lo, hi) = self.acc_bounds();
        let mag = lo.unsigned_abs().max(hi.unsigned_abs()).max(1);
        64 - mag.leading_zeros() + 1
    }

    /// Bits of weight memory.
    pub fn weight_mem_bits(&self) -> usize {
        self.in_dim * self.out_dim * usize::from(self.weight_bits)
    }

    /// Bits of threshold memory (each threshold stored at accumulator
    /// width).
    pub fn threshold_mem_bits(&self) -> usize {
        self.out_dim * self.levels as usize * self.acc_bits() as usize
    }

    /// Output activation bit-width.
    pub fn out_bits(&self) -> u32 {
        32 - self.levels.leading_zeros()
    }
}

/// Final classifier stage: integer scores + argmax.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelSelectNode {
    /// Input vector length.
    pub in_dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Row-major `classes × in_dim` integer weights.
    pub weights: Vec<i32>,
    /// Fixed-point bias (scaled by `2^BIAS_SHIFT`).
    pub bias_q: Vec<i64>,
    /// Maximum input activation level.
    pub in_levels: u32,
    /// Weight bit-width.
    pub weight_bits: u8,
}

impl LabelSelectNode {
    /// Functional model: scores and argmax (ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn compute(&self, x: &[u32]) -> (usize, Vec<i64>) {
        let mut scores = Vec::with_capacity(self.classes);
        let class = self.compute_into(x, &mut scores);
        (class, scores)
    }

    /// [`LabelSelectNode::compute`] into a caller-owned score buffer
    /// (cleared and refilled); returns the argmax class.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn compute_into(&self, x: &[u32], scores: &mut Vec<i64>) -> usize {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        scores.clear();
        for j in 0..self.classes {
            let row = &self.weights[j * self.in_dim..(j + 1) * self.in_dim];
            let mut acc = 0i64;
            for (w, &a) in row.iter().zip(x) {
                acc += i64::from(*w) * i64::from(a);
            }
            scores.push((acc << BIAS_SHIFT) + self.bias_q[j]);
        }
        let mut class = 0usize;
        for (j, &s) in scores.iter().enumerate() {
            if s > scores[class] {
                class = j;
            }
        }
        class
    }

    /// Bits of weight memory.
    pub fn weight_mem_bits(&self) -> usize {
        self.in_dim * self.classes * usize::from(self.weight_bits)
    }
}

/// The compiled pipeline: MVTUs followed by a label-select stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// The matrix-vector-threshold stages, in dataflow order.
    pub mvtus: Vec<MvtuNode>,
    /// The classifier stage.
    pub label_select: LabelSelectNode,
}

impl DataflowGraph {
    /// Lowers a streamlined integer network into the dataflow IR.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::EmptyNetwork`] when the model has neither
    /// hidden layers nor classes.
    ///
    /// # Example
    ///
    /// ```
    /// use canids_dataflow::graph::DataflowGraph;
    /// use canids_qnn::prelude::*;
    ///
    /// let mlp = QuantMlp::new(MlpConfig {
    ///     input_dim: 8,
    ///     hidden: vec![4],
    ///     ..MlpConfig::default()
    /// })?;
    /// let graph = DataflowGraph::from_integer_mlp(&mlp.export()?)?;
    /// assert_eq!(graph.mvtus.len(), 1);
    /// assert_eq!(graph.label_select.classes, 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_integer_mlp(model: &IntegerMlp) -> Result<Self, DataflowError> {
        if model.output.out_dim == 0 {
            return Err(DataflowError::EmptyNetwork);
        }
        let mut in_levels = model.input_levels;
        let mut mvtus = Vec::with_capacity(model.blocks.len());
        for b in &model.blocks {
            mvtus.push(MvtuNode {
                in_dim: b.in_dim,
                out_dim: b.out_dim,
                weights: b.weights.clone(),
                thresholds: b.thresholds.clone(),
                levels: b.levels,
                in_levels,
                weight_bits: model.weight_bits,
            });
            in_levels = b.levels;
        }
        let label_select = LabelSelectNode {
            in_dim: model.output.in_dim,
            classes: model.output.out_dim,
            weights: model.output.weights.clone(),
            bias_q: model.output.bias_q.clone(),
            in_levels,
            weight_bits: model.weight_bits,
        };
        Ok(DataflowGraph {
            mvtus,
            label_select,
        })
    }

    /// Functional end-to-end inference (no timing).
    pub fn compute(&self, x: &[u32]) -> (usize, Vec<i64>) {
        let mut act = x.to_vec();
        for node in &self.mvtus {
            act = node.compute(&act);
        }
        self.label_select.compute(&act)
    }

    /// Number of pipeline stages (MVTUs + label select).
    pub fn stage_count(&self) -> usize {
        self.mvtus.len() + 1
    }

    /// `(in_dim, out_dim)` for every stage.
    pub fn stage_dims(&self) -> Vec<(usize, usize)> {
        let mut dims: Vec<(usize, usize)> =
            self.mvtus.iter().map(|n| (n.in_dim, n.out_dim)).collect();
        dims.push((self.label_select.in_dim, self.label_select.classes));
        dims
    }

    /// Total weight + threshold memory in bits.
    pub fn total_mem_bits(&self) -> usize {
        self.mvtus
            .iter()
            .map(|n| n.weight_mem_bits() + n.threshold_mem_bits())
            .sum::<usize>()
            + self.label_select.weight_mem_bits()
    }

    /// Input vector length.
    pub fn input_dim(&self) -> usize {
        self.mvtus
            .first()
            .map(|n| n.in_dim)
            .unwrap_or(self.label_select.in_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_qnn::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_model() -> IntegerMlp {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let y = usize::from(rng.gen_bool(0.5));
            let x: Vec<f32> = (0..10)
                .map(|i| if (i % 2 == 0) == (y == 1) { 1.0 } else { 0.0 })
                .collect();
            xs.push(x);
            ys.push(y);
        }
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 10,
            hidden: vec![8, 6],
            ..MlpConfig::default()
        })
        .unwrap();
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        mlp.export().unwrap()
    }

    #[test]
    fn lowering_preserves_dims() {
        let model = small_model();
        let g = DataflowGraph::from_integer_mlp(&model).unwrap();
        assert_eq!(g.stage_count(), 3);
        assert_eq!(g.stage_dims(), vec![(10, 8), (8, 6), (6, 2)]);
        assert_eq!(g.input_dim(), 10);
    }

    #[test]
    fn graph_compute_matches_integer_mlp() {
        let model = small_model();
        let g = DataflowGraph::from_integer_mlp(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x: Vec<u32> = (0..10).map(|_| u32::from(rng.gen_bool(0.5))).collect();
            let want = model.infer(&x);
            let (class, scores) = g.compute(&x);
            assert_eq!(class, want.class);
            assert_eq!(scores, want.scores);
        }
    }

    #[test]
    fn acc_bits_cover_bounds() {
        let model = small_model();
        let g = DataflowGraph::from_integer_mlp(&model).unwrap();
        for node in &g.mvtus {
            let (lo, hi) = node.acc_bounds();
            let bits = node.acc_bits();
            let max_mag = 1i64 << (bits - 1);
            assert!(lo >= -max_mag && hi < max_mag, "{lo}..{hi} vs {bits} bits");
        }
    }

    #[test]
    fn memory_accounting_positive_and_consistent() {
        let model = small_model();
        let g = DataflowGraph::from_integer_mlp(&model).unwrap();
        let w_bits: usize = 4;
        assert_eq!(g.mvtus[0].weight_mem_bits(), 10 * 8 * w_bits);
        assert!(g.total_mem_bits() > 0);
        assert_eq!(g.mvtus[0].out_bits(), 4);
    }

    #[test]
    fn node_compute_validates_input_len() {
        let model = small_model();
        let g = DataflowGraph::from_integer_mlp(&model).unwrap();
        let result = std::panic::catch_unwind(|| g.mvtus[0].compute(&[0u32; 3]));
        assert!(result.is_err());
    }
}
