//! Programmable-logic power model.
//!
//! A per-resource activity model in the spirit of vendor estimators
//! (XPE): dynamic power scales with clock frequency, resource usage and a
//! toggle-activity factor; static power is a device property. The
//! coefficients are calibrated so the paper's operating point — one 4-bit
//! QMLP IP next to a Linux PS — lands at the measured 2.09 W total board
//! power (see `canids-soc::power_rails` for the PS side and the
//! calibration note in EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use crate::resources::ResourceEstimate;

/// Dynamic power coefficients in watts per resource per Hz of clock at
/// 100 % toggle activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCoefficients {
    /// Watts per LUT·Hz.
    pub per_lut_hz: f64,
    /// Watts per FF·Hz.
    pub per_ff_hz: f64,
    /// Watts per BRAM36·Hz.
    pub per_bram_hz: f64,
    /// Watts per DSP·Hz.
    pub per_dsp_hz: f64,
    /// PL static power in watts (device leakage at nominal temperature).
    pub pl_static_w: f64,
}

impl PowerCoefficients {
    /// UltraScale+ -class coefficients (16 nm), calibrated against the
    /// paper's ZCU104 operating point: a fully-toggling LUT at 200 MHz
    /// burns ≈ 16 µW, a BRAM36 ≈ 3 mW, a DSP ≈ 2 mW.
    pub fn ultrascale_plus() -> Self {
        PowerCoefficients {
            per_lut_hz: 8.0e-14,
            per_ff_hz: 2.0e-14,
            per_bram_hz: 1.5e-11,
            per_dsp_hz: 1.0e-11,
            pl_static_w: 0.28,
        }
    }
}

impl Default for PowerCoefficients {
    fn default() -> Self {
        PowerCoefficients::ultrascale_plus()
    }
}

/// A PL power estimate in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Activity-dependent power.
    pub dynamic_w: f64,
    /// Leakage power.
    pub static_w: f64,
}

impl PowerEstimate {
    /// Total PL power.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.static_w
    }

    /// Energy for a task of the given duration, in joules.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.total_w() * seconds
    }
}

/// Estimates PL power for a design occupying `usage` at `clock_hz` with
/// the given `toggle` activity (0..1; idle fabric still burns static
/// power).
///
/// # Example
///
/// ```
/// use canids_dataflow::power::{estimate_power, PowerCoefficients};
/// use canids_dataflow::resources::ResourceEstimate;
///
/// let usage = ResourceEstimate { lut: 8_000, ff: 12_000, bram36: 4, dsp: 0 };
/// let p = estimate_power(usage, 200_000_000, 0.125, PowerCoefficients::default());
/// // A small IDS IP: tens to a few hundred milliwatts of dynamic power.
/// assert!(p.dynamic_w > 0.001 && p.dynamic_w < 0.5, "{}", p.dynamic_w);
/// ```
pub fn estimate_power(
    usage: ResourceEstimate,
    clock_hz: u64,
    toggle: f64,
    coeffs: PowerCoefficients,
) -> PowerEstimate {
    let f = clock_hz as f64;
    let toggle = toggle.clamp(0.0, 1.0);
    let dynamic_w = toggle
        * f
        * (usage.lut as f64 * coeffs.per_lut_hz
            + usage.ff as f64 * coeffs.per_ff_hz
            + usage.bram36 as f64 * coeffs.per_bram_hz
            + usage.dsp as f64 * coeffs.per_dsp_hz);
    PowerEstimate {
        dynamic_w,
        static_w: coeffs.pl_static_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage() -> ResourceEstimate {
        ResourceEstimate {
            lut: 8_000,
            ff: 12_000,
            bram36: 4,
            dsp: 0,
        }
    }

    #[test]
    fn dynamic_scales_with_clock() {
        let c = PowerCoefficients::default();
        let p1 = estimate_power(usage(), 100_000_000, 0.2, c);
        let p2 = estimate_power(usage(), 200_000_000, 0.2, c);
        assert!((p2.dynamic_w / p1.dynamic_w - 2.0).abs() < 1e-9);
        assert_eq!(p1.static_w, p2.static_w);
    }

    #[test]
    fn dynamic_scales_with_toggle() {
        let c = PowerCoefficients::default();
        let idle = estimate_power(usage(), 200_000_000, 0.0, c);
        let busy = estimate_power(usage(), 200_000_000, 0.5, c);
        assert_eq!(idle.dynamic_w, 0.0);
        assert!(busy.dynamic_w > 0.0);
        assert!(idle.total_w() > 0.0, "static floor remains");
    }

    #[test]
    fn toggle_clamped() {
        let c = PowerCoefficients::default();
        let a = estimate_power(usage(), 1_000_000, 2.0, c);
        let b = estimate_power(usage(), 1_000_000, 1.0, c);
        assert_eq!(a, b);
    }

    #[test]
    fn energy_integrates_power() {
        let c = PowerCoefficients::default();
        let p = estimate_power(usage(), 200_000_000, 0.125, c);
        let e = p.energy_j(0.5);
        assert!((e - p.total_w() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_ip_power_is_sub_watt() {
        // The QMLP IP must be a small fraction of the 2.09 W board total.
        let c = PowerCoefficients::default();
        let p = estimate_power(usage(), 200_000_000, 0.125, c);
        assert!(p.total_w() < 0.8, "PL total {}", p.total_w());
        assert!(p.total_w() > 0.2, "PL static should be visible");
    }
}
