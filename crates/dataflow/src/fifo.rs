//! Inter-stage FIFO depth sizing (FINN's `SetFIFODepths`).
//!
//! An unbalanced folding makes fast stages outrun slow ones; without
//! enough buffering the fast stage stalls and the pipeline's effective
//! initiation interval degrades beyond the bottleneck's fold. This pass
//! sizes each FIFO from the fold imbalance of its neighbours and checks
//! the result empirically with the cycle-accurate simulator.

use crate::error::DataflowError;
use crate::folding::FoldingConfig;
use crate::graph::DataflowGraph;
use crate::simulator::{AcceleratorSim, SimConfig};

/// Per-boundary FIFO depths (one entry per stage input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoDepths {
    /// Depth in frames per stage boundary.
    pub depths: Vec<usize>,
}

impl FifoDepths {
    /// The largest depth (what [`SimConfig::fifo_depth`] takes, since the
    /// simulator uses a uniform depth).
    pub fn max_depth(&self) -> usize {
        self.depths.iter().copied().max().unwrap_or(2)
    }
}

/// Sizes the FIFO at every stage boundary from the fold imbalance:
/// a stage that is `k×` faster than its downstream neighbour needs ≈`k`
/// slots of buffering to keep streaming through transients, clamped to
/// `[2, 32]`.
pub fn size_fifos(graph: &DataflowGraph, folding: &FoldingConfig) -> FifoDepths {
    let folds = folding.fold_cycles(graph);
    let mut depths = Vec::with_capacity(folds.len());
    for (i, &fold) in folds.iter().enumerate() {
        let upstream = if i == 0 { fold } else { folds[i - 1] };
        // Upstream faster than this stage -> buffer the surplus.
        let ratio = (fold as f64 / upstream.max(1) as f64).ceil() as usize;
        depths.push(ratio.clamp(2, 32));
    }
    FifoDepths { depths }
}

/// Empirically validates a depth choice: the pipeline's sustained
/// initiation interval with the given uniform depth must be within
/// `tolerance` of the analytic bottleneck.
///
/// # Errors
///
/// Returns [`DataflowError::VerificationFailed`] (with the measured and
/// analytic IIs in the `expected`/`actual` fields) when the budget is
/// missed.
pub fn validate_depths(
    graph: &DataflowGraph,
    folding: &FoldingConfig,
    depth: usize,
    tolerance: f64,
) -> Result<(), DataflowError> {
    let sim = AcceleratorSim::new(graph.clone(), folding, SimConfig { fifo_depth: depth })?;
    let n = 40usize;
    let dim = graph.input_dim();
    let inputs: Vec<Vec<u32>> = (0..n)
        .map(|i| (0..dim).map(|j| ((i * 7 + j) % 2) as u32).collect())
        .collect();
    let report = sim.run(&inputs);
    let analytic_ii = sim.initiation_interval() as f64;
    let fill = sim.single_frame_latency_cycles() as f64;
    let measured_ii = (report.total_cycles as f64 - fill).max(0.0) / (n as f64 - 1.0);
    if measured_ii > analytic_ii * (1.0 + tolerance) + 2.0 {
        return Err(DataflowError::VerificationFailed {
            sample: depth,
            expected: analytic_ii as usize,
            actual: measured_ii as usize,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::{auto_fold, FoldingGoal, LayerFolding};
    use canids_qnn::prelude::*;

    fn graph() -> DataflowGraph {
        let mlp = QuantMlp::new(MlpConfig {
            input_dim: 16,
            hidden: vec![8, 8],
            ..MlpConfig::default()
        })
        .unwrap();
        DataflowGraph::from_integer_mlp(&mlp.export().unwrap()).unwrap()
    }

    #[test]
    fn balanced_folding_needs_minimal_depth() {
        let g = graph();
        let folding = auto_fold(&g, FoldingGoal::MinResource).unwrap();
        let depths = size_fifos(&g, &folding);
        assert!(depths.depths.iter().all(|&d| d <= 4), "{depths:?}");
    }

    #[test]
    fn imbalance_grows_depths() {
        let g = graph();
        // Stage 0 maximally parallel, stage 1 sequential: big imbalance.
        let folding = FoldingConfig {
            layers: vec![
                LayerFolding { pe: 8, simd: 16 },
                LayerFolding::SEQUENTIAL,
                LayerFolding::SEQUENTIAL,
            ],
        };
        folding.validate(&g).unwrap();
        let depths = size_fifos(&g, &folding);
        assert!(depths.depths[1] > 2, "{depths:?}");
        assert!(depths.max_depth() <= 32);
    }

    #[test]
    fn sized_depths_sustain_the_analytic_ii() {
        let g = graph();
        for goal in [FoldingGoal::MinResource, FoldingGoal::MaxParallel] {
            let folding = auto_fold(&g, goal).unwrap();
            let depths = size_fifos(&g, &folding);
            validate_depths(&g, &folding, depths.max_depth(), 0.10).unwrap();
        }
    }

    #[test]
    fn depth_one_on_imbalanced_pipeline_degrades() {
        // With depth 1 and a strong imbalance the validator must flag the
        // degraded II (or at minimum, never report better than analytic).
        let g = graph();
        let folding = FoldingConfig {
            layers: vec![
                LayerFolding { pe: 8, simd: 16 },
                LayerFolding::SEQUENTIAL,
                LayerFolding { pe: 2, simd: 8 },
            ],
        };
        folding.validate(&g).unwrap();
        let tight = validate_depths(&g, &folding, 1, 0.0);
        let sized = validate_depths(&g, &folding, size_fifos(&g, &folding).max_depth(), 0.10);
        assert!(sized.is_ok());
        // depth-1 may or may not pass depending on the bottleneck position;
        // the sized configuration must never be worse.
        if tight.is_ok() {
            assert!(sized.is_ok());
        }
    }
}
