//! Graph transformation passes (the FINN "streamlining" tail end).
//!
//! The heavy lifting — absorbing scales, biases and batch norm into
//! integer thresholds — happens in `canids_qnn::export`. The passes here
//! operate on the hardware IR:
//!
//! * [`round_and_clip_thresholds`] — clips each threshold into the
//!   reachable accumulator range (FINN's `RoundAndClipThresholds`), which
//!   shrinks threshold-memory words without changing behaviour,
//! * [`validate_thresholds_sorted`] — structural invariant check.

use crate::error::DataflowError;
use crate::graph::DataflowGraph;

/// Clips thresholds into `[acc_lo, acc_hi + 1]`.
///
/// A threshold below the smallest reachable accumulator always passes, so
/// it can be stored as `acc_lo`; one above the largest reachable value
/// never passes and becomes `acc_hi + 1`. Both replacements are
/// behaviour-preserving for every reachable input, and remove the ±∞
/// sentinel values produced for constant neurons.
///
/// Returns the number of thresholds changed.
pub fn round_and_clip_thresholds(graph: &mut DataflowGraph) -> usize {
    let mut changed = 0usize;
    for node in &mut graph.mvtus {
        let (lo, hi) = node.acc_bounds();
        for t in &mut node.thresholds {
            let clipped = (*t).clamp(lo, hi + 1);
            if clipped != *t {
                *t = clipped;
                changed += 1;
            }
        }
    }
    changed
}

/// Verifies that every neuron's thresholds ascend (the MultiThreshold
/// hardware counts `acc ≥ T_k` with an early exit, which requires order).
///
/// # Errors
///
/// Returns [`DataflowError::VerificationFailed`] naming the first
/// offending stage (reported through the `sample` field as the layer
/// index).
pub fn validate_thresholds_sorted(graph: &DataflowGraph) -> Result<(), DataflowError> {
    for (layer, node) in graph.mvtus.iter().enumerate() {
        for j in 0..node.out_dim {
            let row = &node.thresholds[j * node.levels as usize..(j + 1) * node.levels as usize];
            if row.windows(2).any(|w| w[0] > w[1]) {
                return Err(DataflowError::VerificationFailed {
                    sample: layer,
                    expected: j,
                    actual: 0,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataflowGraph, LabelSelectNode, MvtuNode};

    fn toy_graph() -> DataflowGraph {
        DataflowGraph {
            mvtus: vec![MvtuNode {
                in_dim: 2,
                out_dim: 1,
                weights: vec![1, -1],
                // Reachable acc range: [-3, 3] for in_levels = 3.
                thresholds: vec![i64::MIN, 0, i64::MAX],
                levels: 3,
                in_levels: 3,
                weight_bits: 4,
            }],
            label_select: LabelSelectNode {
                in_dim: 1,
                classes: 2,
                weights: vec![1, -1],
                bias_q: vec![0, 0],
                in_levels: 3,
                weight_bits: 4,
            },
        }
    }

    #[test]
    fn clipping_preserves_behaviour() {
        let reference = toy_graph();
        let mut clipped = toy_graph();
        let changed = round_and_clip_thresholds(&mut clipped);
        assert_eq!(changed, 2, "both sentinels clipped");
        for a in 0..=3u32 {
            for b in 0..=3u32 {
                assert_eq!(
                    reference.compute(&[a, b]),
                    clipped.compute(&[a, b]),
                    "inputs ({a},{b})"
                );
            }
        }
        // Clipped values are small enough for narrow threshold memories.
        let node = &clipped.mvtus[0];
        assert!(node.thresholds.iter().all(|&t| (-3..=4).contains(&t)));
    }

    #[test]
    fn sorted_validation_accepts_good_graph() {
        assert!(validate_thresholds_sorted(&toy_graph()).is_ok());
    }

    #[test]
    fn sorted_validation_rejects_disorder() {
        let mut g = toy_graph();
        g.mvtus[0].thresholds = vec![5, 1, 2];
        assert!(validate_thresholds_sorted(&g).is_err());
    }

    #[test]
    fn clipping_is_idempotent() {
        let mut g = toy_graph();
        round_and_clip_thresholds(&mut g);
        assert_eq!(round_and_clip_thresholds(&mut g), 0);
    }
}
