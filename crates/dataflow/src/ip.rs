//! The compiled accelerator IP artifact.
//!
//! [`AcceleratorIp::compile`] is the equivalent of the FINN build flow
//! the paper uses: streamlined network in, stitched IP out — with a
//! register map for the AXI-Lite control interface, folding, resource
//! and power estimates, a cycle-accurate simulator, and a built-in
//! bit-exactness verification step (FINN's cppsim/rtlsim gate).

use canids_qnn::export::IntegerMlp;
use serde::Serialize;

use crate::error::DataflowError;
use crate::folding::{auto_fold, FoldingConfig, FoldingGoal};
use crate::graph::DataflowGraph;
use crate::passes::{round_and_clip_thresholds, validate_thresholds_sorted};
use crate::power::{estimate_power, PowerCoefficients, PowerEstimate};
use crate::resources::{estimate_resources, Device, ResourceEstimate, Utilization};
use crate::simulator::{AcceleratorSim, SimConfig};
use crate::verify::verify_bit_exact;

/// Compilation parameters.
#[derive(Debug, Clone)]
pub struct CompileConfig {
    /// IP core name (used by codegen and the register map).
    pub name: String,
    /// Target clock for the programmable logic.
    pub clock_hz: u64,
    /// Folding selection goal.
    pub goal: FoldingGoal,
    /// Inter-stage FIFO depth.
    pub fifo_depth: usize,
    /// Samples used by the built-in bit-exactness verification.
    pub verify_samples: usize,
}

impl Default for CompileConfig {
    fn default() -> Self {
        // The deployed folding targets 1M frames/s of streaming
        // throughput: compute latency drops to ~2 µs (negligible next to
        // the 0.1 ms software path) while the design stays far below the
        // paper's 4 % resource envelope.
        CompileConfig {
            name: "qmlp_ids".to_owned(),
            clock_hz: 200_000_000,
            goal: FoldingGoal::TargetFps {
                fps: 1_000_000.0,
                clock_hz: 200_000_000,
            },
            fifo_depth: 2,
            verify_samples: 64,
        }
    }
}

/// Access mode of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegAccess {
    /// Read-only.
    ReadOnly,
    /// Read/write.
    ReadWrite,
    /// Write-only.
    WriteOnly,
}

/// One AXI-Lite register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Register {
    /// Register name.
    pub name: &'static str,
    /// Byte offset from the IP base address.
    pub offset: u32,
    /// Access mode.
    pub access: RegAccess,
}

/// The AXI-Lite register map the driver programs against (the layout the
/// FINN stitched-IP wrapper exposes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegisterMap {
    /// Registers, ascending by offset.
    pub registers: Vec<Register>,
    /// Number of 32-bit words of packed input expected per frame.
    pub input_words: u32,
}

impl RegisterMap {
    /// Control register offset (bit 0 = start).
    pub const CTRL: u32 = 0x00;
    /// Status register offset (bit 0 = done, bit 1 = idle).
    pub const STATUS: u32 = 0x04;
    /// First input-data word offset.
    pub const INPUT_BASE: u32 = 0x10;
    /// Predicted-class register offset.
    pub const OUT_CLASS: u32 = 0x40;
    /// First output-score word offset.
    pub const OUT_SCORE_BASE: u32 = 0x44;

    /// Looks a register up by name.
    pub fn by_name(&self, name: &str) -> Option<&Register> {
        self.registers.iter().find(|r| r.name == name)
    }
}

/// The stitched accelerator IP: compiled graph + folding + estimates.
///
/// # Example
///
/// ```
/// use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
/// assert!(ip.latency_secs() < 1e-4, "compute latency is microseconds");
/// assert_eq!(ip.input_dim(), 75);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorIp {
    name: String,
    graph: DataflowGraph,
    folding: FoldingConfig,
    clock_hz: u64,
    sim_config: SimConfig,
    resources: ResourceEstimate,
}

impl AcceleratorIp {
    /// Compiles a streamlined integer network into an IP core:
    /// lowering → threshold passes → folding → resource estimation →
    /// bit-exactness verification.
    ///
    /// # Errors
    ///
    /// Any [`DataflowError`] from lowering, folding validation or the
    /// verification gate.
    pub fn compile(model: &IntegerMlp, config: CompileConfig) -> Result<Self, DataflowError> {
        let mut graph = DataflowGraph::from_integer_mlp(model)?;
        round_and_clip_thresholds(&mut graph);
        validate_thresholds_sorted(&graph)?;
        let folding = auto_fold(&graph, config.goal)?;
        let resources = estimate_resources(&graph, &folding);
        let ip = AcceleratorIp {
            name: config.name,
            graph,
            folding,
            clock_hz: config.clock_hz,
            sim_config: SimConfig {
                fifo_depth: config.fifo_depth,
            },
            resources,
        };
        verify_bit_exact(&ip.graph, model, config.verify_samples, 0xC051)?;
        Ok(ip)
    }

    /// IP core name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled dataflow graph.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// The chosen folding.
    pub fn folding(&self) -> &FoldingConfig {
        &self.folding
    }

    /// PL clock frequency.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.graph.input_dim()
    }

    /// 32-bit words of packed binary input per frame (what the driver
    /// writes over AXI).
    pub fn input_words(&self) -> u32 {
        (self.input_dim() as u32).div_ceil(32)
    }

    /// Builds a fresh cycle-accurate simulator for this IP.
    pub fn simulator(&self) -> AcceleratorSim {
        AcceleratorSim::new(self.graph.clone(), &self.folding, self.sim_config)
            .expect("folding validated at compile time")
    }

    /// Functional (untimed) inference.
    pub fn infer(&self, x: &[u32]) -> (usize, Vec<i64>) {
        self.graph.compute(x)
    }

    /// Single-frame compute latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.simulator().single_frame_latency_cycles()
    }

    /// Single-frame compute latency in seconds at the IP clock.
    pub fn latency_secs(&self) -> f64 {
        self.latency_cycles() as f64 / self.clock_hz as f64
    }

    /// Steady-state initiation interval in cycles.
    pub fn initiation_interval(&self) -> u64 {
        self.folding.initiation_interval(&self.graph)
    }

    /// Peak streaming throughput in frames/second.
    pub fn peak_throughput_fps(&self) -> f64 {
        self.clock_hz as f64 / self.initiation_interval() as f64
    }

    /// Resource estimate.
    pub fn resources(&self) -> ResourceEstimate {
        self.resources
    }

    /// Utilisation on a device.
    pub fn utilization(&self, device: Device) -> Utilization {
        device.utilization(self.resources)
    }

    /// PL power estimate at the given toggle activity.
    pub fn power(&self, toggle: f64) -> PowerEstimate {
        estimate_power(
            self.resources,
            self.clock_hz,
            toggle,
            PowerCoefficients::default(),
        )
    }

    /// Energy per inference in joules at the given toggle activity
    /// (compute time × PL power).
    pub fn energy_per_inference_j(&self, toggle: f64) -> f64 {
        self.power(toggle).energy_j(self.latency_secs())
    }

    /// The AXI-Lite register map exposed to the processing system.
    pub fn register_map(&self) -> RegisterMap {
        let mut registers = vec![
            Register {
                name: "CTRL",
                offset: RegisterMap::CTRL,
                access: RegAccess::ReadWrite,
            },
            Register {
                name: "STATUS",
                offset: RegisterMap::STATUS,
                access: RegAccess::ReadOnly,
            },
        ];
        for w in 0..self.input_words() {
            registers.push(Register {
                name: match w {
                    0 => "IN_W0",
                    1 => "IN_W1",
                    2 => "IN_W2",
                    3 => "IN_W3",
                    _ => "IN_WN",
                },
                offset: RegisterMap::INPUT_BASE + 4 * w,
                access: RegAccess::WriteOnly,
            });
        }
        registers.push(Register {
            name: "OUT_CLASS",
            offset: RegisterMap::OUT_CLASS,
            access: RegAccess::ReadOnly,
        });
        for (c, name) in ["OUT_SCORE0", "OUT_SCORE1", "OUT_SCORE2", "OUT_SCORE3"]
            .iter()
            .enumerate()
            .take(self.graph.label_select.classes.min(4))
        {
            registers.push(Register {
                name,
                offset: RegisterMap::OUT_SCORE_BASE + 4 * c as u32,
                access: RegAccess::ReadOnly,
            });
        }
        RegisterMap {
            registers,
            input_words: self.input_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_qnn::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_model() -> IntegerMlp {
        let mut rng = StdRng::seed_from_u64(21);
        let xs: Vec<Vec<f32>> = (0..300)
            .map(|_| {
                (0..75)
                    .map(|_| f32::from(rng.gen_bool(0.5) as u8))
                    .collect()
            })
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let mut mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        mlp.export().unwrap()
    }

    #[test]
    fn compile_produces_consistent_ip() {
        let model = trained_model();
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        assert_eq!(ip.input_dim(), 75);
        assert_eq!(ip.input_words(), 3);
        assert!(ip.latency_cycles() > 0);
        assert!(ip.peak_throughput_fps() >= 100_000.0);
        assert!(ip.resources().lut > 0);
    }

    #[test]
    fn compiled_ip_is_bit_exact_with_model() {
        let model = trained_model();
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x: Vec<u32> = (0..75).map(|_| u32::from(rng.gen_bool(0.5))).collect();
            let (class, scores) = ip.infer(&x);
            let want = model.infer(&x);
            assert_eq!(class, want.class);
            assert_eq!(scores, want.scores);
        }
    }

    #[test]
    fn latency_meets_line_rate_budget() {
        // Paper context: a CAN frame takes ≥ ~120 µs on the wire at 1 Mb/s;
        // the accelerator compute latency must be far below that.
        let model = trained_model();
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        assert!(
            ip.latency_secs() < 20e-6,
            "compute latency {} s",
            ip.latency_secs()
        );
    }

    #[test]
    fn register_map_layout() {
        let model = trained_model();
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        let map = ip.register_map();
        assert_eq!(map.input_words, 3);
        assert_eq!(map.by_name("CTRL").unwrap().offset, 0x00);
        assert_eq!(map.by_name("STATUS").unwrap().offset, 0x04);
        assert_eq!(map.by_name("OUT_CLASS").unwrap().offset, 0x40);
        assert!(map.by_name("IN_W2").is_some());
        assert!(map.by_name("OUT_SCORE1").is_some());
        // Offsets strictly ascend.
        for w in map.registers.windows(2) {
            assert!(w[0].offset < w[1].offset);
        }
    }

    #[test]
    fn power_and_energy_in_paper_ballpark() {
        let model = trained_model();
        let ip = AcceleratorIp::compile(&model, CompileConfig::default()).unwrap();
        let p = ip.power(0.125);
        assert!(p.total_w() > 0.2 && p.total_w() < 1.0, "PL power {p:?}");
        let e = ip.energy_per_inference_j(0.125);
        // Compute-only energy is micro-joules; the paper's 0.25 mJ is the
        // whole-board figure over the full 0.12 ms software path.
        assert!(e < 1e-5, "energy {e}");
    }

    #[test]
    fn min_resource_goal_compiles_too() {
        let model = trained_model();
        let ip = AcceleratorIp::compile(
            &model,
            CompileConfig {
                goal: FoldingGoal::MinResource,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ip.initiation_interval(), 75 * 64);
    }
}
