//! Cycle-accurate simulation of the folded streaming pipeline.
//!
//! Each stage (MVTU or label-select) is modelled as a unit that accepts
//! one frame, is busy for its fold (`(MH/PE)·(MW/SIMD)` cycles), and then
//! hands the result to the next stage's FIFO through a one-cycle register
//! boundary with ready/valid backpressure. This reproduces the two
//! numbers the hardware analysis needs exactly:
//!
//! * per-frame latency = `Σ (fold_i + 1)` cycles through an empty
//!   pipeline, and
//! * steady-state initiation interval = `max(fold_i)` cycles
//!
//! while also exposing transient behaviour (FIFO stalls under shallow
//! buffering) that the analytic formulas miss.

use crate::error::DataflowError;
use crate::folding::FoldingConfig;
use crate::graph::DataflowGraph;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Inter-stage FIFO depth in frames.
    pub fifo_depth: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { fifo_depth: 2 }
    }
}

/// Result of a timed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Predicted class per input frame, in input order.
    pub predictions: Vec<usize>,
    /// Raw classifier scores per frame.
    pub scores: Vec<Vec<i64>>,
    /// Cycle at which the last output left the pipeline.
    pub total_cycles: u64,
    /// Per-frame cycles from stage-0 injection to final output.
    pub frame_latencies: Vec<u64>,
    /// Cycles any stage spent blocked on a full downstream FIFO.
    pub stall_cycles: u64,
}

impl SimReport {
    /// Mean per-frame latency in cycles.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.frame_latencies.is_empty() {
            0.0
        } else {
            self.frame_latencies.iter().sum::<u64>() as f64 / self.frame_latencies.len() as f64
        }
    }

    /// Sustained throughput in frames/second at `clock_hz`.
    pub fn throughput_fps(&self, clock_hz: u64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.predictions.len() as f64 * clock_hz as f64 / self.total_cycles as f64
        }
    }

    /// Latency of frame `i` in seconds at `clock_hz`, or `None` when `i`
    /// is out of range (fewer frames were simulated than asked about).
    pub fn latency_secs(&self, i: usize, clock_hz: u64) -> Option<f64> {
        self.frame_latencies
            .get(i)
            .map(|&cycles| cycles as f64 / clock_hz as f64)
    }
}

struct Stage {
    fold: u64,
    fifo: std::collections::VecDeque<(u64, Vec<u32>)>,
    busy: u64,
    inflight: Option<(u64, Vec<u32>)>,
    done: Option<(u64, Vec<u32>)>,
}

/// The timed accelerator model for one compiled network + folding.
///
/// # Example
///
/// ```
/// use canids_dataflow::folding::{auto_fold, FoldingGoal};
/// use canids_dataflow::graph::DataflowGraph;
/// use canids_dataflow::simulator::{AcceleratorSim, SimConfig};
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig {
///     input_dim: 8,
///     hidden: vec![4],
///     ..MlpConfig::default()
/// })?;
/// let graph = DataflowGraph::from_integer_mlp(&mlp.export()?)?;
/// let folding = auto_fold(&graph, FoldingGoal::MaxParallel)?;
/// let sim = AcceleratorSim::new(graph, &folding, SimConfig::default())?;
/// let report = sim.run(&[vec![1, 0, 1, 0, 0, 1, 1, 0]]);
/// assert_eq!(report.predictions.len(), 1);
/// assert_eq!(report.frame_latencies[0], sim.single_frame_latency_cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorSim {
    graph: DataflowGraph,
    folds: Vec<u64>,
    config: SimConfig,
}

impl AcceleratorSim {
    /// Builds a simulator for `graph` at `folding`.
    ///
    /// # Errors
    ///
    /// Propagates folding validation errors.
    pub fn new(
        graph: DataflowGraph,
        folding: &FoldingConfig,
        config: SimConfig,
    ) -> Result<Self, DataflowError> {
        folding.validate(&graph)?;
        let folds = folding.fold_cycles(&graph);
        Ok(AcceleratorSim {
            graph,
            folds,
            config,
        })
    }

    /// The compiled graph.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// Steady-state initiation interval in cycles.
    pub fn initiation_interval(&self) -> u64 {
        self.folds.iter().copied().max().unwrap_or(1)
    }

    /// Analytic single-frame latency: `Σ (fold_i + 1)` cycles.
    pub fn single_frame_latency_cycles(&self) -> u64 {
        self.folds.iter().map(|f| f + 1).sum()
    }

    /// Runs `inputs` through the timed pipeline.
    ///
    /// # Panics
    ///
    /// Panics when an input vector length differs from the graph input
    /// dimension.
    pub fn run(&self, inputs: &[Vec<u32>]) -> SimReport {
        let n_stages = self.folds.len();
        // `self.folds` comes from `FoldingConfig::fold_cycles`, which
        // clamps every stage to ≥ 1 cycle — the same values the analytic
        // accessors use, so the documented identities hold even for
        // degenerate foldings.
        let mut stages: Vec<Stage> = self
            .folds
            .iter()
            .map(|&fold| Stage {
                fold,
                fifo: std::collections::VecDeque::new(),
                busy: 0,
                inflight: None,
                done: None,
            })
            .collect();

        let mut next_input = 0usize;
        let mut outputs: Vec<Option<(usize, Vec<i64>, u64)>> = vec![None; inputs.len()];
        let mut tags: Vec<u64> = vec![0; inputs.len()];
        let mut collected = 0usize;
        let mut stall_cycles = 0u64;
        let mut cycle: u64 = 0;
        let budget: u64 = (self.folds.iter().sum::<u64>() + 16) * (inputs.len() as u64 + 4) + 1_000;
        // Recycled token buffers: the number of live tokens is bounded by
        // the pipeline occupancy (FIFO slots + in-flight + parked per
        // stage), so after warm-up the steady-state inner loop allocates
        // nothing per frame.
        let mut pool: Vec<Vec<u32>> = Vec::new();
        let mut scores_buf: Vec<i64> = Vec::new();

        while collected < inputs.len() {
            assert!(
                cycle < budget,
                "simulation exceeded cycle budget (deadlock?)"
            );

            // Feed external inputs into stage 0.
            while next_input < inputs.len() && stages[0].fifo.len() < self.config.fifo_depth {
                let mut buf = pool.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(&inputs[next_input]);
                tags[next_input] = cycle;
                stages[0].fifo.push_back((next_input as u64, buf));
                next_input += 1;
            }

            // Process stages back to front: a result pushed by stage s at
            // its completion cycle lands in stage s+1's FIFO after s+1 has
            // already run this cycle, so it is consumed next cycle — the
            // one-cycle register boundary between stages.
            for s in (0..n_stages).rev() {
                // A. Retry a parked (backpressured) handoff.
                if let Some((tag, result)) = stages[s].done.take() {
                    if stages[s + 1].fifo.len() < self.config.fifo_depth {
                        stages[s + 1].fifo.push_back((tag, result));
                    } else {
                        stall_cycles += 1;
                        stages[s].done = Some((tag, result));
                    }
                }
                // B. Advance the busy counter; on completion, emit.
                if stages[s].busy > 0 {
                    stages[s].busy -= 1;
                    if stages[s].busy == 0 {
                        let (tag, input) = stages[s].inflight.take().expect("busy stage has work");
                        let mut result = pool.pop().unwrap_or_default();
                        if s < self.graph.mvtus.len() {
                            self.graph.mvtus[s].compute_into(&input, &mut result);
                        } else {
                            let class = self
                                .graph
                                .label_select
                                .compute_into(&input, &mut scores_buf);
                            encode_final_into(class, &scores_buf, &mut result);
                        }
                        pool.push(input);
                        if s + 1 == n_stages {
                            // Final stage: the output port never stalls.
                            let idx = tag as usize;
                            let (class, scores) = decode_final(&result);
                            pool.push(result);
                            outputs[idx] = Some((class, scores, cycle + 1 - tags[idx]));
                            collected += 1;
                        } else if stages[s].done.is_none()
                            && stages[s + 1].fifo.len() < self.config.fifo_depth
                        {
                            stages[s + 1].fifo.push_back((tag, result));
                        } else {
                            stall_cycles += 1;
                            stages[s].done = Some((tag, result));
                        }
                    }
                }
                // C. Start new work when the unit is idle and no completed
                // result is parked (backpressure stalls the stage).
                if stages[s].busy == 0 && stages[s].inflight.is_none() && stages[s].done.is_none() {
                    if let Some((tag, input)) = stages[s].fifo.pop_front() {
                        stages[s].inflight = Some((tag, input));
                        stages[s].busy = stages[s].fold;
                    }
                }
            }
            cycle += 1;

            // Event skip — the deep-fold fast path. After a full pass in
            // which no stage is ready to start queued work next cycle
            // (the back-to-front order means an upstream handoff can land
            // in a FIFO whose idle stage already ran its start section),
            // nothing can change until the next unit completes: stage-0's
            // FIFO is as full as the remaining inputs allow, and a parked
            // handoff stays blocked exactly until its downstream unit
            // completes (a full downstream FIFO implies a busy downstream
            // unit). So jump the clock to one cycle before the earliest
            // completion, accruing the stall cycles parked stages would
            // have counted, instead of idling cycle-by-cycle through
            // multi-thousand-cycle sequential folds. Timing is
            // bit-identical to the stepped loop (the reference-model test
            // pins this).
            let ready_to_start = stages.iter().any(|st| {
                st.busy == 0 && st.inflight.is_none() && st.done.is_none() && !st.fifo.is_empty()
            });
            // Stage 0's start section may have opened a FIFO slot after
            // this cycle's injection loop ran: the next injection is due
            // next cycle and must not be jumped over.
            let injection_due =
                next_input < inputs.len() && stages[0].fifo.len() < self.config.fifo_depth;
            if ready_to_start || injection_due {
                continue;
            }
            let min_busy = stages
                .iter()
                .filter(|st| st.busy > 0)
                .map(|st| st.busy)
                .min();
            if let Some(next_completion) = min_busy {
                let skip = next_completion - 1;
                if skip > 0 {
                    for st in &mut stages {
                        if st.busy > 0 {
                            st.busy -= skip;
                        }
                        if st.done.is_some() {
                            stall_cycles += skip;
                        }
                    }
                    cycle += skip;
                }
            }
        }

        let mut predictions = Vec::with_capacity(inputs.len());
        let mut scores = Vec::with_capacity(inputs.len());
        let mut frame_latencies = Vec::with_capacity(inputs.len());
        let mut total_cycles = 0u64;
        for (i, out) in outputs.into_iter().enumerate() {
            let (class, s, latency) = out.expect("all frames collected");
            predictions.push(class);
            scores.push(s);
            frame_latencies.push(latency);
            total_cycles = total_cycles.max(tags[i] + latency);
        }
        SimReport {
            predictions,
            scores,
            total_cycles,
            frame_latencies,
            stall_cycles,
        }
    }
}

/// The final stage's output is a score vector; encode it losslessly into
/// the `Vec<u32>` inter-stage token format.
#[cfg(test)]
fn encode_final(class: usize, scores: &[i64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(1 + scores.len() * 2);
    encode_final_into(class, scores, &mut out);
    out
}

/// [`encode_final`] into a recycled buffer (cleared and refilled).
fn encode_final_into(class: usize, scores: &[i64], out: &mut Vec<u32>) {
    out.clear();
    out.push(class as u32);
    for &s in scores {
        out.push((s as u64 >> 32) as u32);
        out.push((s as u64 & 0xFFFF_FFFF) as u32);
    }
}

fn decode_final(token: &[u32]) -> (usize, Vec<i64>) {
    let class = token[0] as usize;
    let mut scores = Vec::with_capacity((token.len() - 1) / 2);
    for pair in token[1..].chunks(2) {
        let v = (u64::from(pair[0]) << 32) | u64::from(pair[1]);
        scores.push(v as i64);
    }
    (class, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::{auto_fold, FoldingGoal, LayerFolding};
    use canids_qnn::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model(input_dim: usize, hidden: Vec<usize>) -> IntegerMlp {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim,
            hidden,
            seed: 17,
            ..MlpConfig::default()
        })
        .unwrap();
        // Light training so thresholds are calibrated and non-trivial.
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                (0..input_dim)
                    .map(|_| f32::from(rng.gen_bool(0.5) as u8))
                    .collect()
            })
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        mlp.export().unwrap()
    }

    fn random_inputs(dim: usize, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| u32::from(rng.gen_bool(0.5))).collect())
            .collect()
    }

    fn sim(
        input_dim: usize,
        hidden: Vec<usize>,
        goal: FoldingGoal,
    ) -> (AcceleratorSim, IntegerMlp) {
        let m = model(input_dim, hidden);
        let g = DataflowGraph::from_integer_mlp(&m).unwrap();
        let f = auto_fold(&g, goal).unwrap();
        (AcceleratorSim::new(g, &f, SimConfig::default()).unwrap(), m)
    }

    #[test]
    fn functional_outputs_match_reference_model() {
        let (sim, m) = sim(12, vec![8, 6], FoldingGoal::MinResource);
        let inputs = random_inputs(12, 100, 9);
        let report = sim.run(&inputs);
        for (i, x) in inputs.iter().enumerate() {
            let want = m.infer(x);
            assert_eq!(report.predictions[i], want.class, "frame {i}");
            assert_eq!(report.scores[i], want.scores, "frame {i}");
        }
    }

    #[test]
    fn single_frame_latency_matches_analytic() {
        for goal in [FoldingGoal::MinResource, FoldingGoal::MaxParallel] {
            let (sim, _) = sim(12, vec![8, 6], goal);
            let inputs = random_inputs(12, 1, 1);
            let report = sim.run(&inputs);
            assert_eq!(
                report.frame_latencies[0],
                sim.single_frame_latency_cycles(),
                "goal {goal:?}"
            );
        }
    }

    #[test]
    fn steady_state_throughput_tracks_initiation_interval() {
        let (sim, _) = sim(12, vec![8, 6], FoldingGoal::MinResource);
        let n = 50usize;
        let inputs = random_inputs(12, n, 2);
        let report = sim.run(&inputs);
        let ii = sim.initiation_interval();
        let ideal = sim.single_frame_latency_cycles() + (n as u64 - 1) * ii;
        assert!(
            report.total_cycles >= ideal,
            "{} < ideal {ideal}",
            report.total_cycles
        );
        assert!(
            report.total_cycles <= ideal + 4 * n as u64,
            "{} too far above ideal {ideal}",
            report.total_cycles
        );
    }

    #[test]
    fn max_parallel_reaches_ii_one() {
        let (sim, _) = sim(8, vec![4], FoldingGoal::MaxParallel);
        assert_eq!(sim.initiation_interval(), 1);
        let n = 40usize;
        let report = sim.run(&random_inputs(8, n, 3));
        // One frame per cycle after the pipeline fills.
        let fill = sim.single_frame_latency_cycles();
        assert!(report.total_cycles <= fill + n as u64 + 4);
    }

    #[test]
    fn shallow_fifos_still_complete() {
        let m = model(12, vec![8, 6]);
        let g = DataflowGraph::from_integer_mlp(&m).unwrap();
        // Deliberately unbalanced folding: stage 1 is the bottleneck.
        let f = FoldingConfig {
            layers: vec![
                LayerFolding { pe: 8, simd: 12 },
                LayerFolding { pe: 1, simd: 1 },
                LayerFolding { pe: 1, simd: 1 },
            ],
        };
        let sim = AcceleratorSim::new(g, &f, SimConfig { fifo_depth: 1 }).unwrap();
        let inputs = random_inputs(12, 30, 4);
        let report = sim.run(&inputs);
        assert_eq!(report.predictions.len(), 30);
        assert!(report.stall_cycles > 0, "bottleneck must cause stalls");
    }

    #[test]
    fn throughput_fps_scales_with_clock() {
        let (sim, _) = sim(12, vec![8], FoldingGoal::MinResource);
        let report = sim.run(&random_inputs(12, 10, 5));
        let at100 = report.throughput_fps(100_000_000);
        let at200 = report.throughput_fps(200_000_000);
        assert!((at200 / at100 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_secs_conversion() {
        let (sim, _) = sim(12, vec![8], FoldingGoal::MinResource);
        let report = sim.run(&random_inputs(12, 1, 6));
        let s = report.latency_secs(0, 200_000_000).unwrap();
        assert!((s - report.frame_latencies[0] as f64 / 2e8).abs() < 1e-15);
        // Out-of-range indices are a `None`, not a panic.
        assert_eq!(report.latency_secs(1, 200_000_000), None);
        assert_eq!(report.latency_secs(usize::MAX, 200_000_000), None);
    }

    #[test]
    fn degenerate_zero_cycle_fold_keeps_analytic_identities() {
        use crate::graph::{LabelSelectNode, MvtuNode};
        // A zero-input MVTU stage folds to 0 raw cycles; the shared clamp
        // must keep the simulator and the analytic accessors agreeing.
        let g = DataflowGraph {
            mvtus: vec![MvtuNode {
                in_dim: 0,
                out_dim: 2,
                weights: vec![],
                thresholds: vec![0, 1, 2, 0, 1, 2],
                levels: 3,
                in_levels: 1,
                weight_bits: 4,
            }],
            label_select: LabelSelectNode {
                in_dim: 2,
                classes: 2,
                weights: vec![1, 0, 0, 1],
                bias_q: vec![0, 0],
                in_levels: 3,
                weight_bits: 4,
            },
        };
        let f = FoldingConfig::sequential(2);
        let sim = AcceleratorSim::new(g, &f, SimConfig::default()).unwrap();
        // The degenerate stage is clamped to one cycle everywhere.
        assert_eq!(sim.initiation_interval(), 4, "label-select fold 2x2");
        assert_eq!(sim.single_frame_latency_cycles(), (1 + 1) + (4 + 1));
        let report = sim.run(&[vec![], vec![]]);
        assert_eq!(report.frame_latencies[0], sim.single_frame_latency_cycles());
        // Steady state: one frame per initiation interval.
        assert!(
            report.total_cycles >= sim.single_frame_latency_cycles() + sim.initiation_interval()
        );
    }

    /// The pre-optimisation stepped simulator (one loop iteration per
    /// cycle, freshly allocated tokens): the reference the event-skip
    /// fast path must match bit for bit.
    fn run_reference(sim: &AcceleratorSim, inputs: &[Vec<u32>]) -> SimReport {
        let folds = {
            // Same folds the optimised path uses.
            let mut v = Vec::new();
            for s in 0..sim.folds.len() {
                v.push(sim.folds[s]);
            }
            v
        };
        let n_stages = folds.len();
        let depth = sim.config.fifo_depth;
        let mut stages: Vec<Stage> = folds
            .iter()
            .map(|&fold| Stage {
                fold,
                fifo: std::collections::VecDeque::new(),
                busy: 0,
                inflight: None,
                done: None,
            })
            .collect();
        let mut pending: std::collections::VecDeque<(usize, Vec<u32>)> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| (i, x.clone()))
            .collect();
        let mut outputs: Vec<Option<(usize, Vec<i64>, u64)>> = vec![None; inputs.len()];
        let mut tags: Vec<u64> = vec![0; inputs.len()];
        let mut collected = 0usize;
        let mut stall_cycles = 0u64;
        let mut cycle: u64 = 0;
        while collected < inputs.len() {
            while let Some((idx, _)) = pending.front() {
                if stages[0].fifo.len() < depth {
                    let (idx, x) = (*idx, pending.front().unwrap().1.clone());
                    tags[idx] = cycle;
                    pending.pop_front();
                    stages[0].fifo.push_back((idx as u64, x));
                } else {
                    break;
                }
            }
            for s in (0..n_stages).rev() {
                if let Some((tag, result)) = stages[s].done.take() {
                    if stages[s + 1].fifo.len() < depth {
                        stages[s + 1].fifo.push_back((tag, result));
                    } else {
                        stall_cycles += 1;
                        stages[s].done = Some((tag, result));
                    }
                }
                if stages[s].busy > 0 {
                    stages[s].busy -= 1;
                    if stages[s].busy == 0 {
                        let (tag, input) = stages[s].inflight.take().unwrap();
                        let result = if s < sim.graph.mvtus.len() {
                            sim.graph.mvtus[s].compute(&input)
                        } else {
                            let (class, scores) = sim.graph.label_select.compute(&input);
                            encode_final(class, &scores)
                        };
                        if s + 1 == n_stages {
                            let idx = tag as usize;
                            let (class, scores) = decode_final(&result);
                            outputs[idx] = Some((class, scores, cycle + 1 - tags[idx]));
                            collected += 1;
                        } else if stages[s].done.is_none() && stages[s + 1].fifo.len() < depth {
                            stages[s + 1].fifo.push_back((tag, result));
                        } else {
                            stall_cycles += 1;
                            stages[s].done = Some((tag, result));
                        }
                    }
                }
                if stages[s].busy == 0 && stages[s].inflight.is_none() && stages[s].done.is_none() {
                    if let Some((tag, input)) = stages[s].fifo.pop_front() {
                        stages[s].inflight = Some((tag, input));
                        stages[s].busy = stages[s].fold;
                    }
                }
            }
            cycle += 1;
        }
        let mut predictions = Vec::new();
        let mut scores = Vec::new();
        let mut frame_latencies = Vec::new();
        let mut total_cycles = 0u64;
        for (i, out) in outputs.into_iter().enumerate() {
            let (class, s, latency) = out.unwrap();
            predictions.push(class);
            scores.push(s);
            frame_latencies.push(latency);
            total_cycles = total_cycles.max(tags[i] + latency);
        }
        SimReport {
            predictions,
            scores,
            total_cycles,
            frame_latencies,
            stall_cycles,
        }
    }

    #[test]
    fn event_skip_is_bit_identical_to_the_stepped_reference() {
        // Every timing fact — per-frame latencies, total cycles, stall
        // accounting — must survive the event-skip optimisation exactly,
        // across fold regimes (deep sequential, full parallel, an
        // unbalanced bottleneck under a shallow FIFO).
        let m = model(12, vec![8, 6]);
        let g = DataflowGraph::from_integer_mlp(&m).unwrap();
        let cases: Vec<(FoldingConfig, usize)> = vec![
            (auto_fold(&g, FoldingGoal::MinResource).unwrap(), 2),
            (auto_fold(&g, FoldingGoal::MaxParallel).unwrap(), 2),
            (
                FoldingConfig {
                    layers: vec![
                        LayerFolding { pe: 8, simd: 12 },
                        LayerFolding { pe: 1, simd: 1 },
                        LayerFolding { pe: 1, simd: 1 },
                    ],
                },
                1,
            ),
        ];
        let inputs = random_inputs(12, 30, 77);
        for (folding, fifo_depth) in cases {
            let sim = AcceleratorSim::new(g.clone(), &folding, SimConfig { fifo_depth }).unwrap();
            let fast = sim.run(&inputs);
            let reference = run_reference(&sim, &inputs);
            assert_eq!(fast, reference, "folding {folding:?} depth {fifo_depth}");
        }
    }

    #[test]
    fn final_token_encoding_round_trips() {
        let scores = vec![-123_456_789_012i64, 987_654_321, 0, i64::MIN / 4];
        let token = encode_final(2, &scores);
        let (class, back) = decode_final(&token);
        assert_eq!(class, 2);
        assert_eq!(back, scores);
    }
}
