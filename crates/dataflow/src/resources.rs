//! FPGA resource cost model and device database.
//!
//! The estimates follow FINN's analytic cost model in spirit: LUT cost is
//! driven by the multiplier lanes (`pe·simd` per layer, scaled by the
//! operand widths), plus per-PE accumulators and threshold comparators;
//! memories go to distributed RAM below a cut-off and to BRAM36 above
//! it. Absolute numbers are an engineering estimate, not a synthesis
//! result — the experiment this feeds (paper: "< 4 % of the ZCU104")
//! depends on the *ratio* to the device capacity, which the model
//! preserves.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::folding::FoldingConfig;
use crate::graph::DataflowGraph;

/// Memory below this many bits stays in LUT-RAM; above it, BRAM36.
pub const LUTRAM_CUTOFF_BITS: usize = 8 * 1024;

/// Bits per BRAM36 block.
pub const BRAM36_BITS: usize = 36 * 1024;

/// An FPGA resource vector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36-kbit block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl Add for ResourceEstimate {
    type Output = ResourceEstimate;
    fn add(self, rhs: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram36: self.bram36 + rhs.bram36,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ResourceEstimate {
    fn add_assign(&mut self, rhs: ResourceEstimate) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:>7}  FF {:>7}  BRAM36 {:>4}  DSP {:>4}",
            self.lut, self.ff, self.bram36, self.dsp
        )
    }
}

/// A target FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing/board name.
    pub name: &'static str,
    /// LUT capacity.
    pub luts: u64,
    /// Flip-flop capacity.
    pub ffs: u64,
    /// BRAM36 capacity.
    pub bram36: u64,
    /// DSP capacity.
    pub dsps: u64,
}

impl Device {
    /// ZCU104 board: Zynq UltraScale+ XCZU7EV (the paper's target ECU).
    pub const ZCU104: Device = Device {
        name: "ZCU104 (XCZU7EV)",
        luts: 230_400,
        ffs: 460_800,
        bram36: 312,
        dsps: 1_728,
    };

    /// PYNQ-Z2 board: Zynq-7020 (the hybrid-FPGA baseline in the group's
    /// earlier work).
    pub const PYNQ_Z2: Device = Device {
        name: "PYNQ-Z2 (XC7Z020)",
        luts: 53_200,
        ffs: 106_400,
        bram36: 140,
        dsps: 220,
    };

    /// Ultra96 board: Zynq UltraScale+ XCZU3EG.
    pub const ULTRA96: Device = Device {
        name: "Ultra96 (XCZU3EG)",
        luts: 70_560,
        ffs: 141_120,
        bram36: 216,
        dsps: 360,
    };

    /// Per-resource utilisation fractions of `usage` on this device.
    pub fn utilization(&self, usage: ResourceEstimate) -> Utilization {
        Utilization {
            lut: usage.lut as f64 / self.luts as f64,
            ff: usage.ff as f64 / self.ffs as f64,
            bram36: usage.bram36 as f64 / self.bram36 as f64,
            dsp: usage.dsp as f64 / self.dsps as f64,
        }
    }

    /// How many copies of `usage` fit on the device (the paper's
    /// multi-model deployment headroom).
    pub fn fit_count(&self, usage: ResourceEstimate) -> u64 {
        let mut n = u64::MAX;
        if let Some(q) = self.luts.checked_div(usage.lut) {
            n = n.min(q);
        }
        if let Some(q) = self.ffs.checked_div(usage.ff) {
            n = n.min(q);
        }
        if let Some(q) = self.bram36.checked_div(usage.bram36) {
            n = n.min(q);
        }
        if let Some(q) = self.dsps.checked_div(usage.dsp) {
            n = n.min(q);
        }
        if n == u64::MAX {
            0
        } else {
            n
        }
    }

    /// Resources left on the device after `used` (saturating at zero per
    /// class).
    pub fn remaining(&self, used: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            lut: self.luts.saturating_sub(used.lut),
            ff: self.ffs.saturating_sub(used.ff),
            bram36: self.bram36.saturating_sub(used.bram36),
            dsp: self.dsps.saturating_sub(used.dsp),
        }
    }

    /// The first resource class `usage` overflows on this device, as
    /// `(class, required, capacity)` — `None` when everything fits.
    pub fn first_overflow(&self, usage: ResourceEstimate) -> Option<(&'static str, u64, u64)> {
        [
            ("LUT", usage.lut, self.luts),
            ("FF", usage.ff, self.ffs),
            ("BRAM36", usage.bram36, self.bram36),
            ("DSP", usage.dsp, self.dsps),
        ]
        .into_iter()
        .find(|&(_, required, capacity)| required > capacity)
    }

    /// How many additional copies of `unit` fit in what the device has
    /// left after `used`.
    ///
    /// Every class is constrained by its *true* remainder: a class the
    /// unit does not consume never constrains, and an exhausted class the
    /// unit does consume yields zero headroom (no capacity is fabricated,
    /// unlike the historical `remaining.dsp.max(1)` hack this replaces).
    /// A unit consuming nothing at all reports zero headroom rather than
    /// infinity.
    pub fn headroom_after(&self, used: ResourceEstimate, unit: ResourceEstimate) -> u64 {
        let left = self.remaining(used);
        let mut n = u64::MAX;
        if let Some(q) = left.lut.checked_div(unit.lut) {
            n = n.min(q);
        }
        if let Some(q) = left.ff.checked_div(unit.ff) {
            n = n.min(q);
        }
        if let Some(q) = left.bram36.checked_div(unit.bram36) {
            n = n.min(q);
        }
        if let Some(q) = left.dsp.checked_div(unit.dsp) {
            n = n.min(q);
        }
        if n == u64::MAX {
            0
        } else {
            n
        }
    }
}

/// Per-resource utilisation fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT fraction.
    pub lut: f64,
    /// FF fraction.
    pub ff: f64,
    /// BRAM36 fraction.
    pub bram36: f64,
    /// DSP fraction.
    pub dsp: f64,
}

impl Utilization {
    /// The largest fraction across resource classes.
    pub fn max_fraction(&self) -> f64 {
        self.lut.max(self.ff).max(self.bram36).max(self.dsp)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:5.2}%  FF {:5.2}%  BRAM {:5.2}%  DSP {:5.2}%",
            self.lut * 100.0,
            self.ff * 100.0,
            self.bram36 * 100.0,
            self.dsp * 100.0
        )
    }
}

fn memory_cost(bits: usize) -> ResourceEstimate {
    if bits == 0 {
        ResourceEstimate::default()
    } else if bits <= LUTRAM_CUTOFF_BITS {
        // Distributed RAM: ~1 LUT per 32 bits (SLICEM LUT as 32x1).
        ResourceEstimate {
            lut: (bits as u64).div_ceil(32),
            ff: 0,
            bram36: 0,
            dsp: 0,
        }
    } else {
        ResourceEstimate {
            lut: 0,
            ff: 0,
            bram36: (bits as u64).div_ceil(BRAM36_BITS as u64),
            dsp: 0,
        }
    }
}

/// The shape and bit-level parameters of one folded MVTU stage, as fed
/// to the cost model.
struct MvtuStage {
    /// Matrix height (output neurons).
    mh: usize,
    /// Matrix width (input features).
    mw: usize,
    /// Processing elements (row parallelism).
    pe: usize,
    /// SIMD lanes per PE (column parallelism).
    simd: usize,
    /// Weight precision.
    weight_bits: u8,
    /// Input activation precision.
    act_bits: u32,
    /// Accumulator width.
    acc_bits: u32,
    /// Threshold levels per output (0 for the label-select stage).
    levels: u32,
    /// Total threshold memory footprint in bits.
    threshold_bits: usize,
}

/// Estimates the resources of one folded MVTU stage.
fn mvtu_cost(stage: MvtuStage) -> ResourceEstimate {
    let MvtuStage {
        mh,
        mw,
        pe,
        simd,
        weight_bits,
        act_bits,
        acc_bits,
        levels,
        threshold_bits,
    } = stage;
    let lanes = (pe * simd) as u64;
    let wb = u64::from(weight_bits);
    let ab = u64::from(act_bits.max(1));
    // LUT-mapped small-width multiply-add per lane (FINN maps <=8-bit
    // MACs to LUTs): empirical ~0.6·wb·ab + 3 LUTs per lane.
    let mac_lut = lanes * (wb * ab * 6 / 10 + 3);
    // Adder tree + accumulator per PE.
    let acc_lut = pe as u64 * u64::from(acc_bits) * 2;
    // Threshold comparators: one acc-width comparator per level per PE.
    let thr_lut = pe as u64 * u64::from(levels) * u64::from(acc_bits) / 2;
    // Control FSM and counters.
    let ctrl_lut = 120;
    let weight_mem = memory_cost(mh * mw * usize::from(weight_bits));
    let thr_mem = memory_cost(threshold_bits);
    // Use DSPs only for wide MACs (>8-bit operands), as FINN does.
    let dsp = if wb > 8 || ab > 8 { lanes } else { 0 };
    ResourceEstimate {
        lut: mac_lut + acc_lut + thr_lut + ctrl_lut,
        ff: (mac_lut + acc_lut) * 3 / 2 + 200,
        bram36: 0,
        dsp,
    } + weight_mem
        + thr_mem
}

/// Estimates the resources of the whole folded pipeline, including
/// AXI-Stream FIFOs and the AXI-Lite control shim.
///
/// # Example
///
/// ```
/// use canids_dataflow::folding::{auto_fold, FoldingGoal};
/// use canids_dataflow::graph::DataflowGraph;
/// use canids_dataflow::resources::{estimate_resources, Device};
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let graph = DataflowGraph::from_integer_mlp(&mlp.export()?)?;
/// let folding = auto_fold(&graph, FoldingGoal::TargetFps {
///     fps: 100_000.0,
///     clock_hz: 200_000_000,
/// })?;
/// let usage = estimate_resources(&graph, &folding);
/// // The paper: a single model uses < 4 % of the ZCU104.
/// assert!(Device::ZCU104.utilization(usage).max_fraction() < 0.04);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_resources(graph: &DataflowGraph, folding: &FoldingConfig) -> ResourceEstimate {
    let mut total = ResourceEstimate {
        // AXI-Lite control + stream infrastructure shim.
        lut: 900,
        ff: 1_200,
        bram36: 0,
        dsp: 0,
    };
    for (i, node) in graph.mvtus.iter().enumerate() {
        let f = folding
            .layers
            .get(i)
            .copied()
            .unwrap_or(crate::folding::LayerFolding::SEQUENTIAL);
        total += mvtu_cost(MvtuStage {
            mh: node.out_dim,
            mw: node.in_dim,
            pe: f.pe,
            simd: f.simd,
            weight_bits: node.weight_bits,
            act_bits: 32 - node.in_levels.leading_zeros(),
            acc_bits: node.acc_bits(),
            levels: node.levels,
            threshold_bits: node.threshold_mem_bits(),
        });
        // Inter-stage FIFO (shallow, LUTRAM).
        total += ResourceEstimate {
            lut: 40,
            ff: 60,
            bram36: 0,
            dsp: 0,
        };
    }
    let ls = &graph.label_select;
    let f = folding
        .layers
        .last()
        .copied()
        .unwrap_or(crate::folding::LayerFolding::SEQUENTIAL);
    total += mvtu_cost(MvtuStage {
        mh: ls.classes,
        mw: ls.in_dim,
        pe: f.pe.min(ls.classes.max(1)),
        simd: f.simd,
        weight_bits: ls.weight_bits,
        act_bits: 32 - ls.in_levels.leading_zeros(),
        acc_bits: 24,
        levels: 0,
        threshold_bits: 0,
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::{auto_fold, FoldingConfig, FoldingGoal};
    use crate::graph::DataflowGraph;
    use canids_qnn::prelude::*;

    fn paper_graph() -> DataflowGraph {
        let mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        DataflowGraph::from_integer_mlp(&mlp.export().unwrap()).unwrap()
    }

    #[test]
    fn resource_vector_arithmetic() {
        let a = ResourceEstimate {
            lut: 10,
            ff: 20,
            bram36: 1,
            dsp: 2,
        };
        let b = a + a;
        assert_eq!(b.lut, 20);
        assert_eq!(b.dsp, 4);
        let mut c = a;
        c += a;
        assert_eq!(b, c);
    }

    #[test]
    fn memory_cost_transitions_to_bram() {
        let small = memory_cost(1_000);
        assert!(small.bram36 == 0 && small.lut > 0);
        let big = memory_cost(100_000);
        assert!(big.bram36 >= 2 && big.lut == 0);
        assert_eq!(memory_cost(0), ResourceEstimate::default());
    }

    #[test]
    fn more_parallelism_costs_more_luts() {
        let g = paper_graph();
        let cheap = estimate_resources(&g, &FoldingConfig::sequential(g.stage_count()));
        let fast = estimate_resources(&g, &auto_fold(&g, FoldingGoal::MaxParallel).unwrap());
        assert!(fast.lut > cheap.lut, "{} !> {}", fast.lut, cheap.lut);
    }

    #[test]
    fn paper_model_fits_under_4_percent_of_zcu104() {
        let g = paper_graph();
        let folding = auto_fold(
            &g,
            FoldingGoal::TargetFps {
                fps: 100_000.0,
                clock_hz: 200_000_000,
            },
        )
        .unwrap();
        let usage = estimate_resources(&g, &folding);
        let util = Device::ZCU104.utilization(usage);
        assert!(
            util.max_fraction() < 0.04,
            "utilisation {util} exceeds the paper's 4% claim"
        );
        assert!(util.max_fraction() > 0.0005, "estimate suspiciously small");
    }

    #[test]
    fn eight_bit_model_uses_dsps_or_more_luts() {
        let mlp4 = QuantMlp::new(MlpConfig::default()).unwrap();
        let mlp8 = QuantMlp::new(MlpConfig::gpu_8bit()).unwrap();
        let g4 = DataflowGraph::from_integer_mlp(&mlp4.export().unwrap()).unwrap();
        let g8 = DataflowGraph::from_integer_mlp(&mlp8.export().unwrap()).unwrap();
        let f4 = auto_fold(&g4, FoldingGoal::MaxParallel).unwrap();
        let f8 = auto_fold(&g8, FoldingGoal::MaxParallel).unwrap();
        let r4 = estimate_resources(&g4, &f4);
        let r8 = estimate_resources(&g8, &f8);
        assert!(
            r8.lut + r8.dsp * 50 > r4.lut,
            "8-bit should cost more compute fabric"
        );
    }

    #[test]
    fn multi_model_fit_count() {
        let g = paper_graph();
        let folding = auto_fold(
            &g,
            FoldingGoal::TargetFps {
                fps: 100_000.0,
                clock_hz: 200_000_000,
            },
        )
        .unwrap();
        let usage = estimate_resources(&g, &folding);
        // The paper argues multiple models fit simultaneously.
        assert!(Device::ZCU104.fit_count(usage) >= 8);
        assert_eq!(Device::ZCU104.fit_count(ResourceEstimate::default()), 0);
    }

    #[test]
    fn remaining_saturates_and_overflow_names_the_class() {
        let d = Device::PYNQ_Z2;
        let over = ResourceEstimate {
            lut: d.luts + 10,
            ff: 0,
            bram36: 0,
            dsp: 0,
        };
        assert_eq!(d.remaining(over).lut, 0, "saturates, never wraps");
        assert_eq!(d.first_overflow(over), Some(("LUT", d.luts + 10, d.luts)));
        let fits = ResourceEstimate {
            lut: 100,
            ff: 100,
            bram36: 1,
            dsp: 1,
        };
        assert_eq!(d.first_overflow(fits), None);
        assert_eq!(d.remaining(fits).lut, d.luts - 100);
    }

    #[test]
    fn headroom_after_counts_true_remainder() {
        let d = Device {
            name: "toy",
            luts: 1_000,
            ffs: 2_000,
            bram36: 10,
            dsps: 4,
        };
        let unit = ResourceEstimate {
            lut: 100,
            ff: 100,
            bram36: 1,
            dsp: 1,
        };
        // Fresh device: LUT allows 10, FF 20, BRAM 10, DSP 4 -> 4.
        assert_eq!(d.headroom_after(ResourceEstimate::default(), unit), 4);
        // Half used: 2 DSPs left -> 2 copies.
        let used = ResourceEstimate {
            lut: 500,
            ff: 1_000,
            bram36: 5,
            dsp: 2,
        };
        assert_eq!(d.headroom_after(used, unit), 2);
    }

    #[test]
    fn zero_remaining_yields_zero_headroom() {
        // Regression: the old deploy-layer headroom fabricated one DSP
        // when the device was exhausted (`remaining.dsp.max(1)`), so a
        // 1-DSP unit still reported headroom. With the true remainder an
        // exhausted class the unit needs must report zero.
        let d = Device {
            name: "toy",
            luts: 1_000,
            ffs: 1_000,
            bram36: 8,
            dsps: 2,
        };
        let all_dsps = ResourceEstimate {
            lut: 100,
            ff: 100,
            bram36: 0,
            dsp: 2,
        };
        let one_dsp_unit = ResourceEstimate {
            lut: 10,
            ff: 10,
            bram36: 0,
            dsp: 1,
        };
        assert_eq!(d.headroom_after(all_dsps, one_dsp_unit), 0);
        // A unit that needs no DSPs is not constrained by the exhausted
        // class.
        let no_dsp_unit = ResourceEstimate {
            lut: 10,
            ff: 10,
            bram36: 0,
            dsp: 0,
        };
        assert_eq!(d.headroom_after(all_dsps, no_dsp_unit), 90);
        // A unit consuming nothing reports zero, not infinity.
        assert_eq!(d.headroom_after(all_dsps, ResourceEstimate::default()), 0);
    }

    #[test]
    fn display_formats() {
        let usage = ResourceEstimate {
            lut: 5000,
            ff: 9000,
            bram36: 3,
            dsp: 0,
        };
        assert!(usage.to_string().contains("5000"));
        let util = Device::ZCU104.utilization(usage);
        assert!(util.to_string().contains('%'));
    }
}
