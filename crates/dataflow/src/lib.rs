//! FINN-style streaming dataflow compiler and cycle-accurate accelerator
//! simulator.
//!
//! This crate is the Rust stand-in for the AMD/Xilinx FINN flow the paper
//! uses to turn its Brevitas-trained quantised MLP into an FPGA IP core:
//!
//! * [`graph`] — the post-streamlining IR: Matrix-Vector-Threshold Units
//!   and a label-select stage, functionally identical to the
//!   [`canids_qnn::IntegerMlp`] it was lowered from,
//! * [`passes`] — hardware-IR transformations (threshold clipping),
//! * [`folding`] — PE/SIMD time-multiplexing and the auto-folder,
//! * [`simulator`] — cycle-accurate pipeline simulation with FIFO
//!   backpressure,
//! * [`resources`]/[`power`] — LUT/FF/BRAM/DSP cost model, device
//!   database (ZCU104 et al.) and the PL power model,
//! * [`ip`] — the stitched-IP artifact with its AXI-Lite register map,
//! * [`codegen`] — SystemVerilog emission for inspection,
//! * [`verify`] — the mandatory bit-exactness gate.
//!
//! # Example
//!
//! ```
//! use canids_dataflow::prelude::*;
//! use canids_qnn::prelude::*;
//!
//! let mlp = QuantMlp::new(MlpConfig::default())?;
//! let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
//!
//! // Paper-scale facts: microsecond compute latency, <4% of a ZCU104.
//! assert!(ip.latency_secs() < 2e-5);
//! assert!(ip.utilization(Device::ZCU104).max_fraction() < 0.04);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod error;
pub mod fifo;
pub mod folding;
pub mod graph;
pub mod ip;
pub mod passes;
pub mod power;
pub mod resources;
pub mod simulator;
pub mod verify;

pub use error::DataflowError;
pub use fifo::{size_fifos, validate_depths, FifoDepths};
pub use folding::{auto_fold, FoldingConfig, FoldingGoal, LayerFolding};
pub use graph::{DataflowGraph, LabelSelectNode, MvtuNode};
pub use ip::{AcceleratorIp, CompileConfig, RegisterMap};
pub use power::{estimate_power, PowerCoefficients, PowerEstimate};
pub use resources::{estimate_resources, Device, ResourceEstimate, Utilization};
pub use simulator::{AcceleratorSim, SimConfig, SimReport};
pub use verify::verify_bit_exact;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::codegen::{emit_testbench, emit_verilog};
    pub use crate::error::DataflowError;
    pub use crate::folding::{auto_fold, FoldingConfig, FoldingGoal, LayerFolding};
    pub use crate::graph::DataflowGraph;
    pub use crate::ip::{AcceleratorIp, CompileConfig, RegisterMap};
    pub use crate::power::{PowerCoefficients, PowerEstimate};
    pub use crate::resources::{Device, ResourceEstimate, Utilization};
    pub use crate::simulator::{AcceleratorSim, SimConfig, SimReport};
    pub use crate::verify::verify_bit_exact;
}
