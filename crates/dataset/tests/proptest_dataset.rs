//! Property-based tests of capture generation, splitting and the CSV
//! codec.

use canids_can::time::SimTime;
use canids_dataset::csv::{from_csv, to_csv};
use canids_dataset::prelude::*;
use proptest::prelude::*;

fn arb_attack() -> impl Strategy<Value = Option<AttackProfile>> {
    prop_oneof![
        Just(None),
        Just(Some(
            AttackProfile::dos().with_schedule(BurstSchedule::Continuous)
        )),
        Just(Some(
            AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)
        )),
        Just(Some(
            AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous)
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn captures_are_deterministic_and_ordered(
        seed in 0u64..1_000,
        attack in arb_attack(),
    ) {
        let mk = || DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(150),
            attack,
            seed,
            ..TrafficConfig::default()
        }).build();
        let a = mk();
        let b = mk();
        prop_assert_eq!(&a, &b, "same seed, same capture");
        for w in a.records().windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn split_partitions_and_preserves_balance(
        seed in 0u64..1_000,
        frac in 0.1f64..0.5,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        }).build();
        let (train, test) = train_test_split(&ds, SplitConfig {
            test_fraction: frac,
            seed,
            stratified: true,
        });
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let d = (train.attack_fraction() - ds.attack_fraction()).abs();
        prop_assert!(d < 0.05, "balance drift {d}");
    }

    #[test]
    fn csv_round_trip_any_capture(seed in 0u64..1_000, attack in arb_attack()) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(120),
            attack,
            seed,
            ..TrafficConfig::default()
        }).build();
        let label = attack.map(|a| a.kind.label()).unwrap_or(Label::Dos);
        let back = from_csv(&to_csv(&ds), label).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            prop_assert_eq!(a.frame, b.frame);
            prop_assert_eq!(a.label.is_attack(), b.label.is_attack());
        }
    }

    #[test]
    fn feature_encoding_is_injective_on_distinct_frames(
        seed in 0u64..1_000,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(100),
            seed,
            ..TrafficConfig::default()
        }).build();
        let enc = IdBitsPayloadBits;
        for w in ds.records().windows(2) {
            if w[0].frame != w[1].frame {
                // Distinct (id, payload) implies distinct bit features
                // unless only the DLC differs with zero padding — the
                // encoding is padded, so check id/payload content.
                if w[0].frame.id() != w[1].frame.id()
                    || w[0].frame.data_padded() != w[1].frame.data_padded()
                {
                    prop_assert_ne!(enc.encode(&w[0].frame), enc.encode(&w[1].frame));
                }
            }
        }
    }
}
