//! Property-based tests of capture generation, splitting and the CSV
//! codec.

use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use canids_dataset::csv::{from_csv, to_csv};
use canids_dataset::prelude::*;
use proptest::prelude::*;

fn arb_attack() -> impl Strategy<Value = Option<AttackProfile>> {
    prop_oneof![
        Just(None),
        Just(Some(
            AttackProfile::dos().with_schedule(BurstSchedule::Continuous)
        )),
        Just(Some(
            AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)
        )),
        Just(Some(
            AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous)
        )),
        Just(Some(
            AttackProfile::replay_after(canids_can::time::SimTime::from_millis(10))
                .with_schedule(BurstSchedule::Continuous)
        )),
    ]
}

fn arb_can_id() -> impl Strategy<Value = CanId> {
    prop_oneof![
        (0u32..=0x7FF).prop_map(|id| CanId::standard_from_raw(id).unwrap()),
        (0u32..=0x1FFF_FFFF).prop_map(|id| CanId::extended(id).unwrap()),
    ]
}

/// A fully random record: microsecond-grained timestamp (the CSV format
/// carries 6 fractional digits), any standard or extended identifier,
/// any DLC 0..=8 and payload.
fn arb_record() -> impl Strategy<Value = (u64, CanId, Vec<u8>, bool)> {
    (
        0u64..10_000_000, // whole microseconds, < 10 s
        arb_can_id(),
        proptest::collection::vec(0u8..=255, 0..=8),
        prop_oneof![Just(false), Just(true)],
    )
}

fn arb_attack_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Dos),
        Just(Label::Fuzzy),
        Just(Label::GearSpoof),
        Just(Label::RpmSpoof),
        Just(Label::Replay),
    ]
}

/// Non-saturating profiles safe to overlay without starving each other.
fn arb_overlay_pair() -> impl Strategy<Value = (AttackProfile, AttackProfile)> {
    let light = || {
        prop_oneof![
            Just(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
            Just(AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous)),
            Just(AttackProfile::rpm_spoof().with_schedule(BurstSchedule::Continuous)),
            Just(
                AttackProfile::replay_after(canids_can::time::SimTime::from_millis(10))
                    .with_schedule(BurstSchedule::Continuous)
            ),
        ]
    };
    (light(), light())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn captures_are_deterministic_and_ordered(
        seed in 0u64..1_000,
        attack in arb_attack(),
    ) {
        let mk = || DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(150),
            attack,
            seed,
            ..TrafficConfig::default()
        }).build();
        let a = mk();
        let b = mk();
        prop_assert_eq!(&a, &b, "same seed, same capture");
        for w in a.records().windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn split_partitions_and_preserves_balance(
        seed in 0u64..1_000,
        frac in 0.1f64..0.5,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        }).build();
        let (train, test) = train_test_split(&ds, SplitConfig {
            test_fraction: frac,
            seed,
            stratified: true,
        });
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let d = (train.attack_fraction() - ds.attack_fraction()).abs();
        prop_assert!(d < 0.05, "balance drift {d}");
    }

    #[test]
    fn csv_round_trip_any_capture(seed in 0u64..1_000, attack in arb_attack()) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(120),
            attack,
            seed,
            ..TrafficConfig::default()
        }).build();
        let label = attack.map(|a| a.kind.label()).unwrap_or(Label::Dos);
        let back = from_csv(&to_csv(&ds), label).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            prop_assert_eq!(a.frame, b.frame);
            prop_assert_eq!(a.label.is_attack(), b.label.is_attack());
        }
    }

    #[test]
    fn csv_round_trip_random_records_exactly(
        raw_records in proptest::collection::vec(arb_record(), 0..=80),
        attack_label in arb_attack_label(),
    ) {
        // Arbitrary captures — extended identifiers included — must
        // round-trip to *equal records*: timestamp, frame (IDE flag and
        // all ID bits, DLC, payload) and label.
        let records: Vec<LabeledFrame> = raw_records
            .iter()
            .map(|(us, id, payload, is_attack)| {
                LabeledFrame::new(
                    SimTime::from_micros(*us),
                    CanFrame::new(*id, payload).unwrap(),
                    if *is_attack { attack_label } else { Label::Normal },
                )
            })
            .collect();
        let ds = Dataset::from_records(records);
        let back = from_csv(&to_csv(&ds), attack_label).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            prop_assert_eq!(a, b, "records must round-trip exactly");
        }
    }

    #[test]
    fn paced_stream_preserves_records_at_any_bitrate(
        seed in 0u64..1_000,
        bitrate_kbps in 125u32..=5_000,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(100),
            seed,
            ..TrafficConfig::default()
        }).build();
        let bitrate = canids_can::timing::Bitrate::new(bitrate_kbps * 1_000);
        let paced: Vec<LabeledFrame> = paced_records(&ds, bitrate).collect();
        prop_assert_eq!(paced.len(), ds.len());
        let mut last = SimTime::ZERO;
        for (orig, p) in ds.iter().zip(&paced) {
            prop_assert_eq!(orig.frame, p.frame);
            prop_assert_eq!(orig.label, p.label);
            prop_assert!(p.timestamp > last, "pacing strictly advances");
            last = p.timestamp;
        }
    }

    #[test]
    fn multi_attacker_captures_are_deterministic_and_fully_labelled(
        seed in 0u64..1_000,
        pair in arb_overlay_pair(),
    ) {
        use canids_dataset::generator::multi_attacker;
        let (a, b) = pair;
        let duration = SimTime::from_millis(250);
        let ds = multi_attacker(duration, &[a, b], seed);
        let again = multi_attacker(duration, &[a, b], seed);
        prop_assert_eq!(&ds, &again, "same seed, same overlay capture");
        // Every record carries a label from the mounted set (or Normal),
        // and time order holds across the overlaid attackers.
        let allowed = [Label::Normal, a.kind.label(), b.kind.label()];
        for r in ds.iter() {
            prop_assert!(allowed.contains(&r.label), "unexpected label {}", r.label);
        }
        for w in ds.records().windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
        // Both attackers surface: distinct light profiles cannot starve
        // each other (same-kind pairs just merge their label counts).
        prop_assert!(ds.class_count(a.kind.label()) > 0, "first attacker absent");
        prop_assert!(ds.class_count(b.kind.label()) > 0, "second attacker absent");
    }

    #[test]
    fn replay_frames_were_previously_observed(
        seed in 0u64..1_000,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(250),
            attack: Some(
                AttackProfile::replay_after(SimTime::from_millis(15))
                    .with_schedule(BurstSchedule::Continuous),
            ),
            seed,
            ..TrafficConfig::default()
        })
        .build();
        let mut seen = std::collections::BTreeSet::new();
        let mut replayed = 0usize;
        for r in ds.iter() {
            match r.label {
                Label::Normal => {
                    seen.insert((r.frame.id().raw(), r.frame.data().to_vec()));
                }
                Label::Replay => {
                    replayed += 1;
                    prop_assert!(
                        seen.contains(&(r.frame.id().raw(), r.frame.data().to_vec())),
                        "replayed frame not previously observed: {}",
                        r.frame
                    );
                }
                other => prop_assert!(false, "unexpected label {other}"),
            }
        }
        prop_assert!(replayed > 0, "replay attacker injected nothing");
    }

    #[test]
    fn feature_encoding_is_injective_on_distinct_frames(
        seed in 0u64..1_000,
    ) {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(100),
            seed,
            ..TrafficConfig::default()
        }).build();
        let enc = IdBitsPayloadBits;
        for w in ds.records().windows(2) {
            if w[0].frame != w[1].frame {
                // Distinct (id, payload) implies distinct bit features
                // unless only the DLC differs with zero padding — the
                // encoding is padded, so check id/payload content.
                if w[0].frame.id() != w[1].frame.id()
                    || w[0].frame.data_padded() != w[1].frame.data_padded()
                {
                    prop_assert_ne!(enc.encode(&w[0].frame), enc.encode(&w[1].frame));
                }
            }
        }
    }
}
