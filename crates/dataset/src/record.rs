//! Labelled dataset records.

use std::fmt;

use canids_can::frame::CanFrame;
use canids_can::time::SimTime;
use serde::{Deserialize, Serialize};

/// Ground-truth class of a frame, matching the Car Hacking dataset labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Legitimate vehicle traffic (`R` rows in the published CSVs).
    Normal,
    /// Denial-of-service flood frame (identifier `0x000`).
    Dos,
    /// Fuzzing frame (random identifier and payload).
    Fuzzy,
    /// Forged gear-status frame (spoofing extension).
    GearSpoof,
    /// Forged RPM frame (spoofing extension).
    RpmSpoof,
    /// Re-injected legitimate frame (replay extension): previously seen
    /// identifier and payload, transmitted again after a delay.
    Replay,
}

impl Label {
    /// `true` for any injected (attack) frame.
    pub fn is_attack(self) -> bool {
        !matches!(self, Label::Normal)
    }

    /// Binary class index used by the detectors: 0 = normal, 1 = attack.
    pub fn class_index(self) -> usize {
        usize::from(self.is_attack())
    }

    /// All label variants, in a stable order.
    pub fn all() -> [Label; 6] {
        [
            Label::Normal,
            Label::Dos,
            Label::Fuzzy,
            Label::GearSpoof,
            Label::RpmSpoof,
            Label::Replay,
        ]
    }

    /// The single-letter flag used by the Car-Hacking CSV format
    /// (`R` = regular, `T` = injected).
    pub fn csv_flag(self) -> char {
        if self.is_attack() {
            'T'
        } else {
            'R'
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Label::Normal => "normal",
            Label::Dos => "dos",
            Label::Fuzzy => "fuzzy",
            Label::GearSpoof => "gear-spoof",
            Label::RpmSpoof => "rpm-spoof",
            Label::Replay => "replay",
        };
        f.write_str(name)
    }
}

/// One captured frame with its end-of-frame bus timestamp and ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledFrame {
    /// Bus time at which the frame completed.
    pub timestamp: SimTime,
    /// The frame as observed on the wire.
    pub frame: CanFrame,
    /// Ground-truth class.
    pub label: Label,
}

impl LabeledFrame {
    /// Creates a labelled frame.
    pub fn new(timestamp: SimTime, frame: CanFrame, label: Label) -> Self {
        LabeledFrame {
            timestamp,
            frame,
            label,
        }
    }
}

impl fmt::Display for LabeledFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.timestamp, self.frame, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::frame::{CanFrame, CanId};

    #[test]
    fn attack_labels_are_attacks() {
        assert!(!Label::Normal.is_attack());
        for l in [
            Label::Dos,
            Label::Fuzzy,
            Label::GearSpoof,
            Label::RpmSpoof,
            Label::Replay,
        ] {
            assert!(l.is_attack());
            assert_eq!(l.class_index(), 1);
            assert_eq!(l.csv_flag(), 'T');
        }
        assert_eq!(Label::Normal.class_index(), 0);
        assert_eq!(Label::Normal.csv_flag(), 'R');
    }

    #[test]
    fn all_lists_every_variant_once() {
        let all = Label::all();
        assert_eq!(all.len(), 6);
        let mut seen = std::collections::BTreeSet::new();
        for l in all {
            assert!(seen.insert(format!("{l}")));
        }
    }

    #[test]
    fn display_formats() {
        let f = CanFrame::new(CanId::standard(0x0).unwrap(), &[0; 8]).unwrap();
        let r = LabeledFrame::new(SimTime::from_micros(300), f, Label::Dos);
        let s = r.to_string();
        assert!(s.contains("dos"), "{s}");
        assert!(s.contains("0x000"), "{s}");
    }
}
