//! Car-Hacking CSV serialisation.
//!
//! The published dataset ships as CSV rows of the form
//!
//! ```text
//! timestamp_seconds,can_id_hex,dlc,b0,..,b{dlc-1},flag
//! 1478198376.389427,0316,8,05,21,68,09,21,21,00,6f,R
//! ```
//!
//! where `flag` is `R` for regular traffic and `T` for injected frames.
//! This module writes and parses that format so captures can be exchanged
//! with tooling built for the original dataset.

use std::fmt::Write as _;

use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;

use crate::generator::Dataset;
use crate::record::{Label, LabeledFrame};

/// Errors raised while parsing CSV rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Not enough comma-separated fields.
    MissingField { line: usize },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// The identifier exceeds the 29-bit extended range.
    IdRange { line: usize, id: u32 },
    /// The DLC exceeds the classic-CAN maximum of 8.
    DlcRange { line: usize, dlc: usize },
    /// The flag column was neither `R` nor `T`.
    BadFlag { line: usize },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingField { line } => write!(f, "line {line}: missing field"),
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: invalid number in field {field}")
            }
            CsvError::IdRange { line, id } => {
                write!(f, "line {line}: identifier {id:#X} exceeds 29 bits")
            }
            CsvError::DlcRange { line, dlc } => {
                write!(f, "line {line}: dlc {dlc} exceeds classic-CAN maximum 8")
            }
            CsvError::BadFlag { line } => write!(f, "line {line}: flag must be R or T"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialises a capture to the Car-Hacking CSV format.
///
/// Attack frames are flagged `T`; the specific attack kind is not encoded
/// (the published files carry one attack per capture), so parsing recovers
/// it from the `attack_label` argument of [`from_csv`].
///
/// # Example
///
/// ```
/// use canids_dataset::csv::{from_csv, to_csv};
/// use canids_dataset::prelude::*;
/// use canids_can::time::SimTime;
///
/// # fn main() -> Result<(), canids_dataset::csv::CsvError> {
/// let ds = DatasetBuilder::new(TrafficConfig {
///     duration: SimTime::from_millis(100),
///     ..TrafficConfig::default()
/// })
/// .build();
/// let text = to_csv(&ds);
/// let back = from_csv(&text, Label::Dos)?;
/// assert_eq!(back.len(), ds.len());
/// # Ok(())
/// # }
/// ```
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.len() * 48);
    for r in dataset.iter() {
        // Standard identifiers keep the published 4-digit form; extended
        // identifiers are written as 8 hex digits so the IDE flag and the
        // low 18 bits survive the round trip (the published files carry
        // only 11-bit IDs, so this is a strict extension of the format).
        let id = r.frame.id();
        let _ = write!(out, "{:.6},", r.timestamp.as_secs_f64());
        if id.is_extended() {
            let _ = write!(out, "{:08X}", id.raw());
        } else {
            let _ = write!(out, "{:04X}", id.raw());
        }
        let _ = write!(out, ",{}", r.frame.dlc().value());
        for b in r.frame.data() {
            let _ = write!(out, ",{b:02X}");
        }
        let _ = writeln!(out, ",{}", r.label.csv_flag());
    }
    out
}

/// Parses Car-Hacking CSV text back into a capture; rows flagged `T`
/// receive `attack_label`.
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first malformed row.
pub fn from_csv(text: &str, attack_label: Label) -> Result<Dataset, CsvError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 4 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        let ts: f64 = fields[0].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "timestamp",
        })?;
        let raw_id = u32::from_str_radix(fields[1], 16).map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "id",
        })?;
        // The writer's exact 8-digit form (or a value beyond 11 bits)
        // marks an extended identifier. Other widths with an in-range
        // value stay standard, so zero-padded standard IDs from external
        // tooling (e.g. `00316`) keep their frame identity.
        let id = if fields[1].len() == 8 || raw_id > canids_can::frame::MAX_STANDARD_ID {
            CanId::extended(raw_id).map_err(|_| CsvError::IdRange {
                line: i + 1,
                id: raw_id,
            })?
        } else {
            CanId::standard_from_raw(raw_id).expect("raw_id <= 0x7FF in this branch")
        };
        let dlc: usize = fields[2].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "dlc",
        })?;
        if dlc > 8 {
            return Err(CsvError::DlcRange { line: i + 1, dlc });
        }
        if fields.len() < 3 + dlc + 1 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        let mut payload = [0u8; 8];
        for (j, byte) in payload.iter_mut().enumerate().take(dlc) {
            *byte = u8::from_str_radix(fields[3 + j], 16).map_err(|_| CsvError::BadNumber {
                line: i + 1,
                field: "payload",
            })?;
        }
        let flag = fields[3 + dlc];
        let label = match flag {
            "R" => Label::Normal,
            "T" => attack_label,
            _ => return Err(CsvError::BadFlag { line: i + 1 }),
        };
        let frame = CanFrame::new(id, &payload[..dlc]).expect("dlc <= 8");
        records.push(LabeledFrame::new(SimTime::from_secs_f64(ts), frame, label));
    }
    Ok(Dataset::from_records(records))
}

/// Parses CSV text in the *real* HCRL car-hacking release schema
/// (`Timestamp,ID,DLC,DATA[0..7],Flag`), so externally supplied captures
/// drop into every existing harness.
///
/// The published files differ from the strict [`from_csv`] layout in
/// ways this loader tolerates:
///
/// * an optional header row (`Timestamp,ID,DLC,DATA0,…,Flag`),
/// * identifiers with or without a `0x` prefix,
/// * a **fixed eight** DATA columns regardless of DLC — cells past the
///   DLC may be empty or zero padding and are ignored,
/// * rows without a flag column (the attack-free `normal_run` files),
///   which label as [`Label::Normal`].
///
/// Rows flagged `T` receive `attack_label`, exactly like [`from_csv`].
///
/// # Example
///
/// ```
/// use canids_dataset::csv::from_hcrl_csv;
/// use canids_dataset::record::Label;
///
/// let text = "Timestamp,ID,DLC,DATA0,DATA1,DATA2,DATA3,DATA4,DATA5,DATA6,DATA7,Flag\n\
///             1478198376.389427,0x0316,2,05,21,,,,,,,R\n\
///             1478198376.389500,0000,8,00,00,00,00,00,00,00,00,T\n";
/// let ds = from_hcrl_csv(text, Label::Dos)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.records()[0].frame.dlc().value(), 2);
/// assert_eq!(ds.records()[1].label, Label::Dos);
/// # Ok::<(), canids_dataset::csv::CsvError>(())
/// ```
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first malformed row.
pub fn from_hcrl_csv(text: &str, attack_label: Label) -> Result<Dataset, CsvError> {
    let mut records = Vec::new();
    let mut first_row = true;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 4 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        // Only a literal header row is skipped (first row, first cell
        // named like a timestamp column); a corrupt first data row still
        // errors like every other malformed row.
        let is_header = first_row && fields[0].eq_ignore_ascii_case("timestamp");
        first_row = false;
        if is_header {
            continue;
        }
        let ts: f64 = fields[0].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "timestamp",
        })?;
        let id_text = fields[1]
            .strip_prefix("0x")
            .or_else(|| fields[1].strip_prefix("0X"))
            .unwrap_or(fields[1]);
        let raw_id = u32::from_str_radix(id_text, 16).map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "id",
        })?;
        // Same extended-identifier rule as the strict codec: the exact
        // 8-hex-digit form or a value beyond 11 bits means extended.
        let id = if id_text.len() == 8 || raw_id > canids_can::frame::MAX_STANDARD_ID {
            CanId::extended(raw_id).map_err(|_| CsvError::IdRange {
                line: i + 1,
                id: raw_id,
            })?
        } else {
            CanId::standard_from_raw(raw_id).expect("raw_id <= 0x7FF in this branch")
        };
        let dlc: usize = fields[2].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "dlc",
        })?;
        if dlc > 8 {
            return Err(CsvError::DlcRange { line: i + 1, dlc });
        }
        // Flags are `R`/`T`; data bytes are hex, so the two cannot
        // collide and the trailing column is unambiguous. Rows without a
        // flag (normal_run files) default to regular traffic.
        let (data_fields, label) = match *fields.last().expect("len checked >= 4") {
            "R" => (&fields[3..fields.len() - 1], Label::Normal),
            "T" => (&fields[3..fields.len() - 1], attack_label),
            _ => (&fields[3..], Label::Normal),
        };
        // Either exactly DLC data columns, or the release's fixed eight.
        if data_fields.len() != dlc && data_fields.len() != 8 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        let mut payload = [0u8; 8];
        for (j, byte) in payload.iter_mut().enumerate().take(dlc) {
            *byte = u8::from_str_radix(data_fields[j], 16).map_err(|_| CsvError::BadNumber {
                line: i + 1,
                field: "payload",
            })?;
        }
        let frame = CanFrame::new(id, &payload[..dlc]).expect("dlc <= 8");
        records.push(LabeledFrame::new(SimTime::from_secs_f64(ts), frame, label));
    }
    Ok(Dataset::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::generator::{DatasetBuilder, TrafficConfig};

    fn capture() -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(150),
            attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed: 31,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn round_trip_preserves_frames_and_flags() {
        let ds = capture();
        let text = to_csv(&ds);
        let back = from_csv(&text, Label::Dos).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.label.is_attack(), b.label.is_attack());
            // Timestamps round-trip to microsecond precision.
            let da = a.timestamp.as_secs_f64();
            let db = b.timestamp.as_secs_f64();
            assert!((da - db).abs() < 2e-6, "{da} vs {db}");
        }
    }

    #[test]
    fn csv_rows_have_expected_shape() {
        let ds = capture();
        let text = to_csv(&ds);
        let first = text.lines().next().unwrap();
        let fields: Vec<&str> = first.split(',').collect();
        let dlc: usize = fields[2].parse().unwrap();
        assert_eq!(fields.len(), 3 + dlc + 1);
        assert!(fields.last() == Some(&"R") || fields.last() == Some(&"T"));
    }

    #[test]
    fn bad_rows_are_rejected() {
        assert_eq!(
            from_csv("1.0,0316", Label::Dos).unwrap_err(),
            CsvError::MissingField { line: 1 }
        );
        assert_eq!(
            from_csv("x,0316,0,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "timestamp"
            }
        );
        assert_eq!(
            from_csv("1.0,ZZZZ,0,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "id"
            }
        );
        assert_eq!(
            from_csv("1.0,0316,0,X", Label::Dos).unwrap_err(),
            CsvError::BadFlag { line: 1 }
        );
    }

    #[test]
    fn extended_ids_round_trip_losslessly() {
        use crate::record::LabeledFrame;

        // A low 18-bit tail and a base-ID collision with a standard frame:
        // both distinctions must survive the round trip.
        let ext = CanFrame::new(CanId::extended(0x0C5_4321).unwrap(), &[0xAB, 0xCD]).unwrap();
        let ext_small = CanFrame::new(CanId::extended(0x316).unwrap(), &[]).unwrap();
        let std_frame = CanFrame::new(CanId::standard(0x316).unwrap(), &[1]).unwrap();
        let ds = Dataset::from_records(vec![
            LabeledFrame::new(SimTime::from_micros(100), ext, Label::Normal),
            LabeledFrame::new(SimTime::from_micros(200), ext_small, Label::Dos),
            LabeledFrame::new(SimTime::from_micros(300), std_frame, Label::Normal),
        ]);
        let text = to_csv(&ds);
        let back = from_csv(&text, Label::Dos).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in ds.iter().zip(back.iter()) {
            assert_eq!(a.frame, b.frame, "IDE flag and all 29 bits preserved");
            assert_eq!(a.label, b.label);
            assert_eq!(a.timestamp, b.timestamp);
        }
        // An extended ID that fits 11 bits still parses as extended.
        assert!(back.records()[1].frame.id().is_extended());
        assert!(back.records()[2].frame.id().is_standard());
    }

    #[test]
    fn out_of_range_id_and_dlc_rejected() {
        assert_eq!(
            from_csv("1.0,FFFFFFFF,0,R", Label::Dos).unwrap_err(),
            CsvError::IdRange {
                line: 1,
                id: 0xFFFF_FFFF
            }
        );
        assert_eq!(
            from_csv("1.0,0316,9,00,00,00,00,00,00,00,00,00,R", Label::Dos).unwrap_err(),
            CsvError::DlcRange { line: 1, dlc: 9 }
        );
        // A 4-digit field beyond 0x7FF is an extended identifier, not a
        // silently masked standard one.
        let ds = from_csv("1.0,0FFF,0,R", Label::Dos).unwrap();
        assert_eq!(ds.records()[0].frame.id(), CanId::extended(0xFFF).unwrap());
    }

    #[test]
    fn zero_padded_standard_ids_stay_standard() {
        // External tooling sometimes zero-pads standard IDs beyond four
        // digits; only the writer's exact 8-digit form means extended.
        let ds = from_csv("1.0,00316,1,AA,R", Label::Dos).unwrap();
        assert_eq!(ds.records()[0].frame.id(), CanId::standard(0x316).unwrap());
        let ds8 = from_csv("1.0,00000316,1,AA,R", Label::Dos).unwrap();
        assert_eq!(ds8.records()[0].frame.id(), CanId::extended(0x316).unwrap());
    }

    #[test]
    fn empty_lines_skipped() {
        let ds = from_csv("\n\n1.0,0316,2,AA,BB,R\n\n", Label::Fuzzy).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.records()[0].frame.data(), &[0xAA, 0xBB]);
    }

    #[test]
    fn attack_label_is_applied_to_t_rows() {
        let ds = from_csv("1.0,0000,8,00,00,00,00,00,00,00,00,T", Label::Fuzzy).unwrap();
        assert_eq!(ds.records()[0].label, Label::Fuzzy);
    }

    #[test]
    fn hcrl_loader_accepts_the_release_schema() {
        // Header, 0x-prefixed id, fixed eight DATA columns with empty
        // padding past the DLC, R/T flags.
        let text = "Timestamp,ID,DLC,DATA0,DATA1,DATA2,DATA3,DATA4,DATA5,DATA6,DATA7,Flag\n\
                    1478198376.389427,0x0316,8,05,21,68,09,21,21,00,6F,R\n\
                    1478198376.389636,0x018F,2,FE,5B,,,,,,,R\n\
                    1478198376.389864,0000,8,00,00,00,00,00,00,00,00,T\n";
        let ds = from_hcrl_csv(text, Label::Dos).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.records()[0].frame.id(), CanId::standard(0x316).unwrap());
        assert_eq!(ds.records()[0].frame.data()[7], 0x6F);
        assert_eq!(ds.records()[1].frame.dlc().value(), 2);
        assert_eq!(ds.records()[1].frame.data(), &[0xFE, 0x5B]);
        assert_eq!(ds.records()[1].label, Label::Normal);
        assert_eq!(ds.records()[2].label, Label::Dos);
        // Timestamps preserved to microsecond precision.
        let dt = ds.records()[1].timestamp.as_secs_f64() - ds.records()[0].timestamp.as_secs_f64();
        assert!((dt - 0.000209).abs() < 2e-6, "{dt}");
    }

    #[test]
    fn hcrl_loader_defaults_flagless_rows_to_normal() {
        // normal_run files carry no flag column at all.
        let text = "1.0,0316,3,05,21,68\n2.0,043F,8,01,45,60,FF,65,00,00,00\n";
        let ds = from_hcrl_csv(text, Label::Fuzzy).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|r| r.label == Label::Normal));
        assert_eq!(ds.records()[0].frame.dlc().value(), 3);
        assert_eq!(ds.records()[1].frame.dlc().value(), 8);
    }

    #[test]
    fn hcrl_loader_parses_the_strict_writer_format_identically() {
        // Our own writer's output is a subset of what the tolerant
        // loader accepts: both parsers must agree record for record.
        let ds = capture();
        let text = to_csv(&ds);
        let strict = from_csv(&text, Label::Dos).unwrap();
        let tolerant = from_hcrl_csv(&text, Label::Dos).unwrap();
        assert_eq!(strict.len(), tolerant.len());
        for (a, b) in strict.iter().zip(tolerant.iter()) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.label, b.label);
            assert_eq!(a.timestamp, b.timestamp);
        }
    }

    #[test]
    fn hcrl_loader_only_skips_a_literal_header() {
        // A corrupt first data row is not mistaken for a header: it
        // errors like any other malformed row.
        assert_eq!(
            from_hcrl_csv("garbage,0316,2,AA,BB,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "timestamp"
            }
        );
        // Case-insensitive header token.
        let ds = from_hcrl_csv("TIMESTAMP,ID,DLC,Flag\n1.0,0316,0,R", Label::Dos).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn hcrl_loader_rejects_malformed_rows() {
        // Bad rows after the (single) tolerated header still error.
        assert_eq!(
            from_hcrl_csv("Timestamp,ID,DLC,Flag\nnot-a-time,0316,0,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 2,
                field: "timestamp"
            }
        );
        assert_eq!(
            from_hcrl_csv("1.0,0316,9,00,00,00,00,00,00,00,00,00,R", Label::Dos).unwrap_err(),
            CsvError::DlcRange { line: 1, dlc: 9 }
        );
        // Neither DLC-many nor eight data columns.
        assert_eq!(
            from_hcrl_csv("1.0,0316,4,AA,BB,R", Label::Dos).unwrap_err(),
            CsvError::MissingField { line: 1 }
        );
        // A required (below-DLC) cell left empty is a payload error, not
        // silent zero-fill.
        assert_eq!(
            from_hcrl_csv("1.0,0316,3,AA,,CC,,,,,,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "payload"
            }
        );
        assert_eq!(
            from_hcrl_csv("1.0,FFFFFFFF,0,R", Label::Dos).unwrap_err(),
            CsvError::IdRange {
                line: 1,
                id: 0xFFFF_FFFF
            }
        );
    }

    #[test]
    fn hcrl_loader_keeps_extended_id_rule() {
        let ds = from_hcrl_csv("1.0,0x00000316,1,AA,R", Label::Dos).unwrap();
        assert_eq!(ds.records()[0].frame.id(), CanId::extended(0x316).unwrap());
        let ds2 = from_hcrl_csv("1.0,0FFF,0,R", Label::Dos).unwrap();
        assert_eq!(ds2.records()[0].frame.id(), CanId::extended(0xFFF).unwrap());
    }
}
