//! Car-Hacking CSV serialisation.
//!
//! The published dataset ships as CSV rows of the form
//!
//! ```text
//! timestamp_seconds,can_id_hex,dlc,b0,..,b{dlc-1},flag
//! 1478198376.389427,0316,8,05,21,68,09,21,21,00,6f,R
//! ```
//!
//! where `flag` is `R` for regular traffic and `T` for injected frames.
//! This module writes and parses that format so captures can be exchanged
//! with tooling built for the original dataset.

use std::fmt::Write as _;

use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;

use crate::generator::Dataset;
use crate::record::{Label, LabeledFrame};

/// Errors raised while parsing CSV rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Not enough comma-separated fields.
    MissingField { line: usize },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// The flag column was neither `R` nor `T`.
    BadFlag { line: usize },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingField { line } => write!(f, "line {line}: missing field"),
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: invalid number in field {field}")
            }
            CsvError::BadFlag { line } => write!(f, "line {line}: flag must be R or T"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialises a capture to the Car-Hacking CSV format.
///
/// Attack frames are flagged `T`; the specific attack kind is not encoded
/// (the published files carry one attack per capture), so parsing recovers
/// it from the `attack_label` argument of [`from_csv`].
///
/// # Example
///
/// ```
/// use canids_dataset::csv::{from_csv, to_csv};
/// use canids_dataset::prelude::*;
/// use canids_can::time::SimTime;
///
/// # fn main() -> Result<(), canids_dataset::csv::CsvError> {
/// let ds = DatasetBuilder::new(TrafficConfig {
///     duration: SimTime::from_millis(100),
///     ..TrafficConfig::default()
/// })
/// .build();
/// let text = to_csv(&ds);
/// let back = from_csv(&text, Label::Dos)?;
/// assert_eq!(back.len(), ds.len());
/// # Ok(())
/// # }
/// ```
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.len() * 48);
    for r in dataset.iter() {
        let _ = write!(
            out,
            "{:.6},{:04X},{}",
            r.timestamp.as_secs_f64(),
            r.frame.id().raw(),
            r.frame.dlc().value()
        );
        for b in r.frame.data() {
            let _ = write!(out, ",{b:02X}");
        }
        let _ = writeln!(out, ",{}", r.label.csv_flag());
    }
    out
}

/// Parses Car-Hacking CSV text back into a capture; rows flagged `T`
/// receive `attack_label`.
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first malformed row.
pub fn from_csv(text: &str, attack_label: Label) -> Result<Dataset, CsvError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 4 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        let ts: f64 = fields[0].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "timestamp",
        })?;
        let id = u16::from_str_radix(fields[1], 16).map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "id",
        })?;
        let dlc: usize = fields[2].parse().map_err(|_| CsvError::BadNumber {
            line: i + 1,
            field: "dlc",
        })?;
        if fields.len() < 3 + dlc + 1 {
            return Err(CsvError::MissingField { line: i + 1 });
        }
        let mut payload = [0u8; 8];
        for (j, byte) in payload.iter_mut().enumerate().take(dlc.min(8)) {
            *byte = u8::from_str_radix(fields[3 + j], 16).map_err(|_| CsvError::BadNumber {
                line: i + 1,
                field: "payload",
            })?;
        }
        let flag = fields[3 + dlc.min(8)];
        let label = match flag {
            "R" => Label::Normal,
            "T" => attack_label,
            _ => return Err(CsvError::BadFlag { line: i + 1 }),
        };
        let frame = CanFrame::new(
            CanId::standard(id & 0x7FF).expect("masked to 11 bits"),
            &payload[..dlc.min(8)],
        )
        .expect("dlc <= 8");
        records.push(LabeledFrame::new(SimTime::from_secs_f64(ts), frame, label));
    }
    Ok(Dataset::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::generator::{DatasetBuilder, TrafficConfig};

    fn capture() -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(150),
            attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed: 31,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn round_trip_preserves_frames_and_flags() {
        let ds = capture();
        let text = to_csv(&ds);
        let back = from_csv(&text, Label::Dos).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(back.iter()) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.label.is_attack(), b.label.is_attack());
            // Timestamps round-trip to microsecond precision.
            let da = a.timestamp.as_secs_f64();
            let db = b.timestamp.as_secs_f64();
            assert!((da - db).abs() < 2e-6, "{da} vs {db}");
        }
    }

    #[test]
    fn csv_rows_have_expected_shape() {
        let ds = capture();
        let text = to_csv(&ds);
        let first = text.lines().next().unwrap();
        let fields: Vec<&str> = first.split(',').collect();
        let dlc: usize = fields[2].parse().unwrap();
        assert_eq!(fields.len(), 3 + dlc + 1);
        assert!(fields.last() == Some(&"R") || fields.last() == Some(&"T"));
    }

    #[test]
    fn bad_rows_are_rejected() {
        assert_eq!(
            from_csv("1.0,0316", Label::Dos).unwrap_err(),
            CsvError::MissingField { line: 1 }
        );
        assert_eq!(
            from_csv("x,0316,0,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "timestamp"
            }
        );
        assert_eq!(
            from_csv("1.0,ZZZZ,0,R", Label::Dos).unwrap_err(),
            CsvError::BadNumber {
                line: 1,
                field: "id"
            }
        );
        assert_eq!(
            from_csv("1.0,0316,0,X", Label::Dos).unwrap_err(),
            CsvError::BadFlag { line: 1 }
        );
    }

    #[test]
    fn empty_lines_skipped() {
        let ds = from_csv("\n\n1.0,0316,2,AA,BB,R\n\n", Label::Fuzzy).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.records()[0].frame.data(), &[0xAA, 0xBB]);
    }

    #[test]
    fn attack_label_is_applied_to_t_rows() {
        let ds = from_csv("1.0,0000,8,00,00,00,00,00,00,00,00,T", Label::Fuzzy).unwrap();
        assert_eq!(ds.records()[0].label, Label::Fuzzy);
    }
}
