//! Capture statistics: class balance, identifier census, inter-arrival
//! behaviour — the sanity checks run before training.

use std::collections::BTreeMap;
use std::fmt;

use canids_can::time::SimTime;

use crate::generator::Dataset;
use crate::record::Label;

/// Aggregate statistics of a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total record count.
    pub total: usize,
    /// Record count per label.
    pub per_label: BTreeMap<String, usize>,
    /// Distinct identifiers seen.
    pub distinct_ids: usize,
    /// Capture span (first to last timestamp).
    pub span: SimTime,
    /// Mean frame rate over the span, frames/second.
    pub mean_rate_hz: f64,
    /// Mean inter-arrival time between consecutive frames.
    pub mean_inter_arrival: SimTime,
    /// Frames per identifier.
    pub per_id: BTreeMap<u32, usize>,
}

impl DatasetStats {
    /// Computes statistics over a capture.
    ///
    /// # Example
    ///
    /// ```
    /// use canids_dataset::prelude::*;
    /// use canids_can::time::SimTime;
    ///
    /// let ds = DatasetBuilder::new(TrafficConfig {
    ///     duration: SimTime::from_millis(200),
    ///     ..TrafficConfig::default()
    /// })
    /// .build();
    /// let stats = DatasetStats::of(&ds);
    /// assert_eq!(stats.total, ds.len());
    /// assert!(stats.mean_rate_hz > 100.0);
    /// ```
    pub fn of(dataset: &Dataset) -> Self {
        let total = dataset.len();
        let mut per_label = BTreeMap::new();
        for label in Label::all() {
            let n = dataset.class_count(label);
            if n > 0 {
                per_label.insert(label.to_string(), n);
            }
        }
        let mut per_id: BTreeMap<u32, usize> = BTreeMap::new();
        for r in dataset.iter() {
            *per_id.entry(r.frame.id().raw()).or_insert(0) += 1;
        }
        let span = match (dataset.records().first(), dataset.records().last()) {
            (Some(first), Some(last)) => last.timestamp.saturating_sub(first.timestamp),
            _ => SimTime::ZERO,
        };
        let mean_rate_hz = if span > SimTime::ZERO && total > 1 {
            (total - 1) as f64 / span.as_secs_f64()
        } else {
            0.0
        };
        let mean_inter_arrival = if total > 1 {
            SimTime::from_nanos(span.as_nanos() / (total as u64 - 1))
        } else {
            SimTime::ZERO
        };
        DatasetStats {
            total,
            per_label,
            distinct_ids: per_id.len(),
            span,
            mean_rate_hz,
            mean_inter_arrival,
            per_id,
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} frames over {} ({:.0} frames/s, {} ids)",
            self.total, self.span, self.mean_rate_hz, self.distinct_ids
        )?;
        for (label, n) in &self.per_label {
            writeln!(
                f,
                "  {label:>10}: {n:>8} ({:.2}%)",
                100.0 * *n as f64 / self.total.max(1) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::generator::{DatasetBuilder, TrafficConfig};

    fn capture(attack: Option<AttackProfile>) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            attack,
            seed: 21,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn totals_and_labels_consistent() {
        let ds = capture(Some(
            AttackProfile::dos().with_schedule(BurstSchedule::Continuous),
        ));
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.total, ds.len());
        let sum: usize = stats.per_label.values().sum();
        assert_eq!(sum, ds.len());
        assert!(stats.per_label.contains_key("dos"));
        assert!(stats.per_label.contains_key("normal"));
    }

    #[test]
    fn id_census_covers_catalogue() {
        let ds = capture(None);
        let stats = DatasetStats::of(&ds);
        assert!(stats.distinct_ids >= 15, "ids = {}", stats.distinct_ids);
        let sum: usize = stats.per_id.values().sum();
        assert_eq!(sum, stats.total);
    }

    #[test]
    fn rate_reflects_catalogue() {
        let ds = capture(None);
        let stats = DatasetStats::of(&ds);
        assert!(
            stats.mean_rate_hz > 400.0 && stats.mean_rate_hz < 3_000.0,
            "rate = {}",
            stats.mean_rate_hz
        );
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let stats = DatasetStats::of(&Dataset::default());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.mean_rate_hz, 0.0);
        assert_eq!(stats.span, SimTime::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        let ds = capture(None);
        let s = DatasetStats::of(&ds).to_string();
        assert!(s.contains("frames over"));
        assert!(s.contains("normal"));
    }
}
