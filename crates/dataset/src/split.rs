//! Seeded, stratified train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::generator::Dataset;
use crate::record::LabeledFrame;

/// Split parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Fraction of records assigned to the test set (0..1).
    pub test_fraction: f64,
    /// Shuffle/assignment seed.
    pub seed: u64,
    /// Stratify by binary class so both splits keep the capture's
    /// attack/normal balance.
    pub stratified: bool,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            test_fraction: 0.25,
            seed: 0x5EED,
            stratified: true,
        }
    }
}

/// Splits a capture into train and test datasets.
///
/// With `stratified = true` (the default) the attack/normal ratio of both
/// splits matches the input to within one record per class.
///
/// # Example
///
/// ```
/// use canids_dataset::prelude::*;
/// use canids_can::time::SimTime;
///
/// let ds = DatasetBuilder::new(TrafficConfig {
///     duration: SimTime::from_millis(200),
///     attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
///     ..TrafficConfig::default()
/// })
/// .build();
/// let (train, test) = train_test_split(&ds, SplitConfig::default());
/// assert_eq!(train.len() + test.len(), ds.len());
/// assert!((train.attack_fraction() - test.attack_fraction()).abs() < 0.05);
/// ```
pub fn train_test_split(dataset: &Dataset, config: SplitConfig) -> (Dataset, Dataset) {
    let frac = config.test_fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let split_group =
        |group: Vec<&LabeledFrame>, rng: &mut StdRng| -> (Vec<LabeledFrame>, Vec<LabeledFrame>) {
            let mut group: Vec<LabeledFrame> = group.into_iter().copied().collect();
            group.shuffle(rng);
            let n_test = (group.len() as f64 * frac).round() as usize;
            let test = group.split_off(group.len() - n_test.min(group.len()));
            (group, test)
        };

    let (mut train, mut test) = if config.stratified {
        let normal: Vec<&LabeledFrame> = dataset.iter().filter(|r| !r.label.is_attack()).collect();
        let attack: Vec<&LabeledFrame> = dataset.iter().filter(|r| r.label.is_attack()).collect();
        let (mut train_n, mut test_n) = split_group(normal, &mut rng);
        let (train_a, test_a) = split_group(attack, &mut rng);
        train_n.extend(train_a);
        test_n.extend(test_a);
        (train_n, test_n)
    } else {
        split_group(dataset.iter().collect(), &mut rng)
    };

    train.sort_by_key(|r| r.timestamp);
    test.sort_by_key(|r| r.timestamp);
    (Dataset::from_records(train), Dataset::from_records(test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::generator::{DatasetBuilder, TrafficConfig};
    use crate::record::Label;
    use canids_can::time::SimTime;

    fn dataset() -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed: 11,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn split_partitions_every_record() {
        let ds = dataset();
        let (train, test) = train_test_split(&ds, SplitConfig::default());
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    fn stratified_split_preserves_balance() {
        let ds = dataset();
        let (train, test) = train_test_split(&ds, SplitConfig::default());
        let base = ds.attack_fraction();
        assert!((train.attack_fraction() - base).abs() < 0.02);
        assert!((test.attack_fraction() - base).abs() < 0.02);
    }

    #[test]
    fn test_fraction_respected() {
        let ds = dataset();
        for frac in [0.1, 0.25, 0.5] {
            let (_, test) = train_test_split(
                &ds,
                SplitConfig {
                    test_fraction: frac,
                    ..SplitConfig::default()
                },
            );
            let actual = test.len() as f64 / ds.len() as f64;
            assert!((actual - frac).abs() < 0.02, "frac {frac} got {actual}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let ds = dataset();
        let (a_train, a_test) = train_test_split(&ds, SplitConfig::default());
        let (b_train, b_test) = train_test_split(&ds, SplitConfig::default());
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        let (c_train, _) = train_test_split(
            &ds,
            SplitConfig {
                seed: 999,
                ..SplitConfig::default()
            },
        );
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn splits_are_disjoint_by_count() {
        // Same (timestamp, frame, label) triple may legitimately never
        // repeat, so per-class counts must add up exactly.
        let ds = dataset();
        let (train, test) = train_test_split(&ds, SplitConfig::default());
        for label in Label::all() {
            assert_eq!(
                train.class_count(label) + test.class_count(label),
                ds.class_count(label)
            );
        }
    }

    #[test]
    fn unstratified_split_also_partitions() {
        let ds = dataset();
        let (train, test) = train_test_split(
            &ds,
            SplitConfig {
                stratified: false,
                ..SplitConfig::default()
            },
        );
        assert_eq!(train.len() + test.len(), ds.len());
    }

    #[test]
    fn extreme_fractions() {
        let ds = dataset();
        let (train, test) = train_test_split(
            &ds,
            SplitConfig {
                test_fraction: 0.0,
                ..SplitConfig::default()
            },
        );
        assert_eq!(test.len(), 0);
        assert_eq!(train.len(), ds.len());
        let (train, test) = train_test_split(
            &ds,
            SplitConfig {
                test_fraction: 1.0,
                ..SplitConfig::default()
            },
        );
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), ds.len());
    }
}
