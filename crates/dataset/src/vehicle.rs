//! Synthetic vehicle traffic model.
//!
//! Production cars broadcast a fixed catalogue of periodic CAN messages.
//! Payload bytes follow recognisable idioms: 4-bit *alive counters*, XOR
//! *checksum* bytes, big-endian sensor values that random-walk within a
//! physical range, and slowly toggling flag bytes. The Car Hacking capture
//! (a Hyundai YF Sonata) shows exactly this structure, and it is what a
//! per-frame IDS learns as "normal".
//!
//! [`VehicleModel::sonata`] provides a ~20-message catalogue with the same
//! identifier spread and bus load shape as the published capture. The
//! model splits into several [`VehicleSource`]s (one per transmitting ECU)
//! so bus arbitration between ECUs is exercised realistically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use canids_can::bus::TrafficSource;
use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A payload byte idiom within a periodic message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Signal {
    /// A counter in the low bits of `byte`, incremented each transmission
    /// modulo `modulus` (the classic automotive alive counter).
    AliveCounter {
        /// Payload byte index.
        byte: usize,
        /// Counter modulus (16 for a nibble counter).
        modulus: u8,
    },
    /// Big-endian 16-bit sensor value at `byte_hi..=byte_hi+1` performing
    /// a bounded random walk.
    RandomWalk {
        /// Index of the high byte.
        byte_hi: usize,
        /// Inclusive lower bound of the physical value.
        min: u16,
        /// Inclusive upper bound of the physical value.
        max: u16,
        /// Maximum per-transmission step.
        max_step: u16,
    },
    /// Flag bits in `byte & mask` that toggle every `period_frames`
    /// transmissions.
    ToggleFlags {
        /// Payload byte index.
        byte: usize,
        /// Bits that toggle.
        mask: u8,
        /// Toggle period in transmissions.
        period_frames: u32,
    },
    /// XOR checksum of all other payload bytes stored into `byte`
    /// (applied after every other signal).
    ChecksumXor {
        /// Payload byte index receiving the checksum.
        byte: usize,
    },
}

/// Static description of one periodic message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSpec {
    /// 11-bit identifier.
    pub id: u16,
    /// Nominal transmission period.
    pub period: SimTime,
    /// Uniform release jitter as a fraction of the period (e.g. `0.02`).
    pub jitter_frac: f64,
    /// Data length code (payload bytes).
    pub dlc: u8,
    /// Base payload; signals mutate it per transmission.
    pub base: [u8; 8],
    /// Payload byte idioms.
    pub signals: Vec<Signal>,
}

impl MessageSpec {
    /// Creates a spec with no signals (constant payload).
    pub fn constant(id: u16, period: SimTime, dlc: u8, base: [u8; 8]) -> Self {
        MessageSpec {
            id,
            period,
            jitter_frac: 0.02,
            dlc,
            base,
            signals: Vec::new(),
        }
    }

    /// Adds a signal to the spec (builder style).
    pub fn with_signal(mut self, signal: Signal) -> Self {
        self.signals.push(signal);
        self
    }
}

/// The whole-vehicle message catalogue.
///
/// # Example
///
/// ```
/// use canids_dataset::vehicle::VehicleModel;
///
/// let model = VehicleModel::sonata();
/// assert!(model.specs().len() >= 18);
/// assert!(model.message_ids().contains(&0x316)); // engine RPM
/// // Aggregate rate is in the ballpark of a real capture (~1 kframe/s).
/// let rate = model.aggregate_rate_hz();
/// assert!(rate > 500.0 && rate < 2500.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleModel {
    specs: Vec<MessageSpec>,
}

impl VehicleModel {
    /// Builds a model from explicit message specs.
    pub fn new(specs: Vec<MessageSpec>) -> Self {
        VehicleModel { specs }
    }

    /// The default catalogue, shaped after the Car-Hacking capture vehicle
    /// (identifier spread 0x130..0x5A0, fast powertrain messages at 10 ms,
    /// body/comfort messages at 100 ms+).
    pub fn sonata() -> Self {
        use Signal::*;
        let ms = SimTime::from_millis;
        let specs = vec![
            // Powertrain, 10 ms.
            MessageSpec::constant(0x316, ms(10), 8, [0x05, 0x20, 0, 0, 0x10, 0x27, 0x00, 0x7F])
                .with_signal(RandomWalk {
                    byte_hi: 2,
                    min: 600,
                    max: 6500,
                    max_step: 60,
                })
                .with_signal(AliveCounter {
                    byte: 6,
                    modulus: 16,
                })
                .with_signal(ChecksumXor { byte: 7 }),
            MessageSpec::constant(
                0x43F,
                ms(10),
                8,
                [0x01, 0x45, 0x60, 0xFF, 0x65, 0x00, 0x00, 0x00],
            )
            .with_signal(ToggleFlags {
                byte: 0,
                mask: 0x0F,
                period_frames: 180,
            })
            .with_signal(AliveCounter {
                byte: 5,
                modulus: 16,
            }),
            MessageSpec::constant(
                0x260,
                ms(10),
                8,
                [0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 0,
                min: 0,
                max: 28000,
                max_step: 120,
            })
            .with_signal(AliveCounter {
                byte: 6,
                modulus: 16,
            })
            .with_signal(ChecksumXor { byte: 7 }),
            MessageSpec::constant(
                0x2C0,
                ms(10),
                8,
                [0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 1,
                min: 0,
                max: 255 * 16,
                max_step: 40,
            }),
            MessageSpec::constant(0x130, ms(10), 6, [0x08, 0x80, 0x00, 0xFF, 0x00, 0x00, 0, 0])
                .with_signal(RandomWalk {
                    byte_hi: 1,
                    min: 0x7000,
                    max: 0x9000,
                    max_step: 48,
                })
                .with_signal(AliveCounter {
                    byte: 4,
                    modulus: 16,
                }),
            MessageSpec::constant(0x140, ms(10), 8, [0x00; 8])
                .with_signal(RandomWalk {
                    byte_hi: 0,
                    min: 0,
                    max: 0x3FFF,
                    max_step: 30,
                })
                .with_signal(AliveCounter {
                    byte: 3,
                    modulus: 4,
                })
                .with_signal(ChecksumXor { byte: 7 }),
            // Chassis, 20 ms.
            MessageSpec::constant(
                0x153,
                ms(20),
                8,
                [0x00, 0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 2,
                min: 0,
                max: 1024,
                max_step: 12,
            })
            .with_signal(ChecksumXor { byte: 6 }),
            MessageSpec::constant(
                0x164,
                ms(20),
                8,
                [0x00, 0x00, 0x00, 0x0C, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(ToggleFlags {
                byte: 0,
                mask: 0x03,
                period_frames: 64,
            }),
            MessageSpec::constant(
                0x18F,
                ms(20),
                8,
                [0xFE, 0x3B, 0x00, 0x00, 0x00, 0x3C, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 2,
                min: 0,
                max: 4000,
                max_step: 24,
            }),
            MessageSpec::constant(0x220, ms(20), 8, [0x00; 8])
                .with_signal(RandomWalk {
                    byte_hi: 0,
                    min: 0x1000,
                    max: 0x2000,
                    max_step: 8,
                })
                .with_signal(RandomWalk {
                    byte_hi: 4,
                    min: 0x1000,
                    max: 0x2000,
                    max_step: 8,
                }),
            // Body, 50 ms.
            MessageSpec::constant(
                0x2A0,
                ms(50),
                8,
                [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 0,
                min: 0,
                max: 0xFF0,
                max_step: 16,
            })
            .with_signal(AliveCounter {
                byte: 5,
                modulus: 16,
            }),
            MessageSpec::constant(
                0x329,
                ms(50),
                8,
                [0x40, 0x8A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 2,
                min: 0x40,
                max: 0xD0,
                max_step: 1,
            }),
            MessageSpec::constant(
                0x350,
                ms(50),
                8,
                [0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(ToggleFlags {
                byte: 2,
                mask: 0xC0,
                period_frames: 25,
            }),
            // Comfort / instrumentation, 100 ms.
            MessageSpec::constant(
                0x370,
                ms(100),
                8,
                [0x00, 0x00, 0x20, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(ToggleFlags {
                byte: 0,
                mask: 0x01,
                period_frames: 10,
            }),
            MessageSpec::constant(
                0x382,
                ms(100),
                8,
                [0x22, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 1,
                min: 0,
                max: 200,
                max_step: 2,
            }),
            MessageSpec::constant(
                0x430,
                ms(100),
                8,
                [0x00, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
            ),
            // Slow diagnostics / gateway.
            MessageSpec::constant(0x4B1, ms(200), 8, [0x00; 8]).with_signal(AliveCounter {
                byte: 0,
                modulus: 255,
            }),
            MessageSpec::constant(
                0x545,
                ms(200),
                8,
                [0xD8, 0x00, 0x00, 0x8B, 0x00, 0x00, 0x00, 0x00],
            )
            .with_signal(RandomWalk {
                byte_hi: 1,
                min: 0,
                max: 0xFFF0,
                max_step: 4,
            }),
            MessageSpec::constant(
                0x5A0,
                ms(500),
                8,
                [0x00, 0x00, 0x00, 0x00, 0x00, 0x50, 0x00, 0x00],
            )
            .with_signal(ToggleFlags {
                byte: 6,
                mask: 0xFF,
                period_frames: 2,
            }),
            MessageSpec::constant(0x34A, ms(500), 4, [0x0A, 0x00, 0x00, 0x00, 0, 0, 0, 0]),
        ];
        VehicleModel { specs }
    }

    /// The message catalogue.
    pub fn specs(&self) -> &[MessageSpec] {
        &self.specs
    }

    /// All legitimate identifiers broadcast by the vehicle, sorted.
    pub fn message_ids(&self) -> Vec<u16> {
        let mut ids: Vec<u16> = self.specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Aggregate frame rate of the catalogue in frames/second.
    pub fn aggregate_rate_hz(&self) -> f64 {
        self.specs
            .iter()
            .map(|s| 1.0 / s.period.as_secs_f64())
            // lint:allow(float-reassociation): left-to-right sum over the fixed catalogue order; no qnn dep here
            .sum()
    }

    /// Partitions the catalogue into `nodes` transmitting ECUs
    /// (round-robin by spec order) and builds a seeded [`VehicleSource`]
    /// for each.
    pub fn into_sources(self, nodes: usize, seed: u64) -> Vec<VehicleSource> {
        let nodes = nodes.max(1);
        let mut groups: Vec<Vec<MessageSpec>> = vec![Vec::new(); nodes];
        for (i, spec) in self.specs.into_iter().enumerate() {
            groups[i % nodes].push(spec);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, g)| {
                VehicleSource::new(
                    g,
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect()
    }
}

impl Default for VehicleModel {
    fn default() -> Self {
        VehicleModel::sonata()
    }
}

/// Per-message mutable generation state.
#[derive(Debug, Clone)]
struct MessageState {
    spec: MessageSpec,
    counter_values: Vec<u32>,
    walk_values: Vec<u16>,
    frames_sent: u32,
}

impl MessageState {
    fn new(spec: MessageSpec, rng: &mut StdRng) -> Self {
        let counter_values = spec
            .signals
            .iter()
            .filter(|s| matches!(s, Signal::AliveCounter { .. }))
            .map(|_| 0u32)
            .collect();
        let walk_values = spec
            .signals
            .iter()
            .filter_map(|s| match s {
                Signal::RandomWalk { min, max, .. } => Some(rng.gen_range(*min..=*max)),
                _ => None,
            })
            .collect();
        MessageState {
            spec,
            counter_values,
            walk_values,
            frames_sent: 0,
        }
    }

    fn generate(&mut self, rng: &mut StdRng) -> CanFrame {
        let mut payload = self.spec.base;
        let mut counter_idx = 0usize;
        let mut walk_idx = 0usize;
        // Apply value signals first, checksums afterwards.
        for signal in &self.spec.signals {
            match *signal {
                Signal::AliveCounter { byte, modulus } => {
                    let v = &mut self.counter_values[counter_idx];
                    counter_idx += 1;
                    let m = u32::from(modulus.max(2));
                    *v = (*v + 1) % m;
                    if m <= 16 {
                        payload[byte] = (payload[byte] & 0xF0) | (*v as u8 & 0x0F);
                    } else {
                        payload[byte] = *v as u8;
                    }
                }
                Signal::RandomWalk {
                    byte_hi,
                    min,
                    max,
                    max_step,
                } => {
                    let v = &mut self.walk_values[walk_idx];
                    walk_idx += 1;
                    let step = rng.gen_range(0..=i32::from(max_step) * 2) - i32::from(max_step);
                    let next = (i32::from(*v) + step).clamp(i32::from(min), i32::from(max)) as u16;
                    *v = next;
                    payload[byte_hi] = (next >> 8) as u8;
                    if byte_hi + 1 < 8 {
                        payload[byte_hi + 1] = (next & 0xFF) as u8;
                    }
                }
                Signal::ToggleFlags {
                    byte,
                    mask,
                    period_frames,
                } => {
                    let phase = (self.frames_sent / period_frames.max(1)) % 2;
                    if phase == 1 {
                        payload[byte] ^= mask;
                    }
                }
                Signal::ChecksumXor { .. } => {}
            }
        }
        for signal in &self.spec.signals {
            if let Signal::ChecksumXor { byte } = *signal {
                let mut sum = 0u8;
                for (i, b) in payload.iter().enumerate().take(usize::from(self.spec.dlc)) {
                    if i != byte {
                        sum ^= b;
                    }
                }
                payload[byte] = sum;
            }
        }
        self.frames_sent += 1;
        CanFrame::new(
            CanId::standard(self.spec.id).expect("catalogue IDs are 11-bit"),
            &payload[..usize::from(self.spec.dlc)],
        )
        .expect("dlc <= 8 by construction")
    }
}

/// A transmitting ECU: a [`TrafficSource`] that interleaves the periodic
/// messages assigned to it, with seeded jitter.
///
/// # Example
///
/// ```
/// use canids_dataset::vehicle::VehicleModel;
/// use canids_can::bus::TrafficSource;
///
/// let mut sources = VehicleModel::sonata().into_sources(1, 42);
/// let mut src = sources.remove(0);
/// let (t0, f0) = src.next_frame().unwrap();
/// let (t1, _) = src.next_frame().unwrap();
/// assert!(t1 >= t0);
/// assert!(f0.id().is_standard());
/// ```
#[derive(Debug)]
pub struct VehicleSource {
    states: Vec<MessageState>,
    queue: BinaryHeap<Reverse<(SimTime, usize)>>,
    rng: StdRng,
    horizon: Option<SimTime>,
    load_jitter: Option<LoadJitter>,
}

/// Longer-horizon drift: release jitter that grows with instantaneous
/// bus load. On a real vehicle a periodic message's release slips when
/// the bus is busy (its transmission waits out arbitration, and the ECU
/// task re-arms late); the drift therefore *scales with how loaded the
/// bus is right now*. This model estimates the instantaneous load as
/// the wire-time fraction a sliding window of this source's own recent
/// releases would occupy, and widens each message's jitter span by
/// `1 + gain · load`. The estimate is deliberately source-local (a
/// source cannot see attacker traffic sharing the bus): it models the
/// ECU-side scheduling drift under the vehicle's *own* periodic load;
/// arbitration delay against attackers is modelled by the bus itself.
#[derive(Debug, Clone)]
struct LoadJitter {
    /// Multiplier on the load fraction.
    gain: f64,
    /// Sliding estimation window.
    window: SimTime,
    /// Nominal wire cost per frame (8-byte frame at 500 kb/s).
    frame_cost: SimTime,
    /// Release times inside the window, oldest first.
    recent: std::collections::VecDeque<SimTime>,
}

impl LoadJitter {
    /// Records a release at `t` and returns the current load fraction in
    /// `0..=1`.
    fn observe(&mut self, t: SimTime) -> f64 {
        while self
            .recent
            .front()
            .is_some_and(|&front| front + self.window < t)
        {
            self.recent.pop_front();
        }
        self.recent.push_back(t);
        let occupied = self.frame_cost.as_secs_f64() * self.recent.len() as f64;
        (occupied / self.window.as_secs_f64()).min(1.0)
    }
}

impl VehicleSource {
    /// Creates a source for a set of message specs.
    pub fn new(specs: Vec<MessageSpec>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queue = BinaryHeap::new();
        let states: Vec<MessageState> = specs
            .into_iter()
            .map(|s| MessageState::new(s, &mut rng))
            .collect();
        for (i, st) in states.iter().enumerate() {
            // Random initial phase within one period.
            let phase_ns = rng.gen_range(0..st.spec.period.as_nanos().max(1));
            queue.push(Reverse((SimTime::from_nanos(phase_ns), i)));
        }
        VehicleSource {
            states,
            queue,
            rng,
            horizon: None,
            load_jitter: None,
        }
    }

    /// Stops generating frames after `horizon` (release times beyond it
    /// yield `None`). Without a horizon the source is infinite.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables load-dependent jitter: each message's release jitter span
    /// widens by `1 + gain · load`, where `load` is the wire-time
    /// fraction this source's releases occupy over a 50 ms sliding
    /// window (8-byte-at-500-kb/s frame cost). `gain = 0.0` is
    /// bit-identical to the plain source.
    pub fn with_load_jitter(mut self, gain: f64) -> Self {
        self.load_jitter = (gain > 0.0).then(|| LoadJitter {
            gain,
            window: SimTime::from_millis(50),
            frame_cost: SimTime::from_micros(222),
            recent: std::collections::VecDeque::new(),
        });
        self
    }
}

impl TrafficSource for VehicleSource {
    fn next_frame(&mut self) -> Option<(SimTime, CanFrame)> {
        let Reverse((t, idx)) = self.queue.pop()?;
        if let Some(h) = self.horizon {
            if t > h {
                return None;
            }
        }
        let frame = self.states[idx].generate(&mut self.rng);
        let load_factor = match &mut self.load_jitter {
            Some(lj) => 1.0 + lj.gain * lj.observe(t),
            None => 1.0,
        };
        let spec = &self.states[idx].spec;
        let jitter_span = (spec.period.as_secs_f64() * spec.jitter_frac * load_factor).max(0.0);
        let jitter = SimTime::from_secs_f64(self.rng.gen_range(0.0..=jitter_span));
        let next = t + spec.period + jitter;
        self.queue.push(Reverse((next, idx)));
        Some((t, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(src: &mut VehicleSource, n: usize) -> Vec<(SimTime, CanFrame)> {
        (0..n).map(|_| src.next_frame().unwrap()).collect()
    }

    #[test]
    fn sonata_catalogue_is_well_formed() {
        let m = VehicleModel::sonata();
        for spec in m.specs() {
            assert!(spec.id <= 0x7FF);
            assert!(spec.dlc <= 8);
            assert!(spec.period.as_nanos() > 0);
            for s in &spec.signals {
                match *s {
                    Signal::AliveCounter { byte, .. } => assert!(byte < usize::from(spec.dlc)),
                    Signal::ChecksumXor { byte } => assert!(byte < usize::from(spec.dlc)),
                    Signal::RandomWalk {
                        byte_hi, min, max, ..
                    } => {
                        assert!(byte_hi + 1 < 8);
                        assert!(min <= max);
                    }
                    Signal::ToggleFlags { byte, .. } => assert!(byte < usize::from(spec.dlc)),
                }
            }
        }
    }

    #[test]
    fn frames_release_in_time_order() {
        let mut src = VehicleModel::sonata().into_sources(1, 1).remove(0);
        let frames = collect(&mut src, 500);
        for w in frames.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn only_catalogue_ids_are_generated() {
        let model = VehicleModel::sonata();
        let ids = model.message_ids();
        let mut src = model.into_sources(1, 2).remove(0);
        for (_, f) in collect(&mut src, 1_000) {
            assert!(ids.contains(&u16::try_from(f.id().raw()).unwrap()), "{f}");
        }
    }

    #[test]
    fn alive_counters_increment_mod_16() {
        // 0x316 has a nibble counter at byte 6.
        let model = VehicleModel::new(vec![VehicleModel::sonata().specs()[0].clone()]);
        let mut src = model.into_sources(1, 3).remove(0);
        let frames = collect(&mut src, 40);
        let counters: Vec<u8> = frames.iter().map(|(_, f)| f.data()[6] & 0x0F).collect();
        for w in counters.windows(2) {
            assert_eq!((w[0] + 1) % 16, w[1]);
        }
    }

    #[test]
    fn checksum_byte_is_xor_of_payload() {
        let model = VehicleModel::new(vec![VehicleModel::sonata().specs()[0].clone()]);
        let mut src = model.into_sources(1, 4).remove(0);
        for (_, f) in collect(&mut src, 100) {
            let d = f.data();
            let expect: u8 = d[..7].iter().fold(0, |a, b| a ^ b);
            assert_eq!(d[7], expect, "{f}");
        }
    }

    #[test]
    fn random_walk_stays_in_range_and_moves() {
        let model = VehicleModel::new(vec![VehicleModel::sonata().specs()[0].clone()]);
        let mut src = model.into_sources(1, 5).remove(0);
        let mut values = Vec::new();
        for (_, f) in collect(&mut src, 300) {
            let v = u16::from_be_bytes([f.data()[2], f.data()[3]]);
            assert!((600..=6500).contains(&v), "rpm = {v}");
            values.push(v);
        }
        let distinct: std::collections::BTreeSet<u16> = values.iter().copied().collect();
        assert!(distinct.len() > 10, "walk should move");
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let mut a = VehicleModel::sonata().into_sources(2, 99);
        let mut b = VehicleModel::sonata().into_sources(2, 99);
        for (sa, sb) in a.iter_mut().zip(b.iter_mut()) {
            for _ in 0..200 {
                assert_eq!(sa.next_frame(), sb.next_frame());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = VehicleModel::sonata().into_sources(1, 1).remove(0);
        let mut b = VehicleModel::sonata().into_sources(1, 2).remove(0);
        let fa = collect(&mut a, 50);
        let fb = collect(&mut b, 50);
        assert_ne!(fa, fb);
    }

    #[test]
    fn horizon_terminates_source() {
        let mut src = VehicleModel::sonata()
            .into_sources(1, 7)
            .remove(0)
            .with_horizon(SimTime::from_millis(50));
        let mut n = 0;
        while src.next_frame().is_some() {
            n += 1;
            assert!(n < 1_000_000, "horizon must terminate the source");
        }
        // ~1 kHz for 50 ms ≈ 50 frames (very loose bounds).
        assert!(n > 10 && n < 500, "n = {n}");
    }

    /// Mean relative release jitter `(gap − period)/period` over a
    /// uniform catalogue of `n_msgs` messages with the given period.
    fn mean_relative_jitter(period: SimTime, gain: f64, n_msgs: usize, per_msg: usize) -> f64 {
        let specs: Vec<MessageSpec> = (0..n_msgs)
            .map(|i| {
                let mut s = MessageSpec::constant(0x100 + i as u16, period, 8, [0u8; 8]);
                s.jitter_frac = 0.1;
                s
            })
            .collect();
        let mut src = VehicleSource::new(specs, 42).with_load_jitter(gain);
        // BTreeMap, not HashMap: the mean below folds floats over the
        // map values, so iteration order is part of the result.
        let mut releases: std::collections::BTreeMap<u32, Vec<SimTime>> =
            std::collections::BTreeMap::new();
        for _ in 0..n_msgs * per_msg {
            let (t, f) = src.next_frame().unwrap();
            releases.entry(f.id().raw()).or_default().push(t);
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for times in releases.values() {
            // Skip the estimation-window warm-up.
            for w in times.windows(2).skip(8) {
                let gap = (w[1] - w[0]).as_secs_f64();
                sum += gap / period.as_secs_f64() - 1.0;
                count += 1;
            }
        }
        sum / count as f64
    }

    #[test]
    fn jitter_grows_with_instantaneous_bus_load() {
        // 20 messages every 2 ms offer ~10 kframe/s — wire-saturating
        // (load ≈ 1) — while the same catalogue at 100 ms offers ~200
        // frame/s (load ≈ 0.04). With gain 2 the loaded catalogue's mean
        // relative jitter must approach (1 + gain) times the quiet one's.
        let loaded = mean_relative_jitter(SimTime::from_millis(2), 2.0, 20, 300);
        let quiet = mean_relative_jitter(SimTime::from_millis(100), 2.0, 20, 60);
        assert!(
            loaded / quiet > 2.0,
            "loaded {loaded:.4} vs quiet {quiet:.4}: drift must scale with load"
        );
        // Statistical pins: uniform jitter in [0, frac·factor] has mean
        // frac·factor/2 — ≈ 0.15 at load 1 (factor 3), ≈ 0.055 at load
        // 0.04 (factor ~1.09), with sampling slack.
        assert!((0.12..0.18).contains(&loaded), "loaded mean {loaded:.4}");
        assert!((0.04..0.08).contains(&quiet), "quiet mean {quiet:.4}");
        // Gain off: load no longer matters.
        let baseline = mean_relative_jitter(SimTime::from_millis(2), 0.0, 20, 300);
        assert!((0.04..0.06).contains(&baseline), "baseline {baseline:.4}");
    }

    #[test]
    fn zero_gain_is_bit_identical_to_plain_source() {
        let specs = VehicleModel::sonata().specs().to_vec();
        let mut plain = VehicleSource::new(specs.clone(), 7);
        let mut gained = VehicleSource::new(specs, 7).with_load_jitter(0.0);
        for _ in 0..500 {
            assert_eq!(plain.next_frame(), gained.next_frame());
        }
    }

    #[test]
    fn into_sources_partitions_all_specs() {
        let model = VehicleModel::sonata();
        let total = model.specs().len();
        let sources = model.into_sources(4, 11);
        let partitioned: usize = sources.iter().map(|s| s.states.len()).sum();
        assert_eq!(partitioned, total);
        assert_eq!(sources.len(), 4);
    }
}
