//! Per-frame feature encodings.
//!
//! The paper's MLP consumes a single CAN frame: the 11 identifier bits
//! plus the 64 payload bits (zero-padded to 8 bytes) — 75 binary inputs.
//! This matches the FINN streaming-input style and is what
//! [`IdBitsPayloadBits`] produces. [`IdPayloadBytes`] provides the compact
//! byte-level encoding used by the classic-ML baselines (decision trees,
//! kNN).

use canids_can::frame::CanFrame;

/// Dimension of the bit-level encoding: 11 identifier bits + 64 payload bits.
pub const FEATURE_BITS_DIM: usize = 75;

/// Dimension of the byte-level encoding: id, dlc and 8 payload bytes.
pub const FEATURE_BYTES_DIM: usize = 10;

/// Maps a frame to a fixed-length feature vector.
pub trait FrameEncoder {
    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Encodes one frame; the returned vector has length [`dim`].
    ///
    /// [`dim`]: FrameEncoder::dim
    fn encode(&self, frame: &CanFrame) -> Vec<f32>;

    /// Encodes into a caller-provided buffer (hot-path variant).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.dim()`.
    fn encode_into(&self, frame: &CanFrame, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim(), "output buffer has wrong length");
        out.copy_from_slice(&self.encode(frame));
    }
}

/// The paper's 75-bit binary encoding: 11 identifier bits followed by the
/// zero-padded 64 payload bits, each mapped to `0.0` or `1.0`.
///
/// # Example
///
/// ```
/// use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
/// use canids_can::frame::{CanFrame, CanId};
///
/// let enc = IdBitsPayloadBits;
/// let f = CanFrame::new(CanId::standard(0x400)?, &[0x80])?;
/// let x = enc.encode(&f);
/// assert_eq!(x.len(), 75);
/// assert_eq!(x[0], 1.0);  // MSB of 0x400
/// assert_eq!(x[11], 1.0); // MSB of first payload byte
/// # Ok::<(), canids_can::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdBitsPayloadBits;

impl FrameEncoder for IdBitsPayloadBits {
    fn dim(&self) -> usize {
        FEATURE_BITS_DIM
    }

    fn encode(&self, frame: &CanFrame) -> Vec<f32> {
        let mut out = vec![0.0f32; FEATURE_BITS_DIM];
        self.encode_into(frame, &mut out);
        out
    }

    fn encode_into(&self, frame: &CanFrame, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            FEATURE_BITS_DIM,
            "output buffer has wrong length"
        );
        let id = frame.id().base_id();
        for (i, slot) in out.iter_mut().take(11).enumerate() {
            *slot = f32::from((id >> (10 - i)) & 1);
        }
        let payload = frame.data_padded();
        for (b, &byte) in payload.iter().enumerate() {
            for i in 0..8 {
                out[11 + b * 8 + i] = f32::from((byte >> (7 - i)) & 1);
            }
        }
    }
}

/// Compact byte-level encoding: normalised identifier, DLC and the eight
/// zero-padded payload bytes — 10 features in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdPayloadBytes;

impl FrameEncoder for IdPayloadBytes {
    fn dim(&self) -> usize {
        FEATURE_BYTES_DIM
    }

    fn encode(&self, frame: &CanFrame) -> Vec<f32> {
        let mut out = vec![0.0f32; FEATURE_BYTES_DIM];
        out[0] = f32::from(frame.id().base_id()) / 2047.0;
        out[1] = f32::from(frame.dlc().value()) / 8.0;
        for (i, &b) in frame.data_padded().iter().enumerate() {
            out[2 + i] = f32::from(b) / 255.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::frame::{CanFrame, CanId};

    fn frame(id: u16, payload: &[u8]) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), payload).unwrap()
    }

    #[test]
    fn bits_encoding_is_binary_valued() {
        let enc = IdBitsPayloadBits;
        let x = enc.encode(&frame(0x5A5, &[0xDE, 0xAD]));
        assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(x.len(), 75);
    }

    #[test]
    fn bits_encoding_id_msb_first() {
        let enc = IdBitsPayloadBits;
        let x = enc.encode(&frame(0b100_0000_0001, &[]));
        assert_eq!(x[0], 1.0);
        assert_eq!(x[10], 1.0);
        assert!(x[1..10].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bits_encoding_pads_payload_with_zeros() {
        let enc = IdBitsPayloadBits;
        let x = enc.encode(&frame(0x0, &[0xFF]));
        assert!(x[11..19].iter().all(|&v| v == 1.0));
        assert!(x[19..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bits_encoding_distinguishes_dos_from_normal() {
        let enc = IdBitsPayloadBits;
        let dos = enc.encode(&frame(0x000, &[0; 8]));
        let normal = enc.encode(&frame(0x316, &[5, 32, 14, 2, 16, 39, 3, 61]));
        assert_ne!(dos, normal);
        assert!(
            dos.iter().all(|&v| v == 0.0),
            "DoS frame encodes to all zeros"
        );
    }

    #[test]
    fn encode_into_matches_encode() {
        let enc = IdBitsPayloadBits;
        let f = frame(0x43F, &[1, 69, 96, 255, 101, 0, 0, 0]);
        let mut buf = vec![9.0f32; enc.dim()];
        enc.encode_into(&f, &mut buf);
        assert_eq!(buf, enc.encode(&f));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn encode_into_validates_buffer() {
        let enc = IdBitsPayloadBits;
        let f = frame(0x1, &[]);
        let mut buf = vec![0.0f32; 3];
        enc.encode_into(&f, &mut buf);
    }

    #[test]
    fn bytes_encoding_normalised() {
        let enc = IdPayloadBytes;
        let x = enc.encode(&frame(0x7FF, &[255; 8]));
        assert_eq!(x.len(), 10);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
        assert!(x[2..].iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let zero = enc.encode(&frame(0x000, &[]));
        assert!(zero.iter().all(|&v| v == 0.0));
    }
}
