//! Dataset generation by bus-level simulation.
//!
//! A capture is produced by attaching the vehicle's transmitting ECUs and
//! (optionally) a malicious node to a real [`canids_can::Bus`] and letting
//! it run: timestamps carry arbitration delay, DoS bursts visibly starve
//! lower-priority traffic and the observer sees frames exactly as an IDS
//! ECU would. Ground truth comes from the transmitting node: frames sent
//! by the malicious node carry the attack label.

use canids_can::bus::{Bus, BusConfig};
use canids_can::node::CanController;
use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::attacks::{AttackKind, AttackProfile, AttackSource};
use crate::features::FrameEncoder;
use crate::record::{Label, LabeledFrame};
use crate::vehicle::VehicleModel;

/// Configuration of a synthetic capture.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Capture length (the published traces are 30–40 s).
    pub duration: SimTime,
    /// Bus bitrate (the capture vehicle used 500 kb/s).
    pub bitrate: Bitrate,
    /// Vehicle message catalogue.
    pub vehicle: VehicleModel,
    /// Number of transmitting ECU nodes the catalogue is spread across.
    pub vehicle_nodes: usize,
    /// Attack to mount, if any.
    pub attack: Option<AttackProfile>,
    /// Additional attackers overlaid on the same trace, each on its own
    /// malicious node (multi-attacker captures for N-detector scenarios).
    pub extra_attacks: Vec<AttackProfile>,
    /// Longer-horizon drift: release-jitter gain under instantaneous bus
    /// load (see [`crate::vehicle::VehicleSource::with_load_jitter`]).
    /// `0.0` (the default) is bit-identical to the undrifted model.
    pub load_jitter_gain: f64,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
}

impl TrafficConfig {
    /// Every mounted attacker, in node-attachment order.
    pub fn attackers(&self) -> Vec<AttackProfile> {
        self.attack
            .into_iter()
            .chain(self.extra_attacks.iter().copied())
            .collect()
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            duration: SimTime::from_secs(5),
            bitrate: Bitrate::HIGH_SPEED_500K,
            vehicle: VehicleModel::sonata(),
            vehicle_nodes: 4,
            attack: None,
            extra_attacks: Vec::new(),
            load_jitter_gain: 0.0,
            seed: 0xCAFE,
        }
    }
}

/// A labelled capture: the in-memory equivalent of one Car-Hacking CSV.
///
/// # Example
///
/// ```
/// use canids_dataset::prelude::*;
/// use canids_can::time::SimTime;
///
/// let ds = DatasetBuilder::new(TrafficConfig {
///     duration: SimTime::from_millis(200),
///     ..TrafficConfig::default()
/// })
/// .build();
/// assert!(ds.class_count(Label::Normal) == ds.len());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    records: Vec<LabeledFrame>,
}

impl Dataset {
    /// Wraps a record list as a dataset.
    pub fn from_records(records: Vec<LabeledFrame>) -> Self {
        Dataset { records }
    }

    /// The records, in capture (time) order.
    pub fn records(&self) -> &[LabeledFrame] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledFrame> {
        self.records.iter()
    }

    /// Number of records with the given label.
    pub fn class_count(&self, label: Label) -> usize {
        self.records.iter().filter(|r| r.label == label).count()
    }

    /// Fraction of records that are attack frames.
    pub fn attack_fraction(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().filter(|r| r.label.is_attack()).count() as f64
                / self.records.len() as f64
        }
    }

    /// Encodes every record into `(features, binary_class)` pairs using
    /// `encoder`; the layout consumed by the trainers.
    pub fn to_xy<E: FrameEncoder>(&self, encoder: &E) -> (Vec<Vec<f32>>, Vec<usize>) {
        let xs = self
            .records
            .iter()
            .map(|r| encoder.encode(&r.frame))
            .collect();
        let ys = self.records.iter().map(|r| r.label.class_index()).collect();
        (xs, ys)
    }

    /// Deterministically subsamples at most `per_class` records of each
    /// binary class (normal/attack), preserving time order.
    pub fn subsample_balanced(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut normal: Vec<&LabeledFrame> = self
            .records
            .iter()
            .filter(|r| !r.label.is_attack())
            .collect();
        let mut attack: Vec<&LabeledFrame> = self
            .records
            .iter()
            .filter(|r| r.label.is_attack())
            .collect();
        normal.shuffle(&mut rng);
        attack.shuffle(&mut rng);
        normal.truncate(per_class);
        attack.truncate(per_class);
        let mut records: Vec<LabeledFrame> = normal.into_iter().chain(attack).copied().collect();
        records.sort_by_key(|r| r.timestamp);
        Dataset { records }
    }

    /// Returns the subset of records within `[from, to)`.
    pub fn time_slice(&self, from: SimTime, to: SimTime) -> Dataset {
        Dataset {
            records: self
                .records
                .iter()
                .filter(|r| r.timestamp >= from && r.timestamp < to)
                .copied()
                .collect(),
        }
    }
}

impl FromIterator<LabeledFrame> for Dataset {
    fn from_iter<I: IntoIterator<Item = LabeledFrame>>(iter: I) -> Self {
        Dataset {
            records: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a LabeledFrame;
    type IntoIter = std::slice::Iter<'a, LabeledFrame>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Builds a [`Dataset`] by running the bus simulation described by a
/// [`TrafficConfig`].
#[derive(Debug)]
pub struct DatasetBuilder {
    config: TrafficConfig,
}

impl DatasetBuilder {
    /// Creates a builder for the given capture configuration.
    pub fn new(config: TrafficConfig) -> Self {
        DatasetBuilder { config }
    }

    /// The configuration this builder will run.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Runs the simulation and returns the labelled capture.
    pub fn build(self) -> Dataset {
        let TrafficConfig {
            duration,
            bitrate,
            vehicle,
            vehicle_nodes,
            attack,
            extra_attacks,
            load_jitter_gain,
            seed,
        } = self.config;

        let mut bus = Bus::new(BusConfig {
            bitrate,
            error_rate: 0.0,
            seed,
            record_events: true,
        });

        let sources = vehicle.clone().into_sources(vehicle_nodes, seed);
        for source in sources {
            let node = bus.add_node(CanController::default());
            bus.attach_source(
                node,
                Box::new(
                    source
                        .with_load_jitter(load_jitter_gain)
                        .with_horizon(duration),
                ),
            );
        }

        // Each attacker gets its own malicious node with a seed derived
        // from its attachment index, so overlaid attacks are independent
        // yet the whole capture stays deterministic. Replay attackers
        // record *this* capture's vehicle traffic (same model, nodes and
        // seed) so they re-inject frames the bus genuinely carried; the
        // per-attacker seed staggers their injection phase, so duplicate
        // replay profiles interleave rather than collide.
        let mut attacker_nodes = Vec::new();
        for (i, profile) in attack.into_iter().chain(extra_attacks).enumerate() {
            let attack_seed = seed ^ 0x5EED ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64));
            let source = match profile.kind {
                AttackKind::Replay { .. } => AttackSource::replay_of(
                    profile,
                    vehicle.clone(),
                    vehicle_nodes,
                    seed,
                    attack_seed,
                    duration,
                ),
                _ => profile.into_source(attack_seed, duration),
            };
            let node = bus.add_node(CanController::default());
            bus.attach_source(node, Box::new(source));
            attacker_nodes.push((node, profile.kind.label()));
        }

        bus.run_until(duration);

        let events = bus.take_events();
        let records = events
            .into_iter()
            .map(|e| {
                let label = attacker_nodes
                    .iter()
                    .find(|&&(node, _)| e.sender == node)
                    .map(|&(_, label)| label)
                    .unwrap_or(Label::Normal);
                LabeledFrame::new(e.time, e.frame, label)
            })
            .collect();
        Dataset { records }
    }
}

/// Composes a capture with two or more attackers overlaid on one trace
/// — the matching N-attack input for N-detector deployments. Each
/// profile is mounted on its own malicious node; ground truth carries
/// each attacker's own label.
///
/// Note that overlaid attacks contend for the bus like real attackers: a
/// saturating DoS flood starves lower-priority injections, so pair it
/// with bursty schedules when every attack must surface in the capture.
///
/// # Example
///
/// ```
/// use canids_dataset::prelude::*;
/// use canids_dataset::generator::multi_attacker;
/// use canids_can::time::SimTime;
///
/// let ds = multi_attacker(
///     SimTime::from_millis(400),
///     &[
///         AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous),
///         AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous),
///     ],
///     7,
/// );
/// assert!(ds.class_count(Label::Fuzzy) > 0);
/// assert!(ds.class_count(Label::GearSpoof) > 0);
/// ```
pub fn multi_attacker(duration: SimTime, profiles: &[AttackProfile], seed: u64) -> Dataset {
    DatasetBuilder::new(TrafficConfig {
        duration,
        extra_attacks: profiles.to_vec(),
        seed,
        ..TrafficConfig::default()
    })
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::features::IdBitsPayloadBits;

    fn quick(duration_ms: u64, attack: Option<AttackProfile>, seed: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(duration_ms),
            attack,
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn normal_capture_has_only_normal_labels() {
        let ds = quick(300, None, 1);
        assert!(ds.len() > 100, "len = {}", ds.len());
        assert_eq!(ds.class_count(Label::Normal), ds.len());
        assert_eq!(ds.attack_fraction(), 0.0);
    }

    #[test]
    fn records_are_time_ordered() {
        let ds = quick(300, Some(AttackProfile::dos()), 2);
        for w in ds.records().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn dos_capture_contains_both_classes() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(50),
            on: SimTime::from_millis(100),
            off: SimTime::from_millis(100),
        });
        let ds = quick(500, Some(profile), 3);
        assert!(ds.class_count(Label::Dos) > 100);
        assert!(ds.class_count(Label::Normal) > 100);
        // Every DoS frame has identifier 0.
        for r in ds.iter().filter(|r| r.label == Label::Dos) {
            assert_eq!(r.frame.id().raw(), 0);
        }
    }

    #[test]
    fn dos_frames_dominate_during_burst() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Continuous);
        let ds = quick(300, Some(profile), 4);
        // 0.3 ms injection vs ~1 kHz normal traffic: attack frames are the
        // majority of the capture, as in the published trace.
        assert!(
            ds.attack_fraction() > 0.5,
            "attack fraction = {}",
            ds.attack_fraction()
        );
    }

    #[test]
    fn fuzzy_capture_random_ids_labelled() {
        let profile = AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous);
        let ds = quick(400, Some(profile), 5);
        let fuzzy: Vec<_> = ds.iter().filter(|r| r.label == Label::Fuzzy).collect();
        assert!(fuzzy.len() > 200, "fuzzy = {}", fuzzy.len());
        let distinct: std::collections::BTreeSet<u32> =
            fuzzy.iter().map(|r| r.frame.id().raw()).collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(200, Some(AttackProfile::fuzzy()), 42);
        let b = quick(200, Some(AttackProfile::fuzzy()), 42);
        assert_eq!(a, b);
        let c = quick(200, Some(AttackProfile::fuzzy()), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn to_xy_shapes_match() {
        let ds = quick(200, Some(AttackProfile::dos()), 6);
        let enc = IdBitsPayloadBits;
        let (xs, ys) = ds.to_xy(&enc);
        assert_eq!(xs.len(), ds.len());
        assert_eq!(ys.len(), ds.len());
        assert!(xs.iter().all(|x| x.len() == 75));
        assert!(ys.iter().all(|&y| y <= 1));
    }

    #[test]
    fn subsample_balanced_caps_classes() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Continuous);
        let ds = quick(400, Some(profile), 7);
        let sub = ds.subsample_balanced(50, 1);
        assert!(sub.class_count(Label::Dos) <= 50);
        assert!(sub.class_count(Label::Normal) <= 50);
        assert!(sub.len() <= 100);
        for w in sub.records().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn load_jitter_gain_is_wired_into_capture_generation() {
        // Gain 0 is bit-identical to the undrifted default; a non-zero
        // gain produces a genuinely different (but still deterministic)
        // capture from the same seed — the longer-horizon drift is
        // reachable from the production capture path, not just the
        // vehicle-source API.
        let base = quick(300, None, 9);
        let zero = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            load_jitter_gain: 0.0,
            seed: 9,
            ..TrafficConfig::default()
        })
        .build();
        assert_eq!(base.records(), zero.records(), "gain 0 is the identity");
        let drifted = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            load_jitter_gain: 4.0,
            seed: 9,
            ..TrafficConfig::default()
        })
        .build();
        assert_ne!(base.records(), drifted.records(), "drift must take effect");
        let again = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            load_jitter_gain: 4.0,
            seed: 9,
            ..TrafficConfig::default()
        })
        .build();
        assert_eq!(drifted.records(), again.records(), "still deterministic");
    }

    #[test]
    fn time_slice_bounds_respected() {
        let ds = quick(300, None, 8);
        let slice = ds.time_slice(SimTime::from_millis(100), SimTime::from_millis(200));
        assert!(!slice.is_empty());
        for r in slice.iter() {
            assert!(r.timestamp >= SimTime::from_millis(100));
            assert!(r.timestamp < SimTime::from_millis(200));
        }
    }

    #[test]
    fn multi_attacker_overlays_both_labels() {
        let profiles = [
            AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous),
            AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous),
        ];
        let ds = multi_attacker(SimTime::from_millis(400), &profiles, 21);
        assert!(
            ds.class_count(Label::Fuzzy) > 100,
            "{}",
            ds.class_count(Label::Fuzzy)
        );
        assert!(ds.class_count(Label::GearSpoof) > 100);
        assert!(ds.class_count(Label::Normal) > 100);
        // Deterministic for equal seeds.
        let again = multi_attacker(SimTime::from_millis(400), &profiles, 21);
        assert_eq!(ds, again);
    }

    #[test]
    fn saturating_dos_starves_overlaid_attackers() {
        // Bus-level realism: a continuous 0x000 flood plus normal
        // traffic exceeds the 500 kb/s capacity, so the random-ID fuzzy
        // attacker mostly loses arbitration — overlaid attacks contend
        // rather than compose additively.
        let ds = multi_attacker(
            SimTime::from_millis(400),
            &[
                AttackProfile::dos().with_schedule(BurstSchedule::Continuous),
                AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous),
            ],
            21,
        );
        assert!(ds.class_count(Label::Dos) > 500);
        let fuzzy = ds.class_count(Label::Fuzzy);
        assert!(
            fuzzy < ds.class_count(Label::Dos) / 10,
            "fuzzy should starve under the flood: {fuzzy}"
        );
    }

    #[test]
    fn extra_attacks_compose_with_primary() {
        let ds = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            attack: Some(AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous)),
            extra_attacks: vec![
                AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous),
                AttackProfile::rpm_spoof().with_schedule(BurstSchedule::Continuous),
            ],
            seed: 9,
            ..TrafficConfig::default()
        })
        .build();
        for label in [Label::Fuzzy, Label::GearSpoof, Label::RpmSpoof] {
            assert!(ds.class_count(label) > 10, "{label}");
        }
        let config = TrafficConfig {
            attack: Some(AttackProfile::dos()),
            extra_attacks: vec![AttackProfile::fuzzy()],
            ..TrafficConfig::default()
        };
        assert_eq!(config.attackers().len(), 2);
    }

    #[test]
    fn replay_capture_reinjects_catalogue_traffic() {
        let ds = quick(
            400,
            Some(
                AttackProfile::replay_after(SimTime::from_millis(10))
                    .with_schedule(BurstSchedule::Continuous),
            ),
            13,
        );
        let replayed: Vec<_> = ds.iter().filter(|r| r.label == Label::Replay).collect();
        assert!(replayed.len() > 50, "replayed = {}", replayed.len());
        // Replayed frames carry legitimate catalogue identifiers — they
        // are indistinguishable by content, only by timing context.
        let catalogue: std::collections::BTreeSet<u16> = crate::vehicle::VehicleModel::sonata()
            .message_ids()
            .into_iter()
            .collect();
        for r in &replayed {
            assert!(
                catalogue.contains(&u16::try_from(r.frame.id().raw()).unwrap()),
                "replayed {} is not a catalogue frame",
                r.frame
            );
        }
        // Every replayed (id, payload) pair was genuinely seen earlier as
        // legitimate traffic.
        let mut seen = std::collections::BTreeSet::new();
        for r in ds.iter() {
            if r.label == Label::Normal {
                seen.insert((r.frame.id().raw(), r.frame.data().to_vec()));
            } else if r.label == Label::Replay {
                assert!(
                    seen.contains(&(r.frame.id().raw(), r.frame.data().to_vec())),
                    "replayed frame not previously observed: {}",
                    r.frame
                );
            }
        }
    }

    #[test]
    fn burst_gaps_have_no_attack_frames() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(0),
            on: SimTime::from_millis(100),
            off: SimTime::from_millis(200),
        });
        let ds = quick(300, Some(profile), 9);
        // The off-window (100..300 ms) should contain (almost) no DoS
        // frames; allow a small spill-over for frames queued at the edge.
        let off_window = ds.time_slice(SimTime::from_millis(110), SimTime::from_millis(290));
        let dos_in_gap = off_window.class_count(Label::Dos);
        assert!(dos_in_gap < 5, "dos frames in quiet window: {dos_in_gap}");
        assert!(ds.class_count(Label::Dos) > 100);
    }
}
