//! Streaming (frame-at-a-time) views of a capture.
//!
//! Batch evaluation materialises a whole capture before classifying it;
//! a deployed IDS sees one frame at a time, paced by the wire. This
//! module provides the record streams that drive the streaming
//! evaluation path:
//!
//! * [`PacedRecords`] — an iterator that re-times a capture to
//!   *saturated line rate* at a chosen bitrate: frames are replayed
//!   back-to-back, each arrival separated by its true wire duration
//!   (including stuff bits) plus the interframe space. This is the
//!   worst-case offered load of a given bus class (1 Mb/s classic CAN,
//!   or a CAN-FD-class data rate), independent of how busy the capture's
//!   original schedule happened to be.
//!
//! Records are yielded by value (they are small `Copy` types), so a
//! consumer never needs the whole capture resident to evaluate it.

use canids_can::time::SimTime;
use canids_can::timing::{frame_duration, frame_slot_duration, Bitrate};

use crate::generator::Dataset;
use crate::record::LabeledFrame;

/// Iterator over a capture's records re-paced to back-to-back wire
/// timing at a fixed bitrate. Timestamps are rewritten to the end-of-
/// frame time of the saturated replay; order and labels are preserved.
///
/// # Example
///
/// ```
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
/// use canids_dataset::prelude::*;
/// use canids_dataset::stream::paced_records;
///
/// let ds = DatasetBuilder::new(TrafficConfig {
///     duration: SimTime::from_millis(100),
///     ..TrafficConfig::default()
/// })
/// .build();
/// let paced: Vec<_> = paced_records(&ds, Bitrate::HIGH_SPEED_1M).collect();
/// assert_eq!(paced.len(), ds.len());
/// // Saturated pacing at 1 Mb/s is denser than the original 500 kb/s
/// // capture schedule.
/// assert!(paced.last().unwrap().timestamp < ds.records().last().unwrap().timestamp);
/// ```
#[derive(Debug, Clone)]
pub struct PacedRecords<'a> {
    records: std::slice::Iter<'a, LabeledFrame>,
    bitrate: Bitrate,
    clock: SimTime,
}

impl PacedRecords<'_> {
    /// The bus time the stream has advanced to (start of the next frame).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The pacing bitrate.
    pub fn bitrate(&self) -> Bitrate {
        self.bitrate
    }
}

impl Iterator for PacedRecords<'_> {
    type Item = LabeledFrame;

    fn next(&mut self) -> Option<LabeledFrame> {
        let rec = self.records.next()?;
        // Arrival = end of frame on the wire, matching the capture
        // convention; the next frame starts after the interframe space.
        let end = self.clock + frame_duration(&rec.frame, self.bitrate);
        self.clock += frame_slot_duration(&rec.frame, self.bitrate);
        Some(LabeledFrame {
            timestamp: end,
            ..*rec
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.records.size_hint()
    }
}

impl ExactSizeIterator for PacedRecords<'_> {}

/// Streams `dataset` at saturated line rate for `bitrate`.
pub fn paced_records(dataset: &Dataset, bitrate: Bitrate) -> PacedRecords<'_> {
    PacedRecords {
        records: dataset.records().iter(),
        bitrate,
        clock: SimTime::ZERO,
    }
}

impl Dataset {
    /// Streams this capture's records re-paced to saturated line rate at
    /// `bitrate` (see [`paced_records`]).
    pub fn stream_paced(&self, bitrate: Bitrate) -> PacedRecords<'_> {
        paced_records(self, bitrate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::timing::max_frame_rate;

    fn capture() -> Dataset {
        use crate::generator::{DatasetBuilder, TrafficConfig};
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            seed: 11,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn pacing_preserves_order_frames_and_labels() {
        let ds = capture();
        let paced: Vec<LabeledFrame> = paced_records(&ds, Bitrate::HIGH_SPEED_1M).collect();
        assert_eq!(paced.len(), ds.len());
        for (orig, p) in ds.iter().zip(&paced) {
            assert_eq!(orig.frame, p.frame);
            assert_eq!(orig.label, p.label);
        }
        for w in paced.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp, "strictly increasing");
        }
    }

    #[test]
    fn offered_rate_matches_analytic_line_rate() {
        // All-8-byte frames paced at 1 Mb/s must arrive at (close to) the
        // analytic maximum frame rate; payload mix in a real capture only
        // makes the stream faster.
        use crate::record::{Label, LabeledFrame};
        use canids_can::frame::{CanFrame, CanId};
        let n = 500usize;
        let ds = Dataset::from_records(
            (0..n)
                .map(|i| {
                    LabeledFrame::new(
                        SimTime::from_micros(i as u64 * 1_000),
                        CanFrame::new(CanId::standard(0x2C0).unwrap(), &[0xA5; 8]).unwrap(),
                        Label::Normal,
                    )
                })
                .collect(),
        );
        let paced: Vec<LabeledFrame> = paced_records(&ds, Bitrate::HIGH_SPEED_1M).collect();
        let span = paced.last().unwrap().timestamp.as_secs_f64();
        let fps = n as f64 / span;
        let analytic = max_frame_rate(Bitrate::HIGH_SPEED_1M, 8).unwrap();
        let ratio = fps / analytic;
        // Identical payloads; only stuff-bit variation and the trailing
        // intermission separate the two figures.
        assert!((0.95..=1.1).contains(&ratio), "fps {fps} vs {analytic}");
    }

    #[test]
    fn faster_bitrate_compresses_the_replay() {
        let ds = capture();
        let at_1m = paced_records(&ds, Bitrate::HIGH_SPEED_1M)
            .last()
            .unwrap()
            .timestamp;
        let at_fd = paced_records(&ds, Bitrate::new(5_000_000))
            .last()
            .unwrap()
            .timestamp;
        assert!(at_fd < at_1m, "{at_fd} !< {at_1m}");
    }

    #[test]
    fn exact_size_and_clock_track_progress() {
        let ds = capture();
        let mut it = ds.stream_paced(Bitrate::HIGH_SPEED_500K);
        assert_eq!(it.len(), ds.len());
        let first = it.next().unwrap();
        assert_eq!(it.len(), ds.len() - 1);
        assert!(it.clock() > first.timestamp);
    }
}
