//! Synthetic Car-Hacking-style CAN intrusion dataset.
//!
//! The paper trains and validates its quantised MLPs on the openly
//! available **Car Hacking dataset** (Song, Woo & Kim, HCRL): real CAN
//! traffic captured from a vehicle's OBD-II port with injected **DoS**,
//! **Fuzzy**, and **gear/RPM spoofing** attacks. That capture is not
//! redistributable here, so this crate builds the closest synthetic
//! equivalent, with the same structure and attack mechanics:
//!
//! * [`vehicle`] — a seeded model of a production car's periodic CAN
//!   traffic (alive counters, XOR checksums, sensor random walks, flag
//!   bytes) across several transmitting ECUs,
//! * [`attacks`] — injectors replicating the published attack traces:
//!   DoS (identifier `0x000` flooded every 0.3 ms), Fuzzy (uniformly
//!   random identifier + payload every 0.5 ms) and spoofing (forged gear/
//!   RPM frames), gated by on/off burst schedules,
//! * [`generator`] — drives the real [`canids_can::Bus`] with vehicle and
//!   attacker nodes, so timestamps, arbitration artefacts and DoS
//!   starvation appear in the data exactly as they would on a wire,
//! * [`record`]/[`csv`] — labelled records and the Car-Hacking CSV format,
//! * [`features`] — per-frame feature encodings for the classifiers,
//! * [`split`] — seeded stratified train/test splitting,
//! * [`stats`] — class balance and traffic statistics,
//! * [`stream`] — frame-at-a-time record streams, including saturated
//!   line-rate re-pacing for streaming evaluation.
//!
//! # Example
//!
//! ```
//! use canids_dataset::prelude::*;
//! use canids_can::time::SimTime;
//!
//! let config = TrafficConfig {
//!     duration: SimTime::from_millis(300),
//!     attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
//!     seed: 7,
//!     ..TrafficConfig::default()
//! };
//! let dataset = DatasetBuilder::new(config).build();
//! assert!(dataset.len() > 100);
//! assert!(dataset.class_count(Label::Dos) > 0);
//! assert!(dataset.class_count(Label::Normal) > 0);
//! ```

pub mod attacks;
pub mod csv;
pub mod features;
pub mod generator;
pub mod record;
pub mod split;
pub mod stats;
pub mod stream;
pub mod vehicle;
pub mod windows;

pub use attacks::{AttackKind, AttackProfile, AttackSource, BurstSchedule};
pub use features::{FrameEncoder, IdBitsPayloadBits, IdPayloadBytes, FEATURE_BITS_DIM};
pub use generator::{multi_attacker, Dataset, DatasetBuilder, TrafficConfig};
pub use record::{Label, LabeledFrame};
pub use split::{train_test_split, SplitConfig};
pub use stats::DatasetStats;
pub use stream::{paced_records, PacedRecords};
pub use vehicle::{MessageSpec, VehicleModel};
pub use windows::{blocks, FrameBlock};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::attacks::{AttackKind, AttackProfile, AttackSource, BurstSchedule};
    pub use crate::features::{FrameEncoder, IdBitsPayloadBits, IdPayloadBytes};
    pub use crate::generator::{multi_attacker, Dataset, DatasetBuilder, TrafficConfig};
    pub use crate::record::{Label, LabeledFrame};
    pub use crate::split::{train_test_split, SplitConfig};
    pub use crate::stats::DatasetStats;
    pub use crate::stream::{paced_records, PacedRecords};
    pub use crate::vehicle::VehicleModel;
}
