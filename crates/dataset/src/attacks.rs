//! Attack injectors replicating the Car Hacking dataset's attack traces.
//!
//! The published capture injects attacks from a malicious node attached to
//! the OBD-II port:
//!
//! * **DoS** — identifier `0x000` (wins every arbitration) with an 8-byte
//!   zero payload, injected every 0.3 ms;
//! * **Fuzzy** — uniformly random identifier and payload, every 0.5 ms;
//! * **Gear / RPM spoofing** — forged frames carrying a fixed gear status
//!   or RPM value on the legitimate identifier, every 1 ms (extension
//!   beyond the paper's DoS/Fuzzy scope).
//!
//! Injection is gated by a [`BurstSchedule`]: the real captures alternate
//! attack-on and attack-off intervals inside a 30–40 s trace.

use canids_can::bus::TrafficSource;
use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::record::Label;

/// Which attack the injector mounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Bus flood with the highest-priority identifier.
    Dos,
    /// Random identifier + payload fuzzing.
    Fuzzy,
    /// Forged gear-status frames on identifier `0x43F`.
    GearSpoof,
    /// Forged RPM frames on identifier `0x316`.
    RpmSpoof,
}

impl AttackKind {
    /// The ground-truth label injected frames carry.
    pub fn label(self) -> Label {
        match self {
            AttackKind::Dos => Label::Dos,
            AttackKind::Fuzzy => Label::Fuzzy,
            AttackKind::GearSpoof => Label::GearSpoof,
            AttackKind::RpmSpoof => Label::RpmSpoof,
        }
    }

    /// The injection period used by the published capture.
    pub fn default_period(self) -> SimTime {
        match self {
            AttackKind::Dos => SimTime::from_micros(300),
            AttackKind::Fuzzy => SimTime::from_micros(500),
            AttackKind::GearSpoof | AttackKind::RpmSpoof => SimTime::from_millis(1),
        }
    }
}

/// On/off gating of the injection within the capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstSchedule {
    /// Inject for the whole capture.
    Continuous,
    /// Alternate `on` and `off` intervals, starting with `on` at
    /// `initial_delay`.
    Periodic {
        /// Delay before the first burst.
        initial_delay: SimTime,
        /// Burst (attack active) duration.
        on: SimTime,
        /// Quiet duration between bursts.
        off: SimTime,
    },
}

impl BurstSchedule {
    /// The capture-like default: 2 s bursts separated by 2 s of quiet,
    /// starting 1 s in.
    pub fn capture_default() -> Self {
        BurstSchedule::Periodic {
            initial_delay: SimTime::from_secs(1),
            on: SimTime::from_secs(2),
            off: SimTime::from_secs(2),
        }
    }

    /// Whether the attack is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        match *self {
            BurstSchedule::Continuous => true,
            BurstSchedule::Periodic {
                initial_delay,
                on,
                off,
            } => {
                if t < initial_delay {
                    return false;
                }
                let cycle = (on + off).as_nanos().max(1);
                let phase = (t - initial_delay).as_nanos() % cycle;
                phase < on.as_nanos()
            }
        }
    }

    /// Advances `t` to the next active instant (identity when already
    /// active).
    pub fn next_active(&self, t: SimTime) -> SimTime {
        match *self {
            BurstSchedule::Continuous => t,
            BurstSchedule::Periodic {
                initial_delay,
                on,
                off,
            } => {
                if t < initial_delay {
                    return initial_delay;
                }
                let cycle = (on + off).as_nanos().max(1);
                let phase = (t - initial_delay).as_nanos() % cycle;
                if phase < on.as_nanos() {
                    t
                } else {
                    t + SimTime::from_nanos(cycle - phase)
                }
            }
        }
    }
}

/// Full attack description: kind, injection period and burst gating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackProfile {
    /// Attack kind.
    pub kind: AttackKind,
    /// Interval between injected frames while a burst is active.
    pub period: SimTime,
    /// Burst gating.
    pub schedule: BurstSchedule,
}

impl AttackProfile {
    /// DoS profile with the capture's 0.3 ms period and default bursts.
    pub fn dos() -> Self {
        AttackProfile {
            kind: AttackKind::Dos,
            period: AttackKind::Dos.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Fuzzy profile with the capture's 0.5 ms period and default bursts.
    pub fn fuzzy() -> Self {
        AttackProfile {
            kind: AttackKind::Fuzzy,
            period: AttackKind::Fuzzy.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Gear-spoofing profile (extension).
    pub fn gear_spoof() -> Self {
        AttackProfile {
            kind: AttackKind::GearSpoof,
            period: AttackKind::GearSpoof.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// RPM-spoofing profile (extension).
    pub fn rpm_spoof() -> Self {
        AttackProfile {
            kind: AttackKind::RpmSpoof,
            period: AttackKind::RpmSpoof.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Replaces the burst schedule (builder style).
    pub fn with_schedule(mut self, schedule: BurstSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the injection period (builder style).
    pub fn with_period(mut self, period: SimTime) -> Self {
        self.period = period;
        self
    }

    /// Builds the traffic source mounted on the malicious node.
    pub fn into_source(self, seed: u64, horizon: SimTime) -> AttackSource {
        AttackSource::new(self, seed, horizon)
    }
}

/// The malicious node's [`TrafficSource`].
///
/// # Example
///
/// ```
/// use canids_dataset::attacks::{AttackProfile, BurstSchedule};
/// use canids_can::bus::TrafficSource;
/// use canids_can::time::SimTime;
///
/// let mut src = AttackProfile::dos()
///     .with_schedule(BurstSchedule::Continuous)
///     .into_source(1, SimTime::from_millis(10));
/// let (t, f) = src.next_frame().unwrap();
/// assert_eq!(f.id().raw(), 0x000);
/// assert_eq!(t, SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct AttackSource {
    profile: AttackProfile,
    rng: StdRng,
    next_time: SimTime,
    horizon: SimTime,
}

impl AttackSource {
    /// Creates the source; injection stops at `horizon`.
    pub fn new(profile: AttackProfile, seed: u64, horizon: SimTime) -> Self {
        AttackSource {
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0xA77A_C4E5_0D05_F00D),
            next_time: profile.schedule.next_active(SimTime::ZERO),
            horizon,
        }
    }

    /// The profile this source mounts.
    pub fn profile(&self) -> AttackProfile {
        self.profile
    }

    fn forge_frame(&mut self) -> CanFrame {
        match self.profile.kind {
            AttackKind::Dos => CanFrame::new(
                CanId::standard(0x000).expect("0 is a valid standard identifier"),
                &[0u8; 8],
            )
            .expect("8-byte payload"),
            AttackKind::Fuzzy => {
                let id = self.rng.gen_range(0..=0x7FFu16);
                let mut payload = [0u8; 8];
                self.rng.fill(&mut payload);
                CanFrame::new(CanId::standard(id).expect("masked to 11 bits"), &payload)
                    .expect("8-byte payload")
            }
            AttackKind::GearSpoof => {
                // Forged "neutral" gear status, fixed payload.
                CanFrame::new(
                    CanId::standard(0x43F).expect("valid identifier"),
                    &[0x01, 0x45, 0x60, 0xFF, 0x65, 0x00, 0x00, 0x00],
                )
                .expect("8-byte payload")
            }
            AttackKind::RpmSpoof => {
                // Forged high-RPM reading, fixed payload.
                CanFrame::new(
                    CanId::standard(0x316).expect("valid identifier"),
                    &[0x05, 0x20, 0x18, 0x10, 0x10, 0x27, 0x00, 0x2A],
                )
                .expect("8-byte payload")
            }
        }
    }
}

impl TrafficSource for AttackSource {
    fn next_frame(&mut self) -> Option<(SimTime, CanFrame)> {
        if self.next_time > self.horizon {
            return None;
        }
        let t = self.next_time;
        let frame = self.forge_frame();
        let naive_next = t + self.profile.period;
        self.next_time = self.profile.schedule.next_active(naive_next);
        Some((t, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_frames_are_zero_id_zero_payload() {
        let mut src = AttackProfile::dos()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(1, SimTime::from_millis(5));
        for _ in 0..10 {
            let (_, f) = src.next_frame().unwrap();
            assert_eq!(f.id().raw(), 0);
            assert_eq!(f.data(), &[0u8; 8]);
        }
    }

    #[test]
    fn dos_period_is_300_us() {
        let mut src = AttackProfile::dos()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(1, SimTime::from_millis(5));
        let (t0, _) = src.next_frame().unwrap();
        let (t1, _) = src.next_frame().unwrap();
        assert_eq!((t1 - t0).as_nanos(), 300_000);
    }

    #[test]
    fn fuzzy_frames_have_random_ids_and_payloads() {
        let mut src = AttackProfile::fuzzy()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(2, SimTime::from_secs(1));
        let mut ids = std::collections::HashSet::new();
        let mut payloads = std::collections::HashSet::new();
        for _ in 0..500 {
            let (_, f) = src.next_frame().unwrap();
            assert!(f.id().raw() <= 0x7FF);
            ids.insert(f.id().raw());
            payloads.insert(f.data().to_vec());
        }
        assert!(ids.len() > 200, "ids should span the space: {}", ids.len());
        assert!(payloads.len() > 490, "payloads should be unique-ish");
    }

    #[test]
    fn spoof_frames_use_legitimate_ids() {
        let mut gear = AttackProfile::gear_spoof()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(3, SimTime::from_millis(100));
        assert_eq!(gear.next_frame().unwrap().1.id().raw(), 0x43F);
        let mut rpm = AttackProfile::rpm_spoof()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(3, SimTime::from_millis(100));
        assert_eq!(rpm.next_frame().unwrap().1.id().raw(), 0x316);
    }

    #[test]
    fn burst_schedule_gates_injection() {
        let sched = BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(10),
            on: SimTime::from_millis(5),
            off: SimTime::from_millis(5),
        };
        assert!(!sched.active_at(SimTime::from_millis(3)));
        assert!(sched.active_at(SimTime::from_millis(12)));
        assert!(!sched.active_at(SimTime::from_millis(17)));
        assert!(sched.active_at(SimTime::from_millis(22)));
    }

    #[test]
    fn next_active_skips_quiet_phases() {
        let sched = BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(10),
            on: SimTime::from_millis(5),
            off: SimTime::from_millis(5),
        };
        assert_eq!(sched.next_active(SimTime::ZERO), SimTime::from_millis(10));
        assert_eq!(
            sched.next_active(SimTime::from_millis(12)),
            SimTime::from_millis(12)
        );
        assert_eq!(
            sched.next_active(SimTime::from_millis(16)),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn source_respects_bursts_and_horizon() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(1),
            on: SimTime::from_millis(2),
            off: SimTime::from_millis(2),
        });
        let mut src = profile.into_source(4, SimTime::from_millis(9));
        let mut times = Vec::new();
        while let Some((t, _)) = src.next_frame() {
            times.push(t);
        }
        assert!(!times.is_empty());
        for &t in &times {
            assert!(profile.schedule.active_at(t), "frame at inactive time {t}");
            assert!(t <= SimTime::from_millis(9));
        }
        // Both the first and second burst must be covered.
        assert!(times.iter().any(|t| *t < SimTime::from_millis(3)));
        assert!(times.iter().any(|t| *t >= SimTime::from_millis(5)));
    }

    #[test]
    fn kind_labels_match() {
        assert_eq!(AttackKind::Dos.label(), Label::Dos);
        assert_eq!(AttackKind::Fuzzy.label(), Label::Fuzzy);
        assert_eq!(AttackKind::GearSpoof.label(), Label::GearSpoof);
        assert_eq!(AttackKind::RpmSpoof.label(), Label::RpmSpoof);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mk = || {
            AttackProfile::fuzzy()
                .with_schedule(BurstSchedule::Continuous)
                .into_source(9, SimTime::from_millis(50))
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
