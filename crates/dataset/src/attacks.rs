//! Attack injectors replicating the Car Hacking dataset's attack traces.
//!
//! The published capture injects attacks from a malicious node attached to
//! the OBD-II port:
//!
//! * **DoS** — identifier `0x000` (wins every arbitration) with an 8-byte
//!   zero payload, injected every 0.3 ms;
//! * **Fuzzy** — uniformly random identifier and payload, every 0.5 ms;
//! * **Gear / RPM spoofing** — forged frames carrying a fixed gear status
//!   or RPM value on the legitimate identifier, every 1 ms (extension
//!   beyond the paper's DoS/Fuzzy scope).
//!
//! Injection is gated by a [`BurstSchedule`]: the real captures alternate
//! attack-on and attack-off intervals inside a 30–40 s trace.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use canids_can::bus::TrafficSource;
use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::record::Label;
use crate::vehicle::{VehicleModel, VehicleSource};

/// Which attack the injector mounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Bus flood with the highest-priority identifier.
    Dos,
    /// Random identifier + payload fuzzing.
    Fuzzy,
    /// Forged gear-status frames on identifier `0x43F`.
    GearSpoof,
    /// Forged RPM frames on identifier `0x316`.
    RpmSpoof,
    /// Re-injection of previously seen legitimate frames.
    Replay {
        /// Delay between observing a legitimate frame and re-injecting
        /// it.
        delay: SimTime,
    },
}

impl AttackKind {
    /// The ground-truth label injected frames carry.
    pub fn label(self) -> Label {
        match self {
            AttackKind::Dos => Label::Dos,
            AttackKind::Fuzzy => Label::Fuzzy,
            AttackKind::GearSpoof => Label::GearSpoof,
            AttackKind::RpmSpoof => Label::RpmSpoof,
            AttackKind::Replay { .. } => Label::Replay,
        }
    }

    /// The injection period used by the published capture (for replay:
    /// the minimum spacing between re-injected frames).
    pub fn default_period(self) -> SimTime {
        match self {
            AttackKind::Dos => SimTime::from_micros(300),
            AttackKind::Fuzzy => SimTime::from_micros(500),
            AttackKind::GearSpoof | AttackKind::RpmSpoof | AttackKind::Replay { .. } => {
                SimTime::from_millis(1)
            }
        }
    }

    /// Short kebab-case name (stable across variants with payloads, for
    /// IP-core names and report rows).
    pub fn slug(self) -> &'static str {
        match self {
            AttackKind::Dos => "dos",
            AttackKind::Fuzzy => "fuzzy",
            AttackKind::GearSpoof => "gear-spoof",
            AttackKind::RpmSpoof => "rpm-spoof",
            AttackKind::Replay { .. } => "replay",
        }
    }
}

/// On/off gating of the injection within the capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstSchedule {
    /// Inject for the whole capture.
    Continuous,
    /// Alternate `on` and `off` intervals, starting with `on` at
    /// `initial_delay`.
    Periodic {
        /// Delay before the first burst.
        initial_delay: SimTime,
        /// Burst (attack active) duration.
        on: SimTime,
        /// Quiet duration between bursts.
        off: SimTime,
    },
}

impl BurstSchedule {
    /// The capture-like default: 2 s bursts separated by 2 s of quiet,
    /// starting 1 s in.
    pub fn capture_default() -> Self {
        BurstSchedule::Periodic {
            initial_delay: SimTime::from_secs(1),
            on: SimTime::from_secs(2),
            off: SimTime::from_secs(2),
        }
    }

    /// Whether the attack is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        match *self {
            BurstSchedule::Continuous => true,
            BurstSchedule::Periodic {
                initial_delay,
                on,
                off,
            } => {
                if t < initial_delay {
                    return false;
                }
                let cycle = (on + off).as_nanos().max(1);
                let phase = (t - initial_delay).as_nanos() % cycle;
                phase < on.as_nanos()
            }
        }
    }

    /// Advances `t` to the next active instant (identity when already
    /// active).
    pub fn next_active(&self, t: SimTime) -> SimTime {
        match *self {
            BurstSchedule::Continuous => t,
            BurstSchedule::Periodic {
                initial_delay,
                on,
                off,
            } => {
                if t < initial_delay {
                    return initial_delay;
                }
                let cycle = (on + off).as_nanos().max(1);
                let phase = (t - initial_delay).as_nanos() % cycle;
                if phase < on.as_nanos() {
                    t
                } else {
                    t + SimTime::from_nanos(cycle - phase)
                }
            }
        }
    }
}

/// Full attack description: kind, injection period and burst gating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackProfile {
    /// Attack kind.
    pub kind: AttackKind,
    /// Interval between injected frames while a burst is active.
    pub period: SimTime,
    /// Burst gating.
    pub schedule: BurstSchedule,
}

impl AttackProfile {
    /// DoS profile with the capture's 0.3 ms period and default bursts.
    pub fn dos() -> Self {
        AttackProfile {
            kind: AttackKind::Dos,
            period: AttackKind::Dos.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Fuzzy profile with the capture's 0.5 ms period and default bursts.
    pub fn fuzzy() -> Self {
        AttackProfile {
            kind: AttackKind::Fuzzy,
            period: AttackKind::Fuzzy.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Gear-spoofing profile (extension).
    pub fn gear_spoof() -> Self {
        AttackProfile {
            kind: AttackKind::GearSpoof,
            period: AttackKind::GearSpoof.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// RPM-spoofing profile (extension).
    pub fn rpm_spoof() -> Self {
        AttackProfile {
            kind: AttackKind::RpmSpoof,
            period: AttackKind::RpmSpoof.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Replay profile (extension): legitimate frames observed on the bus
    /// are re-injected 50 ms later, at most one per millisecond.
    pub fn replay() -> Self {
        AttackProfile::replay_after(SimTime::from_millis(50))
    }

    /// Replay profile with an explicit observation-to-reinjection delay.
    pub fn replay_after(delay: SimTime) -> Self {
        let kind = AttackKind::Replay { delay };
        AttackProfile {
            kind,
            period: kind.default_period(),
            schedule: BurstSchedule::capture_default(),
        }
    }

    /// Replaces the burst schedule (builder style).
    pub fn with_schedule(mut self, schedule: BurstSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the injection period (builder style).
    pub fn with_period(mut self, period: SimTime) -> Self {
        self.period = period;
        self
    }

    /// Builds the traffic source mounted on the malicious node.
    pub fn into_source(self, seed: u64, horizon: SimTime) -> AttackSource {
        AttackSource::new(self, seed, horizon)
    }
}

/// The malicious node's [`TrafficSource`].
///
/// # Example
///
/// ```
/// use canids_dataset::attacks::{AttackProfile, BurstSchedule};
/// use canids_can::bus::TrafficSource;
/// use canids_can::time::SimTime;
///
/// let mut src = AttackProfile::dos()
///     .with_schedule(BurstSchedule::Continuous)
///     .into_source(1, SimTime::from_millis(10));
/// let (t, f) = src.next_frame().unwrap();
/// assert_eq!(f.id().raw(), 0x000);
/// assert_eq!(t, SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct AttackSource {
    profile: AttackProfile,
    rng: StdRng,
    next_time: SimTime,
    horizon: SimTime,
    replay: Option<ReplayFeed>,
}

/// The replay attacker's recording: a time-merged view of the vehicle's
/// legitimate transmissions, replayed `delay` after each frame was
/// observed. Built from the same model and seed as the capture's
/// transmitting ECUs, so the re-injected frames are byte-identical to
/// frames the bus carries.
///
/// Limitation: the recording reproduces the ECUs' *release* schedule,
/// not the arbitrated bus; when an overlaid attack saturates the bus
/// (e.g. a continuous DoS flood starving low-priority traffic), a
/// replayed frame may precede — or replace — the delayed original.
/// Accurate for the non-saturating captures replay scenarios use;
/// modelling an online bus tap is future work.
#[derive(Debug)]
struct ReplayFeed {
    sources: Vec<VehicleSource>,
    pending: Vec<Option<CanFrame>>,
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    delay: SimTime,
}

impl ReplayFeed {
    fn new(vehicle: VehicleModel, nodes: usize, vehicle_seed: u64, delay: SimTime) -> Self {
        let mut sources = vehicle.into_sources(nodes, vehicle_seed);
        let mut pending = vec![None; sources.len()];
        let mut heap = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some((t, f)) = src.next_frame() {
                pending[i] = Some(f);
                heap.push(Reverse((t, i)));
            }
        }
        ReplayFeed {
            sources,
            pending,
            heap,
            delay,
        }
    }

    /// The next legitimate frame in observation order.
    fn next_observed(&mut self) -> Option<(SimTime, CanFrame)> {
        let Reverse((t, i)) = self.heap.pop()?;
        let frame = self.pending[i].take().expect("heap entry has a frame");
        if let Some((tn, fn_)) = self.sources[i].next_frame() {
            self.pending[i] = Some(fn_);
            self.heap.push(Reverse((tn, i)));
        }
        Some((t, frame))
    }
}

impl AttackSource {
    /// Creates the source; injection stops at `horizon`.
    ///
    /// A [`AttackKind::Replay`] profile records the default vehicle
    /// ([`VehicleModel::sonata`] over four nodes, seeded from `seed`);
    /// use [`AttackSource::replay_of`] to replay a specific capture's
    /// own traffic.
    pub fn new(profile: AttackProfile, seed: u64, horizon: SimTime) -> Self {
        let replay = match profile.kind {
            AttackKind::Replay { delay } => {
                Some(ReplayFeed::new(VehicleModel::sonata(), 4, seed, delay))
            }
            _ => None,
        };
        AttackSource::with_feed(profile, seed, horizon, replay)
    }

    /// A replay source whose recording is `vehicle` split over `nodes`
    /// ECUs seeded with `vehicle_seed` — pass the capture's own
    /// parameters and the re-injected frames are exactly the frames the
    /// legitimate ECUs transmit, delayed by the profile's replay delay.
    /// `attacker_seed` individualises the attacker itself: two replay
    /// attackers share the recording (they observe the same bus) but
    /// stagger their injection phase, so overlaid duplicates interleave
    /// instead of colliding frame for frame.
    ///
    /// For non-replay profiles this is identical to [`AttackSource::new`].
    pub fn replay_of(
        profile: AttackProfile,
        vehicle: VehicleModel,
        nodes: usize,
        vehicle_seed: u64,
        attacker_seed: u64,
        horizon: SimTime,
    ) -> Self {
        let replay = match profile.kind {
            AttackKind::Replay { delay } => {
                Some(ReplayFeed::new(vehicle, nodes, vehicle_seed, delay))
            }
            _ => None,
        };
        AttackSource::with_feed(profile, attacker_seed, horizon, replay)
    }

    fn with_feed(
        profile: AttackProfile,
        seed: u64,
        horizon: SimTime,
        replay: Option<ReplayFeed>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA77A_C4E5_0D05_F00D);
        let mut replay = replay;
        if let Some(feed) = replay.as_mut() {
            // Seed-derived reaction-time offset within one period:
            // distinct replay attackers over the same recording
            // re-inject each observed frame at staggered instants
            // instead of colliding frame for frame.
            let phase = SimTime::from_nanos(rng.gen_range(0..=profile.period.as_nanos()));
            feed.delay += phase;
        }
        AttackSource {
            profile,
            rng,
            next_time: profile.schedule.next_active(SimTime::ZERO),
            horizon,
            replay,
        }
    }

    /// The profile this source mounts.
    pub fn profile(&self) -> AttackProfile {
        self.profile
    }

    fn forge_frame(&mut self) -> CanFrame {
        match self.profile.kind {
            AttackKind::Dos => CanFrame::new(
                CanId::standard(0x000).expect("0 is a valid standard identifier"),
                &[0u8; 8],
            )
            .expect("8-byte payload"),
            AttackKind::Fuzzy => {
                let id = self.rng.gen_range(0..=0x7FFu16);
                let mut payload = [0u8; 8];
                self.rng.fill(&mut payload);
                CanFrame::new(CanId::standard(id).expect("masked to 11 bits"), &payload)
                    .expect("8-byte payload")
            }
            AttackKind::GearSpoof => {
                // Forged "neutral" gear status, fixed payload.
                CanFrame::new(
                    CanId::standard(0x43F).expect("valid identifier"),
                    &[0x01, 0x45, 0x60, 0xFF, 0x65, 0x00, 0x00, 0x00],
                )
                .expect("8-byte payload")
            }
            AttackKind::RpmSpoof => {
                // Forged high-RPM reading, fixed payload.
                CanFrame::new(
                    CanId::standard(0x316).expect("valid identifier"),
                    &[0x05, 0x20, 0x18, 0x10, 0x10, 0x27, 0x00, 0x2A],
                )
                .expect("8-byte payload")
            }
            AttackKind::Replay { .. } => {
                unreachable!("replay frames come from the recorded feed")
            }
        }
    }

    /// Next replayed frame: the oldest recorded legitimate frame is
    /// re-injected `delay` after it was observed, pushed forward to the
    /// next active burst and rate-limited to one frame per `period`.
    fn next_replay(&mut self) -> Option<(SimTime, CanFrame)> {
        let feed = self.replay.as_mut()?;
        let (observed_at, frame) = feed.next_observed()?;
        let earliest = (observed_at + feed.delay).max(self.next_time);
        let t = self.profile.schedule.next_active(earliest);
        if t > self.horizon {
            return None;
        }
        self.next_time = t + self.profile.period;
        Some((t, frame))
    }
}

impl TrafficSource for AttackSource {
    fn next_frame(&mut self) -> Option<(SimTime, CanFrame)> {
        if self.replay.is_some() {
            return self.next_replay();
        }
        if self.next_time > self.horizon {
            return None;
        }
        let t = self.next_time;
        let frame = self.forge_frame();
        let naive_next = t + self.profile.period;
        self.next_time = self.profile.schedule.next_active(naive_next);
        Some((t, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_frames_are_zero_id_zero_payload() {
        let mut src = AttackProfile::dos()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(1, SimTime::from_millis(5));
        for _ in 0..10 {
            let (_, f) = src.next_frame().unwrap();
            assert_eq!(f.id().raw(), 0);
            assert_eq!(f.data(), &[0u8; 8]);
        }
    }

    #[test]
    fn dos_period_is_300_us() {
        let mut src = AttackProfile::dos()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(1, SimTime::from_millis(5));
        let (t0, _) = src.next_frame().unwrap();
        let (t1, _) = src.next_frame().unwrap();
        assert_eq!((t1 - t0).as_nanos(), 300_000);
    }

    #[test]
    fn fuzzy_frames_have_random_ids_and_payloads() {
        let mut src = AttackProfile::fuzzy()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(2, SimTime::from_secs(1));
        let mut ids = std::collections::BTreeSet::new();
        let mut payloads = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (_, f) = src.next_frame().unwrap();
            assert!(f.id().raw() <= 0x7FF);
            ids.insert(f.id().raw());
            payloads.insert(f.data().to_vec());
        }
        assert!(ids.len() > 200, "ids should span the space: {}", ids.len());
        assert!(payloads.len() > 490, "payloads should be unique-ish");
    }

    #[test]
    fn spoof_frames_use_legitimate_ids() {
        let mut gear = AttackProfile::gear_spoof()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(3, SimTime::from_millis(100));
        assert_eq!(gear.next_frame().unwrap().1.id().raw(), 0x43F);
        let mut rpm = AttackProfile::rpm_spoof()
            .with_schedule(BurstSchedule::Continuous)
            .into_source(3, SimTime::from_millis(100));
        assert_eq!(rpm.next_frame().unwrap().1.id().raw(), 0x316);
    }

    #[test]
    fn burst_schedule_gates_injection() {
        let sched = BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(10),
            on: SimTime::from_millis(5),
            off: SimTime::from_millis(5),
        };
        assert!(!sched.active_at(SimTime::from_millis(3)));
        assert!(sched.active_at(SimTime::from_millis(12)));
        assert!(!sched.active_at(SimTime::from_millis(17)));
        assert!(sched.active_at(SimTime::from_millis(22)));
    }

    #[test]
    fn next_active_skips_quiet_phases() {
        let sched = BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(10),
            on: SimTime::from_millis(5),
            off: SimTime::from_millis(5),
        };
        assert_eq!(sched.next_active(SimTime::ZERO), SimTime::from_millis(10));
        assert_eq!(
            sched.next_active(SimTime::from_millis(12)),
            SimTime::from_millis(12)
        );
        assert_eq!(
            sched.next_active(SimTime::from_millis(16)),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn source_respects_bursts_and_horizon() {
        let profile = AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
            initial_delay: SimTime::from_millis(1),
            on: SimTime::from_millis(2),
            off: SimTime::from_millis(2),
        });
        let mut src = profile.into_source(4, SimTime::from_millis(9));
        let mut times = Vec::new();
        while let Some((t, _)) = src.next_frame() {
            times.push(t);
        }
        assert!(!times.is_empty());
        for &t in &times {
            assert!(profile.schedule.active_at(t), "frame at inactive time {t}");
            assert!(t <= SimTime::from_millis(9));
        }
        // Both the first and second burst must be covered.
        assert!(times.iter().any(|t| *t < SimTime::from_millis(3)));
        assert!(times.iter().any(|t| *t >= SimTime::from_millis(5)));
    }

    #[test]
    fn kind_labels_match() {
        assert_eq!(AttackKind::Dos.label(), Label::Dos);
        assert_eq!(AttackKind::Fuzzy.label(), Label::Fuzzy);
        assert_eq!(AttackKind::GearSpoof.label(), Label::GearSpoof);
        assert_eq!(AttackKind::RpmSpoof.label(), Label::RpmSpoof);
        assert_eq!(
            AttackKind::Replay {
                delay: SimTime::from_millis(5)
            }
            .label(),
            Label::Replay
        );
        assert_eq!(AttackProfile::replay().kind.slug(), "replay");
    }

    #[test]
    fn replay_reinjects_previously_seen_frames_after_the_delay() {
        let delay = SimTime::from_millis(20);
        let profile = AttackProfile::replay_after(delay).with_schedule(BurstSchedule::Continuous);
        let vehicle_seed = 77u64;
        let horizon = SimTime::from_millis(300);
        // The attacker's recording, replayed...
        let mut src = AttackSource::replay_of(
            profile,
            VehicleModel::sonata(),
            4,
            vehicle_seed,
            vehicle_seed,
            horizon,
        );
        // ...must consist of frames the legitimate ECUs actually transmit.
        let mut legit: Vec<(SimTime, CanFrame)> = Vec::new();
        for mut s in VehicleModel::sonata().into_sources(4, vehicle_seed) {
            loop {
                match s.next_frame() {
                    Some((t, f)) if t <= horizon => legit.push((t, f)),
                    _ => break,
                }
            }
        }
        legit.sort_by_key(|&(t, _)| t);

        let mut count = 0usize;
        let mut last_t = SimTime::ZERO;
        while let Some((t, f)) = src.next_frame() {
            let (t0, expect) = legit[count];
            assert_eq!(f, expect, "replayed frame {count} differs from observed");
            assert!(t >= t0 + delay, "frame {count} replayed before the delay");
            assert!(t >= last_t, "replay times must be monotonic");
            assert!(t <= horizon);
            last_t = t;
            count += 1;
        }
        assert!(count > 50, "replay stream too short: {count}");
    }

    #[test]
    fn replay_respects_burst_gating_and_spacing() {
        let profile = AttackProfile::replay_after(SimTime::from_millis(5))
            .with_period(SimTime::from_millis(2))
            .with_schedule(BurstSchedule::Periodic {
                initial_delay: SimTime::from_millis(50),
                on: SimTime::from_millis(50),
                off: SimTime::from_millis(50),
            });
        let mut src = profile.into_source(3, SimTime::from_millis(400));
        let mut times = Vec::new();
        while let Some((t, _)) = src.next_frame() {
            assert!(profile.schedule.active_at(t), "injection at quiet time {t}");
            times.push(t);
        }
        assert!(!times.is_empty());
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= SimTime::from_millis(2), "period floor");
        }
    }

    #[test]
    fn duplicate_replay_attackers_stagger_their_injections() {
        // Two replay attackers observe the same bus (same recording) but
        // must not collide frame for frame: the attacker seed staggers
        // the injection phase.
        let profile = AttackProfile::replay_after(SimTime::from_millis(10))
            .with_schedule(BurstSchedule::Continuous);
        let horizon = SimTime::from_millis(200);
        let mk = |attacker_seed: u64| {
            AttackSource::replay_of(
                profile,
                VehicleModel::sonata(),
                4,
                55,
                attacker_seed,
                horizon,
            )
        };
        let times = |mut src: AttackSource| {
            let mut ts = Vec::new();
            while let Some((t, _)) = src.next_frame() {
                ts.push(t);
            }
            ts
        };
        let a = times(mk(1));
        let b = times(mk(2));
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "distinct attacker seeds must stagger injections");
        // Same attacker seed stays deterministic.
        assert_eq!(a, times(mk(1)));
    }

    #[test]
    fn replay_source_is_deterministic() {
        let mk = || {
            AttackProfile::replay()
                .with_schedule(BurstSchedule::Continuous)
                .into_source(11, SimTime::from_millis(100))
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..50 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mk = || {
            AttackProfile::fuzzy()
                .with_schedule(BurstSchedule::Continuous)
                .into_source(9, SimTime::from_millis(50))
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
