//! Block/window views of a capture, as consumed by the block-based
//! literature IDSs (DCNN: 29×29 identifier-bit grids; TCAN: 64-frame
//! feature windows). The paper's QMLP is per-message, so these views
//! exist to drive the baseline comparisons.

use crate::features::{FrameEncoder, IdPayloadBytes};
use crate::generator::Dataset;
use crate::record::LabeledFrame;

/// A labelled block of consecutive frames.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBlock {
    /// The frames, in capture order.
    pub frames: Vec<LabeledFrame>,
    /// `true` when any frame in the block is an attack (block-level
    /// ground truth, as the block-based papers define it).
    pub contains_attack: bool,
}

impl FrameBlock {
    /// The DCNN input: a `width × width` grid where row `i` is frame
    /// `i`'s identifier expanded to `width` bits (zero-padded).
    ///
    /// Standard frames contribute their 11 identifier bits, extended
    /// frames their full 29 bits (MSB first in both cases) — a 29-wide
    /// grid therefore sees the whole extended identifier rather than a
    /// silently truncated base ID.
    ///
    /// # Panics
    ///
    /// Panics when the block length differs from `width`.
    pub fn id_grid(&self, width: usize) -> Vec<f32> {
        assert_eq!(self.frames.len(), width, "block length must equal width");
        let mut grid = vec![0.0f32; width * width];
        for (row, rec) in self.frames.iter().enumerate() {
            let id = rec.frame.id();
            let bits = if id.is_extended() { 29 } else { 11 };
            let raw = id.raw();
            for col in 0..width.min(bits) {
                grid[row * width + col] = ((raw >> (bits - 1 - col)) & 1) as f32;
            }
        }
        grid
    }

    /// The TCAN-style window: one compact feature row per frame.
    pub fn feature_rows(&self) -> Vec<Vec<f32>> {
        let enc = IdPayloadBytes;
        self.frames.iter().map(|r| enc.encode(&r.frame)).collect()
    }
}

/// Non-overlapping blocks of `len` consecutive frames (the trailing
/// partial block is dropped, as the block-based papers do).
pub fn blocks(dataset: &Dataset, len: usize) -> Vec<FrameBlock> {
    dataset
        .records()
        .chunks_exact(len.max(1))
        .map(|chunk| FrameBlock {
            frames: chunk.to_vec(),
            contains_attack: chunk.iter().any(|r| r.label.is_attack()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{AttackProfile, BurstSchedule};
    use crate::generator::{DatasetBuilder, TrafficConfig};
    use canids_can::time::SimTime;

    fn capture(attack: bool) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(300),
            attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed: 5,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn blocks_partition_without_remainder() {
        let ds = capture(false);
        let bs = blocks(&ds, 29);
        assert_eq!(bs.len(), ds.len() / 29);
        assert!(bs.iter().all(|b| b.frames.len() == 29));
        assert!(bs.iter().all(|b| !b.contains_attack));
    }

    #[test]
    fn attack_blocks_are_flagged() {
        let ds = capture(true);
        let bs = blocks(&ds, 29);
        let flagged = bs.iter().filter(|b| b.contains_attack).count();
        // The continuous DoS flood touches essentially every block.
        assert!(flagged * 10 > bs.len() * 9, "{flagged}/{}", bs.len());
    }

    #[test]
    fn id_grid_shape_and_content() {
        let ds = capture(false);
        let b = &blocks(&ds, 29)[0];
        let grid = b.id_grid(29);
        assert_eq!(grid.len(), 29 * 29);
        assert!(grid.iter().all(|&v| v == 0.0 || v == 1.0));
        // Row 0 encodes frame 0's identifier MSB-first.
        let id = b.frames[0].frame.id().base_id();
        assert_eq!(grid[0], f32::from((id >> 10) & 1));
    }

    #[test]
    fn feature_rows_match_block_length() {
        let ds = capture(false);
        let b = &blocks(&ds, 64)[0];
        let rows = b.feature_rows();
        assert_eq!(rows.len(), 64);
        assert!(rows.iter().all(|r| r.len() == 10));
    }

    #[test]
    fn id_grid_encodes_full_extended_identifier() {
        use crate::record::{Label, LabeledFrame};
        use canids_can::frame::{CanFrame, CanId};

        // One extended frame whose low 18 bits are non-zero: truncating
        // to the 11-bit base ID would lose them.
        let ext_id = 0x1ABC_DEF5u32; // 29-bit, mixed bit pattern
        let width = 29;
        let frames: Vec<LabeledFrame> = (0..width)
            .map(|i| {
                let id = if i == 0 {
                    CanId::extended(ext_id).unwrap()
                } else {
                    CanId::standard(0x316).unwrap()
                };
                LabeledFrame::new(
                    SimTime::from_micros(i as u64 * 100),
                    CanFrame::new(id, &[0; 8]).unwrap(),
                    Label::Normal,
                )
            })
            .collect();
        let block = FrameBlock {
            frames,
            contains_attack: false,
        };
        let grid = block.id_grid(width);
        // Row 0: all 29 bits of the extended identifier, MSB first.
        for (col, &got) in grid.iter().take(29).enumerate() {
            let want = ((ext_id >> (28 - col)) & 1) as f32;
            assert_eq!(got, want, "extended bit {col}");
        }
        // Row 1: a standard frame still uses its 11 bits, zero-padded.
        for col in 0..11 {
            let want = ((0x316u32 >> (10 - col)) & 1) as f32;
            assert_eq!(grid[width + col], want, "standard bit {col}");
        }
        assert!(grid[width + 11..2 * width].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn id_grid_validates_width() {
        let ds = capture(false);
        let b = &blocks(&ds, 29)[0];
        let _ = b.id_grid(16);
    }
}
