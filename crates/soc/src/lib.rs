//! Zynq UltraScale+ SoC/ECU substrate.
//!
//! The paper integrates its quantised-MLP IDS as a memory-mapped
//! accelerator next to a software ECU stack on a ZCU104 board. This
//! crate is that platform, in simulation:
//!
//! * [`axi`] — the AXI-Lite interconnect and the [`axi::MmioDevice`]
//!   peripheral trait,
//! * [`cpu`] — the Cortex-A53 + Linux (PYNQ) software cost model that
//!   dominates the end-to-end 0.12 ms per-message latency,
//! * [`accel`] — the FINN-style IP as an MMIO peripheral,
//! * [`cancontroller`] — a CANPS-style CAN controller peripheral,
//! * [`interrupt`] — a GIC-lite interrupt controller,
//! * [`driver`] — the PYNQ-like userspace inference driver,
//! * [`power_rails`] — PMBus-style rail measurement and energy
//!   integration (the paper's 2.09 W / 0.25 mJ methodology),
//! * [`board`] — the assembled ZCU104,
//! * [`ecu`] — the integrated IDS ECU service loop of Fig. 1.
//!
//! # Example
//!
//! ```
//! use canids_soc::prelude::*;
//! use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
//! use canids_qnn::prelude::*;
//!
//! let mlp = QuantMlp::new(MlpConfig::default())?;
//! let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
//! let mut board = Zcu104Board::new(BoardConfig::default());
//! let idx = board.attach_accelerator(ip)?;
//!
//! // One driver call: the paper's per-message processing path.
//! let record = board.infer(idx, &[0.0f32; 75])?;
//! assert!((0.09..0.13).contains(&record.latency().as_millis_f64()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod accel;
pub mod axi;
pub mod board;
pub mod cancontroller;
pub mod cpu;
pub mod dma;
pub mod driver;
pub mod ecu;
pub mod error;
pub mod interrupt;
pub mod power_rails;

pub use accel::{pack_features, AccelPeripheral};
pub use axi::{AxiInterconnect, MmioDevice};
pub use board::{BoardConfig, Zcu104Board, ACCEL_BASE, ACCEL_STRIDE};
pub use cancontroller::CanPeripheral;
pub use cpu::CpuModel;
pub use dma::{
    run_batch, run_batch_multi, run_batch_shared, BatchReport, DmaConfig, FeatureBatch,
    MultiBatchReport,
};
pub use driver::{run_inference, run_inference_irq, InferenceBreakdown, InferenceRecord};
pub use ecu::{
    Detection, EcuConfig, EcuReport, EcuStream, FrameFeaturizer, IdsEcu, SchedPolicy, ServiceQueue,
    StageSample,
};
pub use error::SocError;
pub use interrupt::{accel_irq_line, InterruptController};
pub use power_rails::{BoardPowerModel, PowerMonitor, Rail};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::accel::pack_features;
    pub use crate::board::{BoardConfig, Zcu104Board};
    pub use crate::cpu::CpuModel;
    pub use crate::dma::{DmaConfig, FeatureBatch};
    pub use crate::driver::{InferenceBreakdown, InferenceRecord};
    pub use crate::ecu::{
        Detection, EcuConfig, EcuReport, EcuStream, FrameFeaturizer, IdsEcu, SchedPolicy,
        ServiceQueue, StageSample,
    };
    pub use crate::error::SocError;
    pub use crate::power_rails::{BoardPowerModel, PowerMonitor};
}
