//! AXI-Lite interconnect model.
//!
//! Peripherals implement [`MmioDevice`] and are mapped into the global
//! address space. Transactions are time-aware: the caller passes the
//! current simulation time so peripherals with internal timing (the
//! accelerator's busy/done status, FIFO occupancy) respond consistently.
//! Transaction latency itself is accounted by the CPU cost model
//! ([`crate::cpu`]) — from Linux userspace the software overhead dwarfs
//! the fabric's few-cycle response.

use canids_can::time::SimTime;

use crate::error::SocError;

/// A memory-mapped peripheral occupying a contiguous region.
pub trait MmioDevice {
    /// Reads the 32-bit register at `offset` (bytes from region base).
    fn read(&mut self, offset: u32, now: SimTime) -> Result<u32, SocError>;

    /// Writes the 32-bit register at `offset`.
    fn write(&mut self, offset: u32, value: u32, now: SimTime) -> Result<(), SocError>;

    /// Human-readable peripheral name (diagnostics).
    fn name(&self) -> &str;
}

struct Region {
    base: u64,
    size: u64,
    device: Box<dyn MmioDevice>,
}

/// The AXI-Lite interconnect: address decode + routing.
///
/// # Example
///
/// ```
/// use canids_soc::axi::{AxiInterconnect, MmioDevice};
/// use canids_soc::error::SocError;
/// use canids_can::time::SimTime;
///
/// struct Scratch(u32);
/// impl MmioDevice for Scratch {
///     fn read(&mut self, _o: u32, _t: SimTime) -> Result<u32, SocError> { Ok(self.0) }
///     fn write(&mut self, _o: u32, v: u32, _t: SimTime) -> Result<(), SocError> {
///         self.0 = v;
///         Ok(())
///     }
///     fn name(&self) -> &str { "scratch" }
/// }
///
/// let mut bus = AxiInterconnect::new();
/// bus.map(0xA000_0000, 0x1000, Box::new(Scratch(0)))?;
/// bus.write(0xA000_0004, 42, SimTime::ZERO)?;
/// assert_eq!(bus.read(0xA000_0004, SimTime::ZERO)?, 42);
/// # Ok::<(), canids_soc::SocError>(())
/// ```
#[derive(Default)]
pub struct AxiInterconnect {
    regions: Vec<Region>,
    reads: u64,
    writes: u64,
}

impl std::fmt::Debug for AxiInterconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AxiInterconnect")
            .field("regions", &self.regions.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl AxiInterconnect {
    /// Creates an empty interconnect.
    pub fn new() -> Self {
        AxiInterconnect::default()
    }

    /// Maps `device` at `[base, base+size)`.
    ///
    /// # Errors
    ///
    /// [`SocError::OverlappingRegion`] when the range intersects an
    /// existing mapping.
    pub fn map(
        &mut self,
        base: u64,
        size: u64,
        device: Box<dyn MmioDevice>,
    ) -> Result<(), SocError> {
        let end = base + size;
        for r in &self.regions {
            let r_end = r.base + r.size;
            if base < r_end && r.base < end {
                return Err(SocError::OverlappingRegion { base, size });
            }
        }
        self.regions.push(Region { base, size, device });
        Ok(())
    }

    fn route(&mut self, addr: u64) -> Result<(&mut Region, u32), SocError> {
        for r in &mut self.regions {
            if addr >= r.base && addr < r.base + r.size {
                let offset = (addr - r.base) as u32;
                return Ok((r, offset));
            }
        }
        Err(SocError::UnmappedAddress(addr))
    }

    /// 32-bit read at an absolute address.
    ///
    /// # Errors
    ///
    /// [`SocError::UnmappedAddress`] or the peripheral's own error.
    pub fn read(&mut self, addr: u64, now: SimTime) -> Result<u32, SocError> {
        self.reads += 1;
        let (region, offset) = self.route(addr)?;
        region.device.read(offset, now)
    }

    /// 32-bit write at an absolute address.
    ///
    /// # Errors
    ///
    /// [`SocError::UnmappedAddress`] or the peripheral's own error.
    pub fn write(&mut self, addr: u64, value: u32, now: SimTime) -> Result<(), SocError> {
        self.writes += 1;
        let (region, offset) = self.route(addr)?;
        region.device.write(offset, value, now)
    }

    /// Total transactions issued (reads, writes).
    pub fn transaction_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Exclusive access to the device mapped at `base` (for board-level
    /// wiring such as frame injection into the CAN peripheral).
    pub fn device_at(&mut self, base: u64) -> Option<&mut (dyn MmioDevice + '_)> {
        self.regions
            .iter_mut()
            .find(|r| r.base == base)
            .map(|r| &mut *r.device as &mut dyn MmioDevice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch {
        regs: [u32; 4],
    }

    impl MmioDevice for Scratch {
        fn read(&mut self, offset: u32, _now: SimTime) -> Result<u32, SocError> {
            Ok(self.regs[(offset / 4) as usize % 4])
        }
        fn write(&mut self, offset: u32, value: u32, _now: SimTime) -> Result<(), SocError> {
            self.regs[(offset / 4) as usize % 4] = value;
            Ok(())
        }
        fn name(&self) -> &str {
            "scratch"
        }
    }

    fn bus_with_scratch() -> AxiInterconnect {
        let mut bus = AxiInterconnect::new();
        bus.map(0xA000_0000, 0x1000, Box::new(Scratch { regs: [0; 4] }))
            .unwrap();
        bus
    }

    #[test]
    fn read_write_round_trip() {
        let mut bus = bus_with_scratch();
        bus.write(0xA000_0008, 0xDEAD_BEEF, SimTime::ZERO).unwrap();
        assert_eq!(bus.read(0xA000_0008, SimTime::ZERO).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut bus = bus_with_scratch();
        assert_eq!(
            bus.read(0xB000_0000, SimTime::ZERO).unwrap_err(),
            SocError::UnmappedAddress(0xB000_0000)
        );
    }

    #[test]
    fn overlapping_map_rejected() {
        let mut bus = bus_with_scratch();
        let err = bus
            .map(0xA000_0800, 0x1000, Box::new(Scratch { regs: [0; 4] }))
            .unwrap_err();
        assert!(matches!(err, SocError::OverlappingRegion { .. }));
        // Adjacent regions are fine.
        bus.map(0xA000_1000, 0x1000, Box::new(Scratch { regs: [0; 4] }))
            .unwrap();
    }

    #[test]
    fn transaction_counters() {
        let mut bus = bus_with_scratch();
        let _ = bus.read(0xA000_0000, SimTime::ZERO);
        let _ = bus.write(0xA000_0000, 1, SimTime::ZERO);
        let _ = bus.write(0xA000_0004, 2, SimTime::ZERO);
        assert_eq!(bus.transaction_counts(), (1, 2));
    }

    #[test]
    fn device_at_finds_by_base() {
        let mut bus = bus_with_scratch();
        assert!(bus.device_at(0xA000_0000).is_some());
        assert!(bus.device_at(0xA000_0004).is_none(), "lookup is by base");
    }
}
