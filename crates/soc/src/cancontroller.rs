//! The CAN controller peripheral (Xilinx CANPS-style).
//!
//! A memory-mapped wrapper around [`canids_can::CanController`]: received
//! frames land in the hardware RX FIFO and the PS reads them out through
//! the ID/DLC/DW1/DW2 register sequence, exactly as the `canps` driver
//! does on a real Zynq. The IDS ECU's "scan every message" configuration
//! uses an empty acceptance-filter bank.

use canids_can::frame::{CanFrame, CanId};
use canids_can::node::{CanController, RxFrame};
use canids_can::time::SimTime;

use crate::axi::MmioDevice;
use crate::error::SocError;

/// Interrupt-status register offset.
pub const ISR: u32 = 0x1C;
/// Status register offset.
pub const SR: u32 = 0x18;
/// RX FIFO identifier register.
pub const RXFIFO_ID: u32 = 0x50;
/// RX FIFO DLC register.
pub const RXFIFO_DLC: u32 = 0x54;
/// RX FIFO data word 1 (bytes 0..4).
pub const RXFIFO_DW1: u32 = 0x58;
/// RX FIFO data word 2 (bytes 4..8); reading it pops the frame.
pub const RXFIFO_DW2: u32 = 0x5C;

/// `ISR`/`SR` bit: RX FIFO not empty.
pub const RXNEMP: u32 = 1 << 7;

/// The memory-mapped CAN controller.
#[derive(Debug, Clone)]
pub struct CanPeripheral {
    controller: CanController,
    /// Frame currently latched at the FIFO head register window.
    head: Option<RxFrame>,
}

impl CanPeripheral {
    /// Wraps a protocol controller as a peripheral.
    pub fn new(controller: CanController) -> Self {
        CanPeripheral {
            controller,
            head: None,
        }
    }

    /// The wrapped protocol controller (e.g. to inspect statistics).
    pub fn controller(&self) -> &CanController {
        &self.controller
    }

    /// Delivers a frame from the bus side at `timestamp`.
    pub fn deliver(&mut self, timestamp: SimTime, frame: CanFrame) {
        self.controller.on_rx(timestamp, frame);
    }

    /// Frames waiting (FIFO plus latched head).
    pub fn rx_pending(&self) -> usize {
        self.controller.rx_pending() + usize::from(self.head.is_some())
    }

    fn latch_head(&mut self) -> Option<&RxFrame> {
        if self.head.is_none() {
            self.head = self.controller.pop_rx();
        }
        self.head.as_ref()
    }
}

impl MmioDevice for CanPeripheral {
    fn read(&mut self, offset: u32, _now: SimTime) -> Result<u32, SocError> {
        match offset {
            ISR | SR => {
                let mut bits = 0;
                if self.rx_pending() > 0 {
                    bits |= RXNEMP;
                }
                Ok(bits)
            }
            RXFIFO_ID => match self.latch_head() {
                // CANPS layout: standard ID in bits [31:21].
                Some(rx) => Ok(u32::from(rx.frame.id().base_id()) << 21),
                None => Err(SocError::AccessViolation {
                    addr: u64::from(offset),
                    reason: "RX FIFO empty",
                }),
            },
            RXFIFO_DLC => match self.latch_head() {
                Some(rx) => Ok(u32::from(rx.frame.dlc().value()) << 28),
                None => Err(SocError::AccessViolation {
                    addr: u64::from(offset),
                    reason: "RX FIFO empty",
                }),
            },
            RXFIFO_DW1 => match self.latch_head() {
                Some(rx) => {
                    let d = rx.frame.data_padded();
                    Ok(u32::from_be_bytes([d[0], d[1], d[2], d[3]]))
                }
                None => Err(SocError::AccessViolation {
                    addr: u64::from(offset),
                    reason: "RX FIFO empty",
                }),
            },
            RXFIFO_DW2 => match self.latch_head().cloned() {
                Some(rx) => {
                    let d = rx.frame.data_padded();
                    self.head = None; // reading DW2 pops the frame
                    Ok(u32::from_be_bytes([d[4], d[5], d[6], d[7]]))
                }
                None => Err(SocError::AccessViolation {
                    addr: u64::from(offset),
                    reason: "RX FIFO empty",
                }),
            },
            o => Err(SocError::AccessViolation {
                addr: u64::from(o),
                reason: "unknown register",
            }),
        }
    }

    fn write(&mut self, offset: u32, _value: u32, _now: SimTime) -> Result<(), SocError> {
        match offset {
            // Mode/config writes are accepted and ignored by this model.
            0x00 | 0x04 | 0x08 | ISR => Ok(()),
            o => Err(SocError::AccessViolation {
                addr: u64::from(o),
                reason: "register is read-only or unknown",
            }),
        }
    }

    fn name(&self) -> &str {
        "canps"
    }
}

/// Reads one frame out of the peripheral through the register sequence,
/// as the kernel driver would. Returns `None` when the FIFO is empty.
pub fn read_frame(dev: &mut CanPeripheral, now: SimTime) -> Option<CanFrame> {
    if dev.read(ISR, now).ok()? & RXNEMP == 0 {
        return None;
    }
    let id_reg = dev.read(RXFIFO_ID, now).ok()?;
    let dlc_reg = dev.read(RXFIFO_DLC, now).ok()?;
    let dw1 = dev.read(RXFIFO_DW1, now).ok()?;
    let dw2 = dev.read(RXFIFO_DW2, now).ok()?;
    let id = CanId::standard_from_raw((id_reg >> 21) & 0x7FF).ok()?;
    let dlc = ((dlc_reg >> 28) & 0xF) as usize;
    let b1 = dw1.to_be_bytes();
    let b2 = dw2.to_be_bytes();
    let payload = [b1[0], b1[1], b1[2], b1[3], b2[0], b2[1], b2[2], b2[3]];
    CanFrame::new(id, &payload[..dlc.min(8)]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u16, payload: &[u8]) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), payload).unwrap()
    }

    #[test]
    fn delivered_frame_reads_back_exactly() {
        let mut dev = CanPeripheral::new(CanController::default());
        let f = frame(0x316, &[1, 2, 3, 4, 5, 6, 7, 8]);
        dev.deliver(SimTime::from_micros(5), f);
        assert_eq!(read_frame(&mut dev, SimTime::ZERO), Some(f));
        assert_eq!(read_frame(&mut dev, SimTime::ZERO), None);
    }

    #[test]
    fn short_frames_preserve_dlc() {
        let mut dev = CanPeripheral::new(CanController::default());
        let f = frame(0x43F, &[0xAA, 0xBB]);
        dev.deliver(SimTime::ZERO, f);
        let back = read_frame(&mut dev, SimTime::ZERO).unwrap();
        assert_eq!(back.dlc().value(), 2);
        assert_eq!(back.data(), &[0xAA, 0xBB]);
    }

    #[test]
    fn isr_reports_rx_not_empty() {
        let mut dev = CanPeripheral::new(CanController::default());
        assert_eq!(dev.read(ISR, SimTime::ZERO).unwrap() & RXNEMP, 0);
        dev.deliver(SimTime::ZERO, frame(0x1, &[]));
        assert_ne!(dev.read(ISR, SimTime::ZERO).unwrap() & RXNEMP, 0);
    }

    #[test]
    fn empty_fifo_reads_are_violations() {
        let mut dev = CanPeripheral::new(CanController::default());
        assert!(dev.read(RXFIFO_ID, SimTime::ZERO).is_err());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut dev = CanPeripheral::new(CanController::default());
        for id in [0x100u16, 0x200, 0x300] {
            dev.deliver(SimTime::ZERO, frame(id, &[id.to_le_bytes()[0]]));
        }
        for id in [0x100u16, 0x200, 0x300] {
            let f = read_frame(&mut dev, SimTime::ZERO).unwrap();
            assert_eq!(f.id().raw(), u32::from(id));
        }
    }

    #[test]
    fn mode_writes_accepted() {
        let mut dev = CanPeripheral::new(CanController::default());
        dev.write(0x00, 1, SimTime::ZERO).unwrap();
        assert!(dev.write(0x70, 1, SimTime::ZERO).is_err());
    }
}
