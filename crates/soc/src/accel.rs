//! The accelerator as a memory-mapped peripheral.
//!
//! Wraps a compiled [`AcceleratorIp`] behind its AXI-Lite register map:
//! the PS packs the 75 input bits into three 32-bit words, pulses
//! `CTRL.start`, polls `STATUS.done` and reads the class register — the
//! same handshake the FINN-generated stitched IP exposes. Completion
//! timing comes from the IP's cycle-accurate latency at the PL clock.

use canids_can::time::SimTime;
use canids_dataflow::ip::{AcceleratorIp, RegisterMap};

use crate::axi::MmioDevice;
use crate::error::SocError;

/// `STATUS` bit 0: result valid.
pub const STATUS_DONE: u32 = 1 << 0;
/// `STATUS` bit 1: datapath idle.
pub const STATUS_IDLE: u32 = 1 << 1;
/// `CTRL` bit 0: start (self-clearing).
pub const CTRL_START: u32 = 1 << 0;

/// The accelerator IP mapped into PS address space.
#[derive(Debug, Clone)]
pub struct AccelPeripheral {
    ip: AcceleratorIp,
    input_words: Vec<u32>,
    busy_until: Option<SimTime>,
    result_class: u32,
    result_scores: Vec<i64>,
    done_sticky: bool,
    inferences: u64,
    busy_time: SimTime,
}

impl AccelPeripheral {
    /// Wraps an IP as a peripheral.
    pub fn new(ip: AcceleratorIp) -> Self {
        let words = ip.input_words() as usize;
        AccelPeripheral {
            ip,
            input_words: vec![0; words],
            busy_until: None,
            result_class: 0,
            result_scores: Vec::new(),
            done_sticky: false,
            inferences: 0,
            busy_time: SimTime::ZERO,
        }
    }

    /// The wrapped IP.
    pub fn ip(&self) -> &AcceleratorIp {
        &self.ip
    }

    /// Completed inference count.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// Accumulated datapath-busy time (drives the activity factor of the
    /// power model).
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Whether the datapath is busy at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        matches!(self.busy_until, Some(t) if now < t)
    }

    fn unpack_input(&self) -> Vec<u32> {
        let dim = self.ip.input_dim();
        let mut bits = Vec::with_capacity(dim);
        for i in 0..dim {
            let word = self.input_words[i / 32];
            bits.push((word >> (i % 32)) & 1);
        }
        bits
    }

    fn start(&mut self, now: SimTime) -> Result<(), SocError> {
        if self.is_busy(now) {
            return Err(SocError::DeviceBusy);
        }
        let x = self.unpack_input();
        let (class, scores) = self.ip.infer(&x);
        let latency =
            SimTime::from_nanos(self.ip.latency_cycles() * 1_000_000_000 / self.ip.clock_hz());
        self.busy_until = Some(now + latency);
        self.busy_time += latency;
        self.result_class = class as u32;
        self.result_scores = scores;
        self.done_sticky = false;
        self.inferences += 1;
        Ok(())
    }
}

impl MmioDevice for AccelPeripheral {
    fn read(&mut self, offset: u32, now: SimTime) -> Result<u32, SocError> {
        match offset {
            RegisterMap::CTRL => Ok(0),
            RegisterMap::STATUS => {
                let mut status = 0;
                match self.busy_until {
                    Some(t) if now < t => {}
                    Some(_) => {
                        self.done_sticky = true;
                        status |= STATUS_DONE | STATUS_IDLE;
                    }
                    None => status |= STATUS_IDLE,
                }
                if self.done_sticky {
                    status |= STATUS_DONE;
                }
                Ok(status)
            }
            RegisterMap::OUT_CLASS => {
                if !self.done_sticky && self.busy_until.is_none() {
                    return Err(SocError::AccessViolation {
                        addr: u64::from(offset),
                        reason: "result read before any inference",
                    });
                }
                Ok(self.result_class)
            }
            o if o >= RegisterMap::OUT_SCORE_BASE
                && o < RegisterMap::OUT_SCORE_BASE + 4 * self.result_scores.len() as u32 =>
            {
                let idx = ((o - RegisterMap::OUT_SCORE_BASE) / 4) as usize;
                // Scores are i64; the register exposes the low 32 bits
                // (sufficient for the 2-class IDS decision margins).
                Ok(self.result_scores[idx] as u32)
            }
            o if o >= RegisterMap::INPUT_BASE
                && o < RegisterMap::INPUT_BASE + 4 * self.input_words.len() as u32 =>
            {
                Err(SocError::AccessViolation {
                    addr: u64::from(o),
                    reason: "input registers are write-only",
                })
            }
            o => Err(SocError::AccessViolation {
                addr: u64::from(o),
                reason: "unknown register",
            }),
        }
    }

    fn write(&mut self, offset: u32, value: u32, now: SimTime) -> Result<(), SocError> {
        match offset {
            RegisterMap::CTRL => {
                if value & CTRL_START != 0 {
                    self.start(now)?;
                }
                Ok(())
            }
            o if o >= RegisterMap::INPUT_BASE
                && o < RegisterMap::INPUT_BASE + 4 * self.input_words.len() as u32 =>
            {
                if self.is_busy(now) {
                    return Err(SocError::DeviceBusy);
                }
                let idx = ((o - RegisterMap::INPUT_BASE) / 4) as usize;
                self.input_words[idx] = value;
                Ok(())
            }
            o => Err(SocError::AccessViolation {
                addr: u64::from(o),
                reason: "register is read-only or unknown",
            }),
        }
    }

    fn name(&self) -> &str {
        self.ip.name()
    }
}

/// Packs binary features into the 32-bit words the peripheral expects.
///
/// # Example
///
/// ```
/// use canids_soc::accel::pack_features;
///
/// let bits = vec![1.0_f32; 33];
/// let words = pack_features(&bits);
/// assert_eq!(words.len(), 2);
/// assert_eq!(words[0], u32::MAX);
/// assert_eq!(words[1], 1);
/// ```
pub fn pack_features(bits: &[f32]) -> Vec<u32> {
    let mut words = vec![0u32; bits.len().div_ceil(32)];
    for (i, &b) in bits.iter().enumerate() {
        if b >= 0.5 {
            words[i / 32] |= 1 << (i % 32);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataflow::ip::CompileConfig;
    use canids_qnn::prelude::*;

    fn peripheral() -> AccelPeripheral {
        let mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        let ip = AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap();
        AccelPeripheral::new(ip)
    }

    fn write_input(p: &mut AccelPeripheral, bits: &[f32], now: SimTime) {
        for (i, w) in pack_features(bits).into_iter().enumerate() {
            p.write(RegisterMap::INPUT_BASE + 4 * i as u32, w, now)
                .unwrap();
        }
    }

    #[test]
    fn full_handshake_produces_result() {
        let mut p = peripheral();
        let bits = vec![1.0f32; 75];
        let t0 = SimTime::from_micros(10);
        write_input(&mut p, &bits, t0);
        p.write(RegisterMap::CTRL, CTRL_START, t0).unwrap();

        // Immediately after start: busy, not done.
        let status = p.read(RegisterMap::STATUS, t0).unwrap();
        assert_eq!(status & STATUS_DONE, 0);

        // After the compute latency: done.
        let t1 = t0 + SimTime::from_micros(100);
        let status = p.read(RegisterMap::STATUS, t1).unwrap();
        assert_ne!(status & STATUS_DONE, 0);

        let class = p.read(RegisterMap::OUT_CLASS, t1).unwrap();
        let expect = p.ip().infer(&[1u32; 75]).0 as u32;
        assert_eq!(class, expect);
        assert_eq!(p.inferences(), 1);
    }

    #[test]
    fn busy_device_rejects_start_and_input() {
        let mut p = peripheral();
        let t0 = SimTime::ZERO;
        write_input(&mut p, &[0.0; 75], t0);
        p.write(RegisterMap::CTRL, CTRL_START, t0).unwrap();
        assert_eq!(
            p.write(RegisterMap::CTRL, CTRL_START, t0).unwrap_err(),
            SocError::DeviceBusy
        );
        assert_eq!(
            p.write(RegisterMap::INPUT_BASE, 1, t0).unwrap_err(),
            SocError::DeviceBusy
        );
    }

    #[test]
    fn input_registers_are_write_only() {
        let mut p = peripheral();
        let err = p.read(RegisterMap::INPUT_BASE, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SocError::AccessViolation { .. }));
    }

    #[test]
    fn result_read_before_inference_rejected() {
        let mut p = peripheral();
        let err = p.read(RegisterMap::OUT_CLASS, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SocError::AccessViolation { .. }));
    }

    #[test]
    fn matches_ip_for_many_inputs() {
        let mut p = peripheral();
        let mut now = SimTime::ZERO;
        for seed in 0u64..32 {
            let bits: Vec<f32> = (0..75)
                .map(|i| f32::from((seed.wrapping_mul(i as u64 + 7) >> 3) & 1 == 1))
                .collect();
            write_input(&mut p, &bits, now);
            p.write(RegisterMap::CTRL, CTRL_START, now).unwrap();
            now += SimTime::from_micros(50);
            let class = p.read(RegisterMap::OUT_CLASS, now).unwrap();
            let x: Vec<u32> = bits.iter().map(|&b| u32::from(b >= 0.5)).collect();
            assert_eq!(class, p.ip().infer(&x).0 as u32, "seed {seed}");
            now += SimTime::from_micros(50);
        }
        assert_eq!(p.inferences(), 32);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = peripheral();
        let before = p.busy_time();
        write_input(&mut p, &[0.0; 75], SimTime::ZERO);
        p.write(RegisterMap::CTRL, CTRL_START, SimTime::ZERO)
            .unwrap();
        assert!(p.busy_time() > before);
    }

    #[test]
    fn pack_features_bit_order() {
        let mut bits = vec![0.0f32; 75];
        bits[0] = 1.0;
        bits[31] = 1.0;
        bits[32] = 1.0;
        bits[74] = 1.0;
        let words = pack_features(&bits);
        assert_eq!(words.len(), 3);
        assert_eq!(words[0], (1 << 0) | (1 << 31));
        assert_eq!(words[1], 1);
        assert_eq!(words[2], 1 << 10);
    }
}
