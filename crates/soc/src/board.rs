//! The ZCU104 board model: PS + interconnect + peripherals + power.
//!
//! Mirrors the paper's integration (their Fig. 1 right-hand side): the
//! quad-A53 PS runs the ECU software, the CAN controller receives every
//! bus frame, and one or more QMLP accelerator IPs sit in the PL as
//! memory-mapped slaves.

use canids_can::node::{CanController, ControllerConfig};
use canids_can::time::SimTime;
use canids_dataflow::ip::AcceleratorIp;
use canids_dataflow::power::PowerEstimate;
use canids_qnn::tensor::pinned_sum_f64;

use crate::accel::{pack_features, AccelPeripheral};
use crate::axi::AxiInterconnect;
use crate::cancontroller::CanPeripheral;
use crate::cpu::CpuModel;
use crate::driver::{run_inference, run_inference_irq, InferenceRecord};
use crate::error::SocError;
use crate::interrupt::{accel_irq_line, InterruptController};
use crate::power_rails::BoardPowerModel;

/// PS base address of the first PL accelerator (ZynqMP HPM0 window).
pub const ACCEL_BASE: u64 = 0xA000_0000;
/// Address stride between accelerator instances.
pub const ACCEL_STRIDE: u64 = 0x1_0000;

/// Static board configuration.
///
/// The default is the paper's platform: the A53 running Linux
/// ([`CpuModel::zynqmp_a53_linux`] is `CpuModel::default`) with the
/// default CAN controller.
#[derive(Debug, Clone, Default)]
pub struct BoardConfig {
    /// CPU/OS cost model.
    pub cpu: CpuModel,
    /// CAN controller hardware configuration.
    pub can: ControllerConfig,
}

/// Summary of an attached IP, kept board-side for power/resource
/// aggregation and DMA-batch scheduling without reaching through the
/// bus. The `ip` field is a full clone of the compiled artifact (a few
/// KB of weights for the paper topology) alongside the mapped
/// peripheral's copy — acceptable at simulation scale; switch to a
/// shared handle if models grow large.
#[derive(Debug, Clone)]
struct IpSummary {
    ip: AcceleratorIp,
    input_dim: usize,
    input_words: usize,
    dynamic_w: f64,
    static_w: f64,
}

/// The simulated ZCU104 ECU platform.
///
/// # Example
///
/// ```
/// use canids_soc::board::Zcu104Board;
/// use canids_soc::BoardConfig;
/// use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
/// use canids_qnn::prelude::*;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
/// let mut board = Zcu104Board::new(BoardConfig::default());
/// let idx = board.attach_accelerator(ip)?;
/// let record = board.infer(idx, &[0.0; 75])?;
/// assert!(record.latency().as_millis_f64() < 0.15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Zcu104Board {
    config: BoardConfig,
    bus: AxiInterconnect,
    can: CanPeripheral,
    gic: InterruptController,
    now: SimTime,
    ips: Vec<IpSummary>,
}

impl std::fmt::Debug for Zcu104Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zcu104Board")
            .field("now", &self.now)
            .field("accelerators", &self.ips.len())
            .finish_non_exhaustive()
    }
}

impl Zcu104Board {
    /// Creates a board with a CAN controller and no accelerators.
    pub fn new(config: BoardConfig) -> Self {
        let can = CanPeripheral::new(CanController::new(config.can.clone()));
        let mut gic = InterruptController::new();
        gic.set_enabled(crate::interrupt::IRQ_CAN0, true);
        Zcu104Board {
            config,
            bus: AxiInterconnect::new(),
            can,
            gic,
            now: SimTime::ZERO,
            ips: Vec::new(),
        }
    }

    /// Attaches an accelerator IP as the next PL slave; returns its index.
    ///
    /// # Errors
    ///
    /// Propagates address-map errors.
    pub fn attach_accelerator(&mut self, ip: AcceleratorIp) -> Result<usize, SocError> {
        let idx = self.ips.len();
        let base = ACCEL_BASE + ACCEL_STRIDE * idx as u64;
        // Nominal activity factor for a streaming MVAU pipeline
        // processing one frame per driver call: ~12.5 % toggle.
        let active = ip.power(0.125);
        self.ips.push(IpSummary {
            ip: ip.clone(),
            input_dim: ip.input_dim(),
            input_words: ip.input_words() as usize,
            dynamic_w: active.dynamic_w,
            static_w: active.static_w,
        });
        self.bus
            .map(base, ACCEL_STRIDE, Box::new(AccelPeripheral::new(ip)))?;
        Ok(idx)
    }

    /// The compiled artifact of accelerator `idx` (latency, folding and
    /// resource facts for schedulers that plan around the bus, e.g. the
    /// DMA batch policy).
    pub fn accelerator(&self, idx: usize) -> Option<&AcceleratorIp> {
        self.ips.get(idx).map(|s| &s.ip)
    }

    /// Number of attached accelerators.
    pub fn accelerator_count(&self) -> usize {
        self.ips.len()
    }

    /// Current board time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Forces the board clock (used by the ECU scheduler when aligning
    /// driver calls to frame arrivals).
    pub fn set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// The CPU cost model.
    pub fn cpu(&self) -> &CpuModel {
        &self.config.cpu
    }

    /// The CAN peripheral (bus-side frame delivery + register access).
    pub fn can_mut(&mut self) -> &mut CanPeripheral {
        &mut self.can
    }

    /// Shared access to the CAN peripheral.
    pub fn can(&self) -> &CanPeripheral {
        &self.can
    }

    /// The interrupt controller.
    pub fn gic_mut(&mut self) -> &mut InterruptController {
        &mut self.gic
    }

    /// Runs one inference on accelerator `idx` with float binary
    /// features, advancing the board clock by the full software path.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchAccelerator`], [`SocError::InputDimension`] or
    /// any driver/bus error.
    pub fn infer(&mut self, idx: usize, features: &[f32]) -> Result<InferenceRecord, SocError> {
        let ip = self.ips.get(idx).ok_or(SocError::NoSuchAccelerator(idx))?;
        if features.len() != ip.input_dim {
            return Err(SocError::InputDimension {
                expected: ip.input_dim,
                actual: features.len(),
            });
        }
        let words = pack_features(features);
        self.infer_packed(idx, &words)
    }

    /// Runs one inference on accelerator `idx` from already-packed input
    /// words — the shared-packing hot path: the ECU service loop packs a
    /// frame once and feeds the same words to every attached model.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchAccelerator`], [`SocError::InputDimension`]
    /// (word-count mismatch) or any driver/bus error.
    pub fn infer_packed(&mut self, idx: usize, words: &[u32]) -> Result<InferenceRecord, SocError> {
        let ip = self.ips.get(idx).ok_or(SocError::NoSuchAccelerator(idx))?;
        if words.len() != ip.input_words {
            return Err(SocError::InputDimension {
                expected: ip.input_words,
                actual: words.len(),
            });
        }
        let base = ACCEL_BASE + ACCEL_STRIDE * idx as u64;
        run_inference(&mut self.bus, &self.config.cpu, &mut self.now, base, words)
    }

    /// Like [`Zcu104Board::infer_packed`], but with interrupt-driven
    /// completion: the driver blocks on the accelerator's done line
    /// through the GIC instead of spinning on the status register.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchAccelerator`], [`SocError::InputDimension`] or
    /// any driver/bus error.
    pub fn infer_packed_irq(
        &mut self,
        idx: usize,
        words: &[u32],
    ) -> Result<InferenceRecord, SocError> {
        let ip = self.ips.get(idx).ok_or(SocError::NoSuchAccelerator(idx))?;
        if words.len() != ip.input_words {
            return Err(SocError::InputDimension {
                expected: ip.input_words,
                actual: words.len(),
            });
        }
        let compute = SimTime::from_secs_f64(ip.ip.latency_secs());
        let base = ACCEL_BASE + ACCEL_STRIDE * idx as u64;
        // Board bring-up: the accelerator's done line is unmasked once.
        self.gic.set_enabled(accel_irq_line(idx), true);
        run_inference_irq(
            &mut self.bus,
            &self.config.cpu,
            &mut self.gic,
            &mut self.now,
            base,
            accel_irq_line(idx),
            words,
            compute,
        )
    }

    /// The board power model with every attached IP's PL contribution
    /// (device static power counted once).
    pub fn power_model(&self) -> BoardPowerModel {
        let dynamic = pinned_sum_f64(self.ips.iter().map(|ip| ip.dynamic_w));
        let static_w = self.ips.first().map_or(0.28, |ip| ip.static_w);
        BoardPowerModel::zcu104(PowerEstimate {
            dynamic_w: dynamic,
            static_w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::frame::{CanFrame, CanId};
    use canids_dataflow::ip::CompileConfig;
    use canids_qnn::prelude::*;

    fn ip(name: &str) -> AcceleratorIp {
        let mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        AcceleratorIp::compile(
            &mlp.export().unwrap(),
            CompileConfig {
                name: name.to_owned(),
                ..CompileConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn attach_and_infer() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let a = board.attach_accelerator(ip("dos")).unwrap();
        assert_eq!(a, 0);
        let rec = board.infer(a, &[1.0; 75]).unwrap();
        assert!(rec.latency() > SimTime::from_micros(50));
        assert_eq!(board.accelerator_count(), 1);
    }

    #[test]
    fn multiple_accelerators_coexist() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let a = board.attach_accelerator(ip("dos")).unwrap();
        let b = board.attach_accelerator(ip("fuzzy")).unwrap();
        assert_ne!(a, b);
        board.infer(a, &[0.0; 75]).unwrap();
        board.infer(b, &[1.0; 75]).unwrap();
    }

    #[test]
    fn input_validation() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let a = board.attach_accelerator(ip("dos")).unwrap();
        assert_eq!(
            board.infer(a, &[0.0; 10]).unwrap_err(),
            SocError::InputDimension {
                expected: 75,
                actual: 10
            }
        );
        assert_eq!(
            board.infer(5, &[0.0; 75]).unwrap_err(),
            SocError::NoSuchAccelerator(5)
        );
    }

    #[test]
    fn clock_advances_with_calls() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let a = board.attach_accelerator(ip("dos")).unwrap();
        let t0 = board.now();
        board.infer(a, &[0.0; 75]).unwrap();
        assert!(board.now() > t0);
        board.set_now(SimTime::from_secs(1));
        assert_eq!(board.now(), SimTime::from_secs(1));
    }

    #[test]
    fn packed_and_float_paths_agree() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let a = board.attach_accelerator(ip("dos")).unwrap();
        let bits: Vec<f32> = (0..75).map(|i| f32::from(i % 2 == 0)).collect();
        let through_floats = board.infer(a, &bits).unwrap();
        let words = crate::accel::pack_features(&bits);
        let through_words = board.infer_packed(a, &words).unwrap();
        assert_eq!(through_floats.class, through_words.class);
        let through_irq = board.infer_packed_irq(a, &words).unwrap();
        assert_eq!(through_irq.class, through_words.class);
        // The IRQ path costs more per verdict under Linux (9 us entry vs
        // sub-us spin polls) but frees the core during the compute.
        assert!(through_irq.latency() > through_words.latency());
        assert!(matches!(
            board.infer_packed(a, &[0u32; 1]),
            Err(SocError::InputDimension {
                expected: 3,
                actual: 1
            })
        ));
        assert!(board.accelerator(a).is_some());
        assert!(board.accelerator(7).is_none());
    }

    #[test]
    fn can_frames_flow_through_board() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let f = CanFrame::new(CanId::standard(0x316).unwrap(), &[1, 2]).unwrap();
        board.can_mut().deliver(SimTime::from_micros(3), f);
        assert_eq!(board.can().rx_pending(), 1);
    }

    #[test]
    fn board_power_at_paper_operating_point() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        board.attach_accelerator(ip("dos")).unwrap();
        let p = board.power_model().total_w(1.0);
        assert!((p - 2.09).abs() < 0.06, "power {p} W vs paper 2.09 W");
    }

    #[test]
    fn second_ip_adds_only_dynamic_power() {
        let mut board = Zcu104Board::new(BoardConfig::default());
        board.attach_accelerator(ip("dos")).unwrap();
        let one = board.power_model().total_w(1.0);
        board.attach_accelerator(ip("fuzzy")).unwrap();
        let two = board.power_model().total_w(1.0);
        assert!(two > one);
        assert!(two - one < 0.1, "second IP adds {} W", two - one);
    }
}
