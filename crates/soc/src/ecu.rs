//! The integrated IDS ECU runtime.
//!
//! The paper's architecture (Fig. 1): CAN packets received at the
//! interface are handled by the ECU as usual; *additionally* each packet
//! is copied into a FIFO-style buffer and examined by the IDS IP. This
//! module is that runtime: a FIFO service loop that featurises each
//! frame, runs the attached accelerator model(s) through the driver, and
//! reports per-message detection latency, throughput, drops, power and
//! energy.

use canids_can::frame::CanFrame;
use canids_can::time::SimTime;

use crate::accel::pack_features;
use crate::board::Zcu104Board;
use crate::dma::{run_batch_multi, DmaConfig, FeatureBatch};
use crate::error::SocError;

/// Maps a CAN frame to the accelerator's input features.
///
/// Implemented for closures so callers can plug in the dataset crate's
/// encoders without a dependency from this crate.
pub trait FrameFeaturizer {
    /// Encodes one frame as binary features.
    fn featurize(&self, frame: &CanFrame) -> Vec<f32>;
}

impl<F> FrameFeaturizer for F
where
    F: Fn(&CanFrame) -> Vec<f32>,
{
    fn featurize(&self, frame: &CanFrame) -> Vec<f32> {
        self(frame)
    }
}

/// How the service loop schedules the attached models over the SoC
/// fabric — the integration trade the `ablation_driver` sketches, as a
/// first-class, testable policy. Every policy produces **identical
/// per-frame classifications** (the functional model is shared); only
/// timing, drops and energy differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// One driver context consults every model back to back: the verdict
    /// pays the full per-call software path once *per model*.
    Sequential,
    /// Models spread round-robin over the A53 cores; the verdict waits
    /// for the slowest core plus the AXI arbitration penalty (the
    /// historical default behaviour for up to four models).
    #[default]
    RoundRobin,
    /// Frames accumulate into a `batch`-deep buffer that one DMA
    /// transfer broadcasts to every model: the dispatch overhead is
    /// amortised across the batch, at the cost of the first frame's
    /// verdict waiting for the batch to fill.
    DmaBatch {
        /// Frames per transfer (clamped to at least one, and to the
        /// FIFO depth at serving time — buffered frames occupy FIFO
        /// slots, so a deeper window could never fill).
        batch: usize,
    },
    /// Per-frame serving with interrupt-driven completion through the
    /// GIC instead of the status-poll loop: the core sleeps during the
    /// compute but pays an interrupt entry per verdict.
    InterruptPerFrame,
}

impl SchedPolicy {
    /// Short label for tables and JSON reports.
    pub fn label(&self) -> String {
        match self {
            SchedPolicy::Sequential => "sequential".to_owned(),
            SchedPolicy::RoundRobin => "round-robin".to_owned(),
            SchedPolicy::DmaBatch { batch } => format!("dma-batch-{batch}"),
            SchedPolicy::InterruptPerFrame => "interrupt-per-frame".to_owned(),
        }
    }
}

/// ECU runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcuConfig {
    /// Software FIFO depth between the RX path and the IDS service loop.
    pub queue_depth: usize,
    /// AXI arbitration penalty per additional concurrent model (fraction
    /// of the base service time).
    pub multi_model_overhead: f64,
    /// How models are scheduled over the fabric.
    pub policy: SchedPolicy,
    /// DMA engine parameters (used by [`SchedPolicy::DmaBatch`]).
    pub dma: DmaConfig,
}

impl Default for EcuConfig {
    fn default() -> Self {
        EcuConfig {
            queue_depth: 64,
            multi_model_overhead: 0.05,
            policy: SchedPolicy::default(),
            dma: DmaConfig::default(),
        }
    }
}

impl EcuConfig {
    /// Validated overhead fraction.
    fn overhead(&self) -> f64 {
        self.multi_model_overhead.clamp(0.0, 1.0)
    }
}

/// One per-frame IDS verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Frame arrival time (end of frame on the wire).
    pub arrival: SimTime,
    /// The inspected frame.
    pub frame: CanFrame,
    /// `true` when any attached model classified the frame as an attack.
    pub flagged: bool,
    /// Time the verdict became available.
    pub completed_at: SimTime,
    /// Per-model verdict bitmask: bit `i` is set when the `i`-th model of
    /// the ECU's model list flagged the frame. Models beyond index 63 are
    /// folded into `flagged` only (no deployed board carries that many).
    pub model_flags: u64,
    /// Which models were consulted for this frame, as the same bitmask —
    /// detached (shed/migrated-away) models have their bit clear, so a
    /// clear `model_flags` bit is distinguishable between "saw nothing"
    /// and "was not serving".
    pub active_mask: u64,
}

impl Detection {
    /// Detection delay from frame arrival to verdict.
    pub fn latency(&self) -> SimTime {
        self.completed_at.saturating_sub(self.arrival)
    }

    /// Whether model `i` (ECU model-list index) flagged this frame.
    pub fn model_flagged(&self, i: usize) -> bool {
        i < 64 && self.model_flags & (1 << i) != 0
    }

    /// Whether model `i` (ECU model-list index) was consulted for this
    /// frame.
    pub fn model_consulted(&self, i: usize) -> bool {
        i < 64 && self.active_mask & (1 << i) != 0
    }
}

/// Bitmask over the first 64 board-local model positions marked active
/// — the single source of the 64-bit fold rule `Detection::model_flags`
/// and the serving harness share.
pub fn active_mask_of(active: &[bool]) -> u64 {
    active
        .iter()
        .take(64)
        .enumerate()
        .fold(0u64, |m, (k, &a)| if a { m | (1 << k) } else { m })
}

/// One profiled stage interval on the ECU service loop, recorded only
/// when [`EcuStream::enable_profiling`] was called. Stage names are
/// static strings (`"infer"` for a per-frame service interval,
/// `"dma_window"` for a batched DMA transfer) so upper layers can intern
/// them without this crate depending on their span taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSample {
    /// Static stage name (`"infer"` or `"dma_window"`).
    pub stage: &'static str,
    /// Service start on the board clock.
    pub start: SimTime,
    /// Completion instant on the board clock.
    pub end: SimTime,
    /// Frames covered by the interval (1 per-frame, the window size for
    /// a DMA transfer).
    pub frames: u32,
}

/// Aggregate report of a processed capture.
#[derive(Debug, Clone, PartialEq)]
pub struct EcuReport {
    /// The scheduling policy the capture was served under.
    pub policy: SchedPolicy,
    /// Per-frame verdicts, in arrival order (dropped frames excluded).
    pub detections: Vec<Detection>,
    /// Frames lost to software-FIFO overflow.
    pub dropped: u64,
    /// Mean verdict latency.
    pub mean_latency: SimTime,
    /// Worst-case verdict latency.
    pub max_latency: SimTime,
    /// Serviced frames per second over the capture span.
    pub throughput_fps: f64,
    /// Fraction of wall time the service loop was busy.
    pub busy_fraction: f64,
    /// Mean board power over the run (rail model).
    pub mean_power_w: f64,
    /// Energy per inspected message (mean power × mean latency).
    pub energy_per_message_j: f64,
    /// Profiled stage intervals not yet drained through
    /// [`EcuStream::take_stage_samples`] when the session closed; empty
    /// unless [`EcuStream::enable_profiling`] was called.
    pub stage_samples: Vec<StageSample>,
}

/// The IDS-augmented ECU.
///
/// # Example
///
/// ```
/// use canids_soc::prelude::*;
/// use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
/// use canids_qnn::prelude::*;
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::time::SimTime;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
/// let mut board = Zcu104Board::new(BoardConfig::default());
/// let idx = board.attach_accelerator(ip)?;
/// let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
///
/// let frame = CanFrame::new(CanId::standard(0x316)?, &[1, 2, 3])?;
/// let featurize = |_f: &CanFrame| vec![0.0f32; 75];
/// let report = ecu.process_capture(&[(SimTime::ZERO, frame)], &featurize)?;
/// assert_eq!(report.detections.len(), 1);
/// assert!(report.mean_latency.as_millis_f64() < 0.15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct IdsEcu {
    board: Zcu104Board,
    models: Vec<usize>,
    config: EcuConfig,
}

impl std::fmt::Debug for IdsEcu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdsEcu")
            .field("models", &self.models)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl IdsEcu {
    /// Builds the ECU runtime over a board and the accelerator indices to
    /// consult per frame.
    pub fn new(board: Zcu104Board, models: Vec<usize>, config: EcuConfig) -> Self {
        IdsEcu {
            board,
            models,
            config,
        }
    }

    /// The underlying board.
    pub fn board(&self) -> &Zcu104Board {
        &self.board
    }

    /// Attached model indices.
    pub fn models(&self) -> &[usize] {
        &self.models
    }

    /// The runtime configuration.
    pub fn config(&self) -> &EcuConfig {
        &self.config
    }

    /// Replaces the scheduling policy for subsequent sessions (the board
    /// and attached IPs are untouched, so one deployment can be replayed
    /// under every policy).
    ///
    /// Board time is monotonic across sessions: a later session must
    /// push arrivals at or after the previous session's last completion,
    /// or the accelerators will still report busy.
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.config.policy = policy;
    }

    /// Opens a frame-at-a-time serving session — the streaming
    /// counterpart of [`IdsEcu::process_capture`].
    ///
    /// Frames are handed to [`EcuStream::push`] as they arrive (in
    /// non-decreasing time order); [`EcuStream::finish`] closes the
    /// session and returns the same [`EcuReport`] the batch path
    /// produces. `process_capture` is itself implemented on top of this
    /// session, so the two serving modes are equivalent by construction.
    pub fn stream(&mut self) -> EcuStream<'_> {
        let rx_cost = self.board.cpu().rx_path();
        let overhead = self.config.overhead();
        let queue = ServiceQueue::new(self.config.queue_depth);
        let active = vec![true; self.models.len()];
        EcuStream {
            ecu: self,
            rx_cost,
            overhead,
            active,
            detections: Vec::new(),
            queue,
            dropped: 0,
            busy: SimTime::ZERO,
            first_arrival: None,
            batch_buf: FeatureBatch::default(),
            batch_meta: Vec::new(),
            profiling: false,
            samples: Vec::new(),
        }
    }

    /// Processes a time-stamped capture through the IDS service loop.
    ///
    /// Frames arrive at their timestamps; the single service loop
    /// (one driver context) handles them FIFO. When more than
    /// `queue_depth` frames are backlogged, new arrivals are dropped —
    /// the hardware-FIFO overflow behaviour of a saturated ECU.
    ///
    /// # Errors
    ///
    /// Propagates driver/bus errors.
    pub fn process_capture<F: FrameFeaturizer>(
        &mut self,
        frames: &[(SimTime, CanFrame)],
        featurizer: &F,
    ) -> Result<EcuReport, SocError> {
        let mut session = self.stream();
        session.detections.reserve(frames.len());
        for &(arrival, frame) in frames {
            session.push(arrival, frame, featurizer)?;
        }
        session.try_finish()
    }
}

/// An open frame-at-a-time serving session on an [`IdsEcu`].
///
/// Created by [`IdsEcu::stream`]; consumed by [`EcuStream::finish`].
///
/// # Example
///
/// ```
/// use canids_soc::prelude::*;
/// use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
/// use canids_qnn::prelude::*;
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::time::SimTime;
///
/// let mlp = QuantMlp::new(MlpConfig::default())?;
/// let ip = AcceleratorIp::compile(&mlp.export()?, CompileConfig::default())?;
/// let mut board = Zcu104Board::new(BoardConfig::default());
/// let idx = board.attach_accelerator(ip)?;
/// let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
///
/// let featurize = |_f: &CanFrame| vec![0.0f32; 75];
/// let mut session = ecu.stream();
/// for i in 0..10u64 {
///     let frame = CanFrame::new(CanId::standard(0x316)?, &[i as u8])?;
///     session.push(SimTime::from_micros(i * 200), frame, &featurize)?;
/// }
/// let report = session.finish();
/// assert_eq!(report.detections.len(), 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EcuStream<'a> {
    ecu: &'a mut IdsEcu,
    rx_cost: SimTime,
    overhead: f64,
    /// Per-model serving mask, index-aligned with the ECU's `models`.
    /// Detached (shed or migrated-away) models keep their IP attached but
    /// are skipped by the service loop — the graceful-degradation lever
    /// the fleet admission policies pull.
    active: Vec<bool>,
    detections: Vec<Detection>,
    queue: ServiceQueue,
    dropped: u64,
    busy: SimTime,
    first_arrival: Option<SimTime>,
    /// Frames packed once and awaiting the next DMA transfer
    /// ([`SchedPolicy::DmaBatch`] only).
    batch_buf: FeatureBatch,
    /// Arrival metadata of the batched frames, index-aligned with
    /// `batch_buf`.
    batch_meta: Vec<(SimTime, CanFrame)>,
    /// Whether per-stage profiling samples are recorded.
    profiling: bool,
    /// Profiled stage intervals awaiting [`EcuStream::take_stage_samples`].
    samples: Vec<StageSample>,
}

impl std::fmt::Debug for EcuStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcuStream")
            .field("serviced", &self.detections.len())
            .field("dropped", &self.dropped)
            .field("queue", &self.queue)
            .finish_non_exhaustive()
    }
}

/// The single-server software-FIFO model shared by the ECU service loop
/// and the streaming line-rate harness
/// (`canids_core::serve::ServeHarness`): a bounded queue of pending
/// verdict completions plus the server-busy clock. Keeping this state
/// machine in one place means both paths drop and queue frames under
/// *exactly* the same policy.
#[derive(Debug, Clone)]
pub struct ServiceQueue {
    depth: usize,
    completions: std::collections::VecDeque<SimTime>,
    server_free_at: SimTime,
}

impl ServiceQueue {
    /// A queue admitting at most `depth` pending verdicts.
    pub fn new(depth: usize) -> Self {
        ServiceQueue {
            depth,
            completions: std::collections::VecDeque::new(),
            server_free_at: SimTime::ZERO,
        }
    }

    /// Retires verdicts completed at or before `now`.
    pub fn retire(&mut self, now: SimTime) {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Retires verdicts completed at or before `arrival`, then reports
    /// whether a frame arriving now fits the FIFO (`false` = drop it).
    pub fn admit(&mut self, arrival: SimTime) -> bool {
        self.admit_with_pending(arrival, 0)
    }

    /// [`ServiceQueue::admit`] with `pending` additional frames the
    /// caller is holding outside the queue (e.g. a DMA batch buffer that
    /// has not been flushed yet) — those occupy FIFO slots too.
    pub fn admit_with_pending(&mut self, arrival: SimTime, pending: usize) -> bool {
        self.retire(arrival);
        self.completions.len() + pending < self.depth
    }

    /// The instant the server can begin a frame that is ready at `ready`
    /// (its ready time, or when the previous frame finishes).
    pub fn start_time(&self, ready: SimTime) -> SimTime {
        ready.max(self.server_free_at)
    }

    /// Books `service` time from `start` (obtained via [`start_time`])
    /// for an admitted frame; returns its completion time.
    ///
    /// [`start_time`]: ServiceQueue::start_time
    pub fn serve(&mut self, start: SimTime, service: SimTime) -> SimTime {
        let completed_at = start + service;
        self.server_free_at = completed_at;
        self.completions.push_back(completed_at);
        completed_at
    }

    /// Verdicts still pending completion.
    pub fn backlog(&self) -> usize {
        self.completions.len()
    }
}

impl EcuStream<'_> {
    /// Offers one frame to the service loop.
    ///
    /// The frame is featurised and packed **once**, and the same packed
    /// words are fed to every attached model — the shared
    /// feature-packing pass of the multi-detector deployment.
    ///
    /// Returns the verdict, or `None` when either the software FIFO was
    /// full at the arrival instant and the frame was dropped, or the
    /// policy is [`SchedPolicy::DmaBatch`] and the verdict is deferred to
    /// the next transfer (the final report distinguishes the two: every
    /// deferred frame appears in `detections`, dropped frames in
    /// `dropped`).
    ///
    /// # Errors
    ///
    /// Propagates driver/bus errors.
    pub fn push<F: FrameFeaturizer>(
        &mut self,
        arrival: SimTime,
        frame: CanFrame,
        featurizer: &F,
    ) -> Result<Option<Detection>, SocError> {
        self.first_arrival.get_or_insert(arrival);

        if !self
            .queue
            .admit_with_pending(arrival, self.batch_meta.len())
        {
            self.dropped += 1;
            return Ok(None);
        }

        // One featurisation + one packing pass per frame, shared by all
        // models and policies.
        let features = featurizer.featurize(&frame);

        if let SchedPolicy::DmaBatch { batch } = self.ecu.config.policy {
            if self.batch_buf.is_empty() && self.batch_buf.dim() != features.len() {
                self.batch_buf = FeatureBatch::new(features.len());
            }
            self.batch_buf.push(&features)?;
            self.batch_meta.push((arrival, frame));
            self.busy += self.rx_cost;
            // The window cannot exceed the FIFO: unflushed batch frames
            // occupy FIFO slots, so a window larger than `queue_depth`
            // would stall at the admission check and never fill.
            let window = batch.max(1).min(self.ecu.config.queue_depth.max(1));
            if self.batch_meta.len() >= window {
                self.flush_batch()?;
                return Ok(self.detections.last().copied());
            }
            return Ok(None);
        }

        let words = pack_features(&features);
        let ready = arrival + self.rx_cost;
        let start = self.queue.start_time(ready);
        let multi_factor = self.multi_factor();

        let mut model_flags = 0u64;
        let (flagged, service) = match self.ecu.config.policy {
            SchedPolicy::Sequential => {
                // One driver context walks the active models back to back;
                // the verdict pays the full software path once per model.
                self.ecu.board.set_now(start);
                let mut flagged = false;
                for (k, (&idx, _)) in self
                    .ecu
                    .models
                    .iter()
                    .zip(&self.active)
                    .enumerate()
                    .filter(|&(_, (_, &a))| a)
                {
                    let rec = self.ecu.board.infer_packed(idx, &words)?;
                    if rec.class != 0 {
                        flagged = true;
                        if k < 64 {
                            model_flags |= 1 << k;
                        }
                    }
                }
                (flagged, self.ecu.board.now().saturating_sub(start))
            }
            SchedPolicy::RoundRobin | SchedPolicy::InterruptPerFrame => {
                // Active models spread round-robin over the A53 cores;
                // each core runs its share back to back and the verdict
                // waits for the slowest core plus the AXI-arbitration
                // penalty.
                let irq = self.ecu.config.policy == SchedPolicy::InterruptPerFrame;
                let cores = self.ecu.board.cpu().cores.max(1);
                let mut core_time = vec![SimTime::ZERO; cores];
                let mut flagged = false;
                let active = self
                    .ecu
                    .models
                    .iter()
                    .zip(&self.active)
                    .enumerate()
                    .filter(|&(_, (_, &a))| a)
                    .map(|(k, (&idx, _))| (k, idx));
                for (i, (k, idx)) in active.enumerate() {
                    self.ecu.board.set_now(start);
                    let rec = if irq {
                        self.ecu.board.infer_packed_irq(idx, &words)?
                    } else {
                        self.ecu.board.infer_packed(idx, &words)?
                    };
                    if rec.class != 0 {
                        flagged = true;
                        if k < 64 {
                            model_flags |= 1 << k;
                        }
                    }
                    core_time[i % cores] += rec.latency();
                }
                let slowest = core_time.into_iter().max().unwrap_or(SimTime::ZERO);
                let service = SimTime::from_secs_f64(slowest.as_secs_f64() * multi_factor);
                (flagged, service)
            }
            SchedPolicy::DmaBatch { .. } => unreachable!("handled above"),
        };

        let completed_at = self.queue.serve(start, service);
        self.busy += service + self.rx_cost;
        if self.profiling {
            self.samples.push(StageSample {
                stage: "infer",
                start,
                end: completed_at,
                frames: 1,
            });
        }

        let detection = Detection {
            arrival,
            frame,
            flagged,
            completed_at,
            model_flags,
            active_mask: active_mask_of(&self.active),
        };
        self.detections.push(detection);
        Ok(Some(detection))
    }

    /// Runs the pending DMA batch through every model as one broadcast
    /// transfer and books its completions.
    fn flush_batch(&mut self) -> Result<(), SocError> {
        if self.batch_meta.is_empty() {
            return Ok(());
        }
        let mut positions: Vec<usize> = Vec::with_capacity(self.ecu.models.len());
        let mut ips: Vec<&canids_dataflow::ip::AcceleratorIp> = Vec::new();
        for (k, (&idx, _)) in self
            .ecu
            .models
            .iter()
            .zip(&self.active)
            .enumerate()
            .filter(|&(_, (_, &a))| a)
        {
            positions.push(k);
            ips.push(
                self.ecu
                    .board
                    .accelerator(idx)
                    .ok_or(SocError::NoSuchAccelerator(idx))?,
            );
        }
        // With every model detached the window still drains (frames pay
        // only the RX path and are never flagged).
        let (flagged, model_flags, total) = if ips.is_empty() {
            (
                vec![false; self.batch_meta.len()],
                vec![0u64; self.batch_meta.len()],
                SimTime::ZERO,
            )
        } else {
            let cpu = *self.ecu.board.cpu();
            let report = run_batch_multi(&ips, &cpu, self.ecu.config.dma, &self.batch_buf)?;
            // Fold the per-model class grid into one bitmask per frame,
            // keyed on board-local model positions.
            let masks: Vec<u64> = (0..self.batch_meta.len())
                .map(|f| {
                    report
                        .classes
                        .iter()
                        .zip(&positions)
                        .filter(|(per_model, _)| per_model[f] != 0)
                        .fold(0u64, |m, (_, &k)| if k < 64 { m | (1 << k) } else { m })
                })
                .collect();
            (report.flagged, masks, report.total)
        };

        // The transfer starts once the last frame of the window has been
        // received and the server is free; every frame in the window
        // completes when the slowest model's pipeline drains (plus the
        // multi-model arbitration margin).
        let last_arrival = self.batch_meta.last().map(|&(t, _)| t).unwrap_or_default();
        let ready = last_arrival + self.rx_cost;
        let start = self.queue.start_time(ready);
        let service = SimTime::from_secs_f64(total.as_secs_f64() * self.multi_factor());
        let completed_at = self.queue.serve(start, service);
        for _ in 1..self.batch_meta.len() {
            // The remaining frames of the window occupy FIFO slots until
            // the same completion instant.
            self.queue.serve(completed_at, SimTime::ZERO);
        }
        self.busy += service;
        self.ecu.board.set_now(completed_at);
        if self.profiling {
            self.samples.push(StageSample {
                stage: "dma_window",
                start,
                end: completed_at,
                frames: self.batch_meta.len() as u32,
            });
        }

        let active_mask = active_mask_of(&self.active);
        for ((&(arrival, frame), &flagged), &frame_flags) in
            self.batch_meta.iter().zip(&flagged).zip(&model_flags)
        {
            self.detections.push(Detection {
                arrival,
                frame,
                flagged,
                completed_at,
                model_flags: frame_flags,
                active_mask,
            });
        }
        self.batch_meta.clear();
        self.batch_buf.clear();
        Ok(())
    }

    /// AXI arbitration margin for the currently active model count.
    fn multi_factor(&self) -> f64 {
        let k = self.active.iter().filter(|&&a| a).count().max(1);
        1.0 + self.overhead * (k as f64 - 1.0)
    }

    /// Enables or disables model `i` (index into the ECU's model list)
    /// for subsequent pushes. A detached model's IP stays attached to the
    /// board; the service loop simply skips it, so re-admission is free.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set_model_active(&mut self, i: usize, active: bool) {
        self.active[i] = active;
    }

    /// Whether model `i` is currently served.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn model_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Number of models the service loop currently consults.
    pub fn active_models(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Frames currently occupying FIFO slots: verdicts pending completion
    /// plus frames buffered in an unflushed DMA window. The fleet
    /// admission policies watch this to detect sustained overload before
    /// the FIFO overflows.
    pub fn backlog(&self) -> usize {
        self.queue.backlog() + self.batch_meta.len()
    }

    /// Frames serviced so far (excluding frames deferred in an unflushed
    /// DMA batch).
    pub fn serviced(&self) -> usize {
        self.detections.len()
    }

    /// Verdicts booked so far, in service order — the incremental view a
    /// streaming harness drains between pushes (new entries appear at
    /// the tail; under [`SchedPolicy::DmaBatch`] a whole window lands at
    /// once).
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Turns on per-stage profiling: subsequent service intervals are
    /// recorded as [`StageSample`]s (a `"infer"` sample per frame on the
    /// per-message policies, a `"dma_window"` sample per flushed batch).
    /// Sampling is off by default and the service-loop timing model is
    /// identical either way — profiling only observes.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// Drains the profiled stage intervals recorded since the last call
    /// into `out` (appending), preserving record order.
    pub fn take_stage_samples(&mut self, out: &mut Vec<StageSample>) {
        out.append(&mut self.samples);
    }

    /// Closes the session and aggregates the report. Under
    /// [`SchedPolicy::DmaBatch`] a partial trailing window is flushed
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates driver/bus errors from the trailing flush.
    pub fn try_finish(mut self) -> Result<EcuReport, SocError> {
        self.flush_batch()?;
        Ok(self.finish())
    }

    /// Closes the session and aggregates the report.
    ///
    /// # Panics
    ///
    /// Panics when a trailing DMA batch fails to flush (use
    /// [`EcuStream::try_finish`] to handle that error); per-message
    /// policies never flush and cannot panic here.
    pub fn finish(mut self) -> EcuReport {
        self.flush_batch().expect("trailing DMA batch flush");
        let EcuStream {
            ecu,
            detections,
            dropped,
            busy,
            first_arrival,
            samples,
            ..
        } = self;
        let span = match (first_arrival, detections.last()) {
            (Some(first), Some(last)) => last.completed_at.saturating_sub(first),
            _ => SimTime::ZERO,
        };
        let mean_latency = if detections.is_empty() {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(
                detections
                    .iter()
                    .map(|d| d.latency().as_nanos())
                    .sum::<u64>()
                    / detections.len() as u64,
            )
        };
        let max_latency = detections
            .iter()
            .map(Detection::latency)
            .max()
            .unwrap_or(SimTime::ZERO);
        let busy_fraction = if span > SimTime::ZERO {
            (busy.as_secs_f64() / span.as_secs_f64()).min(1.0)
        } else {
            0.0
        };
        let throughput_fps = if span > SimTime::ZERO {
            detections.len() as f64 / span.as_secs_f64()
        } else {
            0.0
        };
        let mean_power_w = ecu.board.power_model().total_w(busy_fraction);
        let energy_per_message_j = mean_power_w * mean_latency.as_secs_f64();

        EcuReport {
            policy: ecu.config.policy,
            detections,
            dropped,
            mean_latency,
            max_latency,
            throughput_fps,
            busy_fraction,
            mean_power_w,
            energy_per_message_j,
            stage_samples: samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::{BoardConfig, Zcu104Board};
    use canids_can::frame::CanId;
    use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
    use canids_qnn::prelude::*;

    fn board_with(n: usize) -> (Zcu104Board, Vec<usize>) {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let mut idxs = Vec::new();
        for i in 0..n {
            let mlp = QuantMlp::new(MlpConfig {
                seed: 42 + i as u64,
                ..MlpConfig::default()
            })
            .unwrap();
            let ip =
                AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap();
            idxs.push(board.attach_accelerator(ip).unwrap());
        }
        (board, idxs)
    }

    fn frames(n: usize, period_us: u64) -> Vec<(SimTime, CanFrame)> {
        (0..n)
            .map(|i| {
                (
                    SimTime::from_micros(period_us * i as u64),
                    CanFrame::new(CanId::standard(0x316).unwrap(), &[i.to_le_bytes()[0]; 8])
                        .unwrap(),
                )
            })
            .collect()
    }

    fn zero_feat(_f: &CanFrame) -> Vec<f32> {
        vec![0.0; 75]
    }

    #[test]
    fn per_message_latency_near_paper() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        // Frames every 200 µs: no queueing.
        let report = ecu.process_capture(&frames(50, 200), &zero_feat).unwrap();
        let ms = report.mean_latency.as_millis_f64();
        assert!(
            (0.10..0.14).contains(&ms),
            "latency {ms} ms vs paper 0.12 ms"
        );
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn keeps_up_at_line_rate() {
        // 1 Mb/s full-payload line rate ≈ 120 µs/frame; the service path
        // must not accumulate backlog.
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let report = ecu.process_capture(&frames(200, 120), &zero_feat).unwrap();
        assert_eq!(report.dropped, 0);
        assert!(
            report.max_latency.as_millis_f64() < 0.5,
            "backlog grew: max {}",
            report.max_latency
        );
        assert!(report.throughput_fps > 8_000.0, "{}", report.throughput_fps);
    }

    #[test]
    fn overload_drops_frames() {
        // 20 µs inter-arrival is ~6x beyond the service rate.
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                queue_depth: 8,
                ..EcuConfig::default()
            },
        );
        let report = ecu.process_capture(&frames(300, 20), &zero_feat).unwrap();
        assert!(report.dropped > 100, "dropped {}", report.dropped);
    }

    #[test]
    fn power_and_energy_near_paper_under_load() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let report = ecu.process_capture(&frames(300, 125), &zero_feat).unwrap();
        assert!(
            (1.9..2.2).contains(&report.mean_power_w),
            "power {} W vs paper 2.09 W",
            report.mean_power_w
        );
        let mj = report.energy_per_message_j * 1e3;
        assert!((0.2..0.3).contains(&mj), "energy {mj} mJ vs paper 0.25 mJ");
    }

    #[test]
    fn two_models_flag_union_and_cost_slightly_more() {
        let (board, idxs) = board_with(2);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let two = ecu.process_capture(&frames(40, 250), &zero_feat).unwrap();
        let (board1, idx1) = board_with(1);
        let mut ecu1 = IdsEcu::new(board1, idx1, EcuConfig::default());
        let one = ecu1.process_capture(&frames(40, 250), &zero_feat).unwrap();
        let ratio = two.mean_latency.as_secs_f64() / one.mean_latency.as_secs_f64();
        assert!(ratio > 1.0 && ratio < 1.2, "multi-model ratio {ratio}");
    }

    #[test]
    fn empty_capture_is_empty_report() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let report = ecu.process_capture(&[], &zero_feat).unwrap();
        assert!(report.detections.is_empty());
        assert_eq!(report.mean_latency, SimTime::ZERO);
    }

    #[test]
    fn service_queue_drops_when_full_and_drains_on_time() {
        let mut q = ServiceQueue::new(2);
        assert!(q.admit(SimTime::ZERO));
        q.serve(q.start_time(SimTime::ZERO), SimTime::from_micros(100));
        assert!(q.admit(SimTime::ZERO));
        q.serve(q.start_time(SimTime::ZERO), SimTime::from_micros(100));
        // Two verdicts pending (complete at 100 us and 200 us): full.
        assert_eq!(q.backlog(), 2);
        assert!(!q.admit(SimTime::from_micros(50)), "FIFO full -> drop");
        // By 150 us the first verdict has retired.
        assert!(q.admit(SimTime::from_micros(150)));
        assert_eq!(q.backlog(), 1);
        // The server is busy until 200 us, so the next start waits.
        assert_eq!(
            q.start_time(SimTime::from_micros(150)),
            SimTime::from_micros(200)
        );
    }

    #[test]
    fn streaming_session_matches_batch_capture() {
        // The two serving modes must agree frame for frame: batch replay
        // on one ECU, incremental pushes on an identically built one.
        let (board, idxs) = board_with(1);
        let mut batch_ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let f = frames(60, 150);
        let batch = batch_ecu.process_capture(&f, &zero_feat).unwrap();

        let (board2, idxs2) = board_with(1);
        let mut stream_ecu = IdsEcu::new(board2, idxs2, EcuConfig::default());
        let mut session = stream_ecu.stream();
        for (i, &(t, frame)) in f.iter().enumerate() {
            let det = session.push(t, frame, &zero_feat).unwrap();
            assert!(det.is_some(), "no backlog at this pace");
            assert_eq!(session.serviced(), i + 1);
        }
        assert_eq!(session.dropped(), 0);
        let streamed = session.finish();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn streaming_session_reports_drops_in_flight() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                queue_depth: 4,
                ..EcuConfig::default()
            },
        );
        let mut session = ecu.stream();
        let mut saw_drop = false;
        for (t, frame) in frames(200, 10) {
            if session.push(t, frame, &zero_feat).unwrap().is_none() {
                saw_drop = true;
            }
        }
        assert!(saw_drop, "20x overload must overflow a 4-deep FIFO");
        let report = session.finish();
        assert!(report.dropped > 0);
        assert_eq!(report.dropped + report.detections.len() as u64, 200);
    }

    #[test]
    fn empty_streaming_session_is_empty_report() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let report = ecu.stream().finish();
        assert!(report.detections.is_empty());
        assert_eq!(report.mean_latency, SimTime::ZERO);
        assert_eq!(report.throughput_fps, 0.0);
    }

    fn featurize_bits(f: &CanFrame) -> Vec<f32> {
        // A content-dependent featurisation so policies actually disagree
        // on timing-visible state while predictions must stay equal.
        let mut bits = vec![0.0f32; 75];
        for (i, slot) in bits.iter_mut().enumerate() {
            let byte = f.data_padded()[i % 8];
            *slot = f32::from((byte >> (i % 8)) & 1);
        }
        bits
    }

    #[test]
    fn all_policies_produce_identical_predictions() {
        let f = frames(70, 1_000);
        let mut baseline: Option<Vec<(SimTime, bool)>> = None;
        for policy in [
            SchedPolicy::Sequential,
            SchedPolicy::RoundRobin,
            SchedPolicy::DmaBatch { batch: 16 },
            SchedPolicy::InterruptPerFrame,
        ] {
            let (board, idxs) = board_with(2);
            let mut ecu = IdsEcu::new(
                board,
                idxs,
                EcuConfig {
                    policy,
                    ..EcuConfig::default()
                },
            );
            let report = ecu.process_capture(&f, &featurize_bits).unwrap();
            assert_eq!(report.policy, policy);
            assert_eq!(report.dropped, 0, "{}", policy.label());
            let verdicts: Vec<(SimTime, bool)> = report
                .detections
                .iter()
                .map(|d| (d.arrival, d.flagged))
                .collect();
            match &baseline {
                None => baseline = Some(verdicts),
                Some(b) => assert_eq!(
                    &verdicts,
                    b,
                    "policy {} diverged functionally",
                    policy.label()
                ),
            }
        }
    }

    #[test]
    fn model_flags_agree_across_policies_and_respect_the_mask() {
        // Per-model verdict bits: consistent across every scheduling
        // policy (the functional model is shared), consistent with the
        // fused flag, and cleared together with the active mask when a
        // model is detached.
        let f = frames(50, 1_000);
        let mut baseline: Option<Vec<u64>> = None;
        for policy in [
            SchedPolicy::Sequential,
            SchedPolicy::RoundRobin,
            SchedPolicy::DmaBatch { batch: 8 },
            SchedPolicy::InterruptPerFrame,
        ] {
            let (board, idxs) = board_with(2);
            let mut ecu = IdsEcu::new(
                board,
                idxs,
                EcuConfig {
                    policy,
                    ..EcuConfig::default()
                },
            );
            let report = ecu.process_capture(&f, &featurize_bits).unwrap();
            for d in &report.detections {
                assert_eq!(d.active_mask, 0b11, "{}", policy.label());
                assert_eq!(d.flagged, d.model_flags != 0, "{}", policy.label());
                assert_eq!(d.model_flagged(0), d.model_flags & 1 != 0);
                assert!(d.model_consulted(0) && d.model_consulted(1));
                assert!(!d.model_consulted(64), "out-of-range index is false");
            }
            let masks: Vec<u64> = report.detections.iter().map(|d| d.model_flags).collect();
            match &baseline {
                None => baseline = Some(masks),
                Some(b) => assert_eq!(&masks, b, "{} diverged per-model", policy.label()),
            }
        }

        // Detach model 1: its bit disappears from both masks.
        let (board, idxs) = board_with(2);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let mut session = ecu.stream();
        session.set_model_active(1, false);
        for &(t, frame) in &f {
            session.push(t, frame, &featurize_bits).unwrap();
        }
        assert!(!session.detections().is_empty());
        for d in session.detections() {
            assert_eq!(d.active_mask, 0b01);
            assert!(!d.model_flagged(1));
            assert!(!d.model_consulted(1));
        }
    }

    #[test]
    fn sequential_costs_roughly_n_times_round_robin() {
        let f = frames(30, 1_000);
        let (board, idxs) = board_with(2);
        let mut rr = IdsEcu::new(board, idxs, EcuConfig::default());
        let rr_report = rr.process_capture(&f, &zero_feat).unwrap();
        let (board2, idxs2) = board_with(2);
        let mut seq = IdsEcu::new(
            board2,
            idxs2,
            EcuConfig {
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
        );
        let seq_report = seq.process_capture(&f, &zero_feat).unwrap();
        let ratio = seq_report.mean_latency.as_secs_f64() / rr_report.mean_latency.as_secs_f64();
        assert!(
            (1.5..2.2).contains(&ratio),
            "sequential/round-robin ratio {ratio}"
        );
    }

    #[test]
    fn dma_batch_defers_verdicts_to_the_window() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                policy: SchedPolicy::DmaBatch { batch: 4 },
                ..EcuConfig::default()
            },
        );
        let f = frames(10, 500);
        let mut session = ecu.stream();
        let mut immediate = 0usize;
        for &(t, frame) in &f {
            if session.push(t, frame, &zero_feat).unwrap().is_some() {
                immediate += 1;
            }
        }
        // Verdicts only materialise at window boundaries (frames 4 and 8).
        assert_eq!(immediate, 2);
        assert_eq!(session.serviced(), 8);
        let report = session.try_finish().unwrap();
        // The trailing partial window flushed on finish.
        assert_eq!(report.detections.len(), 10);
        assert_eq!(report.dropped, 0);
        // All frames of one window share a completion instant, and the
        // amortised mean still lands below the per-message path.
        let w0: Vec<_> = report.detections[..4]
            .iter()
            .map(|d| d.completed_at)
            .collect();
        assert!(w0.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dma_batch_window_clamps_to_queue_depth() {
        // Regression: a window deeper than the FIFO used to be
        // unreachable (buffered frames count against the FIFO, so the
        // buffer capped below the flush threshold) and every later
        // frame was silently dropped.
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                queue_depth: 8,
                policy: SchedPolicy::DmaBatch { batch: 1000 },
                ..EcuConfig::default()
            },
        );
        let report = ecu.process_capture(&frames(40, 1_000), &zero_feat).unwrap();
        assert_eq!(report.dropped, 0, "clamped window must keep flushing");
        assert_eq!(report.detections.len(), 40);
    }

    #[test]
    fn dma_batch_first_verdict_waits_for_the_window() {
        let (board, idxs) = board_with(1);
        let mut batched = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                policy: SchedPolicy::DmaBatch { batch: 8 },
                ..EcuConfig::default()
            },
        );
        let f = frames(8, 500);
        let b = batched.process_capture(&f, &zero_feat).unwrap();
        let (board2, idxs2) = board_with(1);
        let mut per_msg = IdsEcu::new(board2, idxs2, EcuConfig::default());
        let p = per_msg.process_capture(&f, &zero_feat).unwrap();
        // First-verdict delay: batch waits for the fill, per-message does
        // not. Amortised service cost: batch wins.
        assert!(b.detections[0].latency() > p.detections[0].latency());
        assert!(b.busy_fraction < p.busy_fraction);
    }

    #[test]
    fn interrupt_policy_is_slower_per_frame_under_linux() {
        let f = frames(20, 1_000);
        let (board, idxs) = board_with(1);
        let mut polled = IdsEcu::new(board, idxs, EcuConfig::default());
        let poll_report = polled.process_capture(&f, &zero_feat).unwrap();
        let (board2, idxs2) = board_with(1);
        let mut irq = IdsEcu::new(
            board2,
            idxs2,
            EcuConfig {
                policy: SchedPolicy::InterruptPerFrame,
                ..EcuConfig::default()
            },
        );
        let irq_report = irq.process_capture(&f, &zero_feat).unwrap();
        assert!(irq_report.mean_latency > poll_report.mean_latency);
        // But not absurdly so: one interrupt entry per verdict.
        let delta =
            irq_report.mean_latency.as_micros_f64() - poll_report.mean_latency.as_micros_f64();
        assert!((2.0..20.0).contains(&delta), "irq delta {delta} us");
    }

    #[test]
    fn set_policy_reuses_one_deployment() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        let f = frames(10, 500);
        let a = ecu.process_capture(&f, &zero_feat).unwrap();
        assert_eq!(a.policy, SchedPolicy::RoundRobin);
        ecu.set_policy(SchedPolicy::Sequential);
        // Board time is monotonic across sessions: the second replay
        // rides after the first.
        let offset = SimTime::from_secs(1);
        let f2: Vec<(SimTime, CanFrame)> = f.iter().map(|&(t, fr)| (t + offset, fr)).collect();
        let b = ecu.process_capture(&f2, &zero_feat).unwrap();
        assert_eq!(b.policy, SchedPolicy::Sequential);
        assert_eq!(ecu.config().policy, SchedPolicy::Sequential);
        let flags_a: Vec<bool> = a.detections.iter().map(|d| d.flagged).collect();
        let flags_b: Vec<bool> = b.detections.iter().map(|d| d.flagged).collect();
        assert_eq!(flags_a, flags_b);
    }

    #[test]
    fn detached_models_are_skipped_and_readmitted() {
        // Sequential pays the path once per *active* model: detaching one
        // of two models halves the service time, re-attaching restores it.
        let (board, idxs) = board_with(2);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
        );
        let f = frames(30, 1_000);
        let mut session = ecu.stream();
        assert_eq!(session.active_models(), 2);
        let d2 = session.push(f[0].0, f[0].1, &zero_feat).unwrap().unwrap();
        session.set_model_active(1, false);
        assert_eq!(session.active_models(), 1);
        assert!(session.model_active(0) && !session.model_active(1));
        let d1 = session.push(f[1].0, f[1].1, &zero_feat).unwrap().unwrap();
        let ratio = d2.latency().as_secs_f64() / d1.latency().as_secs_f64();
        assert!((1.5..2.5).contains(&ratio), "2-model/1-model ratio {ratio}");
        session.set_model_active(1, true);
        let d2b = session.push(f[2].0, f[2].1, &zero_feat).unwrap().unwrap();
        assert!(
            d2b.latency() > d1.latency(),
            "re-admitted model serves again"
        );
        let report = session.finish();
        assert_eq!(report.detections.len(), 3);
    }

    #[test]
    fn all_models_detached_still_drains_frames() {
        for policy in [
            SchedPolicy::Sequential,
            SchedPolicy::RoundRobin,
            SchedPolicy::DmaBatch { batch: 4 },
        ] {
            let (board, idxs) = board_with(1);
            let mut ecu = IdsEcu::new(
                board,
                idxs,
                EcuConfig {
                    policy,
                    ..EcuConfig::default()
                },
            );
            let mut session = ecu.stream();
            session.set_model_active(0, false);
            for (t, frame) in frames(8, 500) {
                session.push(t, frame, &zero_feat).unwrap();
            }
            let report = session.try_finish().unwrap();
            assert_eq!(report.detections.len(), 8, "{}", policy.label());
            assert_eq!(report.dropped, 0);
            assert!(report.detections.iter().all(|d| !d.flagged));
        }
    }

    #[test]
    fn backlog_counts_pending_and_batched_frames() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(
            board,
            idxs,
            EcuConfig {
                policy: SchedPolicy::DmaBatch { batch: 8 },
                ..EcuConfig::default()
            },
        );
        let f = frames(3, 10);
        let mut session = ecu.stream();
        assert_eq!(session.backlog(), 0);
        for &(t, frame) in &f {
            session.push(t, frame, &zero_feat).unwrap();
        }
        // Three frames buffered in the unflushed window occupy slots.
        assert_eq!(session.backlog(), 3);
    }

    #[test]
    fn detection_latency_accounts_queueing() {
        let (board, idxs) = board_with(1);
        let mut ecu = IdsEcu::new(board, idxs, EcuConfig::default());
        // Two frames arriving simultaneously: the second waits for the first.
        let f = frames(2, 0);
        let report = ecu.process_capture(&f, &zero_feat).unwrap();
        let l0 = report.detections[0].latency();
        let l1 = report.detections[1].latency();
        assert!(l1 > l0, "second frame queues behind the first");
    }
}
