//! The userspace accelerator driver (PYNQ-runtime equivalent).
//!
//! FINN deployments drive the stitched IP from Linux through `mmap`-ed
//! AXI-Lite registers: pack inputs, write them, pulse start, poll the
//! done bit, read the result. Each step costs software time from the
//! [`CpuModel`]; the sum — dominated by the fixed runtime-dispatch
//! overhead — is what the paper reports as the 0.12 ms per-message
//! processing latency.

use canids_can::time::SimTime;
use canids_dataflow::ip::RegisterMap;

use crate::accel::{CTRL_START, STATUS_DONE};
use crate::axi::AxiInterconnect;
use crate::cpu::CpuModel;
use crate::error::SocError;
use crate::interrupt::InterruptController;

/// Watchdog: maximum status polls before declaring the IP hung.
pub const MAX_POLLS: usize = 100_000;

/// Where one inference call's time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceBreakdown {
    /// Fixed runtime/driver dispatch overhead.
    pub dispatch: SimTime,
    /// Register reads and writes (input words, control, result).
    pub mmio: SimTime,
    /// Time spent in the status-poll loop waiting for the datapath.
    pub compute_wait: SimTime,
}

impl InferenceBreakdown {
    /// Total call time.
    pub fn total(&self) -> SimTime {
        self.dispatch + self.mmio + self.compute_wait
    }
}

/// The result of one driver-mediated inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceRecord {
    /// Predicted class.
    pub class: usize,
    /// Call entry time.
    pub started_at: SimTime,
    /// Call return time.
    pub completed_at: SimTime,
    /// Time breakdown.
    pub breakdown: InferenceBreakdown,
}

impl InferenceRecord {
    /// Wall-clock call duration.
    pub fn latency(&self) -> SimTime {
        self.completed_at - self.started_at
    }
}

/// Runs one inference against the accelerator mapped at `base`,
/// advancing `now` by every software and wait cost incurred.
///
/// # Errors
///
/// Propagates bus/peripheral errors; returns [`SocError::PollTimeout`]
/// when the done bit never rises within [`MAX_POLLS`].
pub fn run_inference(
    bus: &mut AxiInterconnect,
    cpu: &CpuModel,
    now: &mut SimTime,
    base: u64,
    input_words: &[u32],
) -> Result<InferenceRecord, SocError> {
    let started_at = *now;
    let mut mmio = SimTime::ZERO;

    // Runtime dispatch: buffer checks, driver entry (the fixed PYNQ cost).
    *now += cpu.runtime_dispatch;

    // Write the packed input words.
    for (i, &w) in input_words.iter().enumerate() {
        *now += cpu.mmio_write;
        mmio += cpu.mmio_write;
        bus.write(
            base + u64::from(RegisterMap::INPUT_BASE) + 4 * i as u64,
            w,
            *now,
        )?;
    }

    // Pulse start.
    *now += cpu.mmio_write;
    mmio += cpu.mmio_write;
    bus.write(base + u64::from(RegisterMap::CTRL), CTRL_START, *now)?;

    // Poll the done bit.
    let wait_start = *now;
    let mut polls = 0usize;
    loop {
        *now += cpu.mmio_read;
        let status = bus.read(base + u64::from(RegisterMap::STATUS), *now)?;
        if status & STATUS_DONE != 0 {
            break;
        }
        polls += 1;
        if polls > MAX_POLLS {
            return Err(SocError::PollTimeout);
        }
        *now += cpu.poll_interval;
    }
    let compute_wait = *now - wait_start;

    // Read the class register.
    *now += cpu.mmio_read;
    mmio += cpu.mmio_read;
    let class = bus.read(base + u64::from(RegisterMap::OUT_CLASS), *now)? as usize;

    Ok(InferenceRecord {
        class,
        started_at,
        completed_at: *now,
        breakdown: InferenceBreakdown {
            dispatch: cpu.runtime_dispatch,
            mmio,
            compute_wait,
        },
    })
}

/// Runs one inference with interrupt-driven completion instead of the
/// status-poll loop: the datapath is started and the driver blocks; the
/// done line is raised when the compute finishes (`compute_latency`
/// after the start pulse, as the peripheral models it) and the CPU pays
/// one interrupt entry plus the acknowledge before reading the result.
///
/// The caller must have enabled `irq_line` on the controller (board
/// bring-up does this per accelerator, see
/// `Zcu104Board::infer_packed_irq`) — a masked line means the wake-up
/// never reaches the CPU and the call fails rather than spinning.
/// Foreign pending lines are untouched: in hardware a higher-priority
/// line would preempt first, but the model charges one interrupt entry
/// either way.
///
/// Functionally identical to [`run_inference`] — only the completion
/// timing differs: the poll loop trades `poll_interval`-grained MMIO spin
/// reads for a single `irq_entry`, which frees the core while the
/// datapath runs but costs more per verdict on a Linux-class interrupt
/// path.
///
/// # Errors
///
/// Propagates bus/peripheral errors; returns [`SocError::PollTimeout`]
/// when `irq_line` is masked, or when the done bit is not set once the
/// interrupt fires (a wedged datapath).
#[allow(clippy::too_many_arguments)] // mirrors the bare-driver call surface
pub fn run_inference_irq(
    bus: &mut AxiInterconnect,
    cpu: &CpuModel,
    gic: &mut InterruptController,
    now: &mut SimTime,
    base: u64,
    irq_line: u32,
    input_words: &[u32],
    compute_latency: SimTime,
) -> Result<InferenceRecord, SocError> {
    let started_at = *now;
    let mut mmio = SimTime::ZERO;

    // Runtime dispatch: buffer checks, driver entry (the fixed PYNQ cost).
    *now += cpu.runtime_dispatch;

    // Write the packed input words.
    for (i, &w) in input_words.iter().enumerate() {
        *now += cpu.mmio_write;
        mmio += cpu.mmio_write;
        bus.write(
            base + u64::from(RegisterMap::INPUT_BASE) + 4 * i as u64,
            w,
            *now,
        )?;
    }

    // Pulse start; the datapath completes `compute_latency` later and
    // raises the done line.
    *now += cpu.mmio_write;
    mmio += cpu.mmio_write;
    bus.write(base + u64::from(RegisterMap::CTRL), CTRL_START, *now)?;
    let wait_start = *now;

    // The datapath completes and raises its done line; a masked line
    // never wakes the blocked driver.
    *now += compute_latency;
    gic.raise(irq_line);
    if !gic.is_enabled(irq_line) {
        return Err(SocError::PollTimeout);
    }
    // Interrupt entry, then acknowledge our line (foreign pending lines
    // stay pending for their own handlers).
    *now += cpu.irq_entry;
    gic.ack(irq_line);

    // One status read confirms done (no spin).
    *now += cpu.mmio_read;
    let status = bus.read(base + u64::from(RegisterMap::STATUS), *now)?;
    if status & STATUS_DONE == 0 {
        return Err(SocError::PollTimeout);
    }
    let compute_wait = *now - wait_start;

    // Read the class register.
    *now += cpu.mmio_read;
    mmio += cpu.mmio_read;
    let class = bus.read(base + u64::from(RegisterMap::OUT_CLASS), *now)? as usize;

    Ok(InferenceRecord {
        class,
        started_at,
        completed_at: *now,
        breakdown: InferenceBreakdown {
            dispatch: cpu.runtime_dispatch,
            mmio,
            compute_wait,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{pack_features, AccelPeripheral};
    use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
    use canids_qnn::prelude::*;

    fn setup() -> (AxiInterconnect, u64, AcceleratorIp) {
        let mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        let ip = AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap();
        let mut bus = AxiInterconnect::new();
        let base = 0xA000_0000u64;
        bus.map(base, 0x1_0000, Box::new(AccelPeripheral::new(ip.clone())))
            .unwrap();
        (bus, base, ip)
    }

    #[test]
    fn inference_latency_is_about_0_12_ms() {
        let (mut bus, base, _) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut now = SimTime::ZERO;
        let words = pack_features(&[1.0f32; 75]);
        let rec = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
        let ms = rec.latency().as_millis_f64();
        assert!(
            (0.09..0.13).contains(&ms),
            "driver latency {ms} ms vs paper-scale 0.1-0.12 ms"
        );
        assert_eq!(rec.latency(), rec.breakdown.total());
    }

    #[test]
    fn class_matches_functional_model() {
        let (mut bus, base, ip) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut now = SimTime::ZERO;
        for seed in 0u64..16 {
            let bits: Vec<f32> = (0..75)
                .map(|i| f32::from((seed.wrapping_mul(i as u64 + 13) >> 2) & 1 == 1))
                .collect();
            let words = pack_features(&bits);
            let rec = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
            let x: Vec<u32> = bits.iter().map(|&b| u32::from(b >= 0.5)).collect();
            assert_eq!(rec.class, ip.infer(&x).0, "seed {seed}");
        }
    }

    #[test]
    fn dispatch_dominates_breakdown() {
        let (mut bus, base, _) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut now = SimTime::ZERO;
        let words = pack_features(&[0.0f32; 75]);
        let rec = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
        assert!(rec.breakdown.dispatch > rec.breakdown.mmio);
        assert!(rec.breakdown.dispatch > rec.breakdown.compute_wait);
        assert!(rec.breakdown.compute_wait > SimTime::ZERO);
    }

    #[test]
    fn baremetal_cpu_is_much_faster() {
        let (mut bus, base, _) = setup();
        let words = pack_features(&[0.0f32; 75]);
        let mut now = SimTime::ZERO;
        let linux = run_inference(
            &mut bus,
            &CpuModel::zynqmp_a53_linux(),
            &mut now,
            base,
            &words,
        )
        .unwrap();
        let bm = run_inference(
            &mut bus,
            &CpuModel::zynqmp_a53_baremetal(),
            &mut now,
            base,
            &words,
        )
        .unwrap();
        assert!(bm.latency().as_nanos() * 5 < linux.latency().as_nanos());
    }

    #[test]
    fn irq_path_matches_polling_classes() {
        let (mut bus, base, ip) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut gic = InterruptController::new();
        gic.set_enabled(crate::interrupt::accel_irq_line(0), true);
        let latency = SimTime::from_secs_f64(ip.latency_secs());
        let mut now = SimTime::ZERO;
        for seed in 0u64..8 {
            let bits: Vec<f32> = (0..75)
                .map(|i| f32::from((seed.wrapping_mul(i as u64 + 29) >> 1) & 1 == 1))
                .collect();
            let words = pack_features(&bits);
            let rec = run_inference_irq(
                &mut bus,
                &cpu,
                &mut gic,
                &mut now,
                base,
                crate::interrupt::accel_irq_line(0),
                &words,
                latency,
            )
            .unwrap();
            let x: Vec<u32> = bits.iter().map(|&b| u32::from(b >= 0.5)).collect();
            assert_eq!(rec.class, ip.infer(&x).0, "seed {seed}");
            assert_eq!(rec.latency(), rec.breakdown.total());
            // The wait covers the compute plus the interrupt entry.
            assert!(rec.breakdown.compute_wait >= latency + cpu.irq_entry);
        }
    }

    #[test]
    fn irq_path_ignores_unrelated_pending_interrupts() {
        // Regression: a pending foreign line (e.g. CAN0 RX, enabled by
        // default on the board) used to win the claim and abort the
        // inference as a fake PollTimeout, leaving both lines stale.
        let (mut bus, base, ip) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut gic = InterruptController::new();
        gic.set_enabled(crate::interrupt::accel_irq_line(0), true);
        gic.set_enabled(crate::interrupt::IRQ_CAN0, true);
        gic.raise(crate::interrupt::IRQ_CAN0);
        let words = pack_features(&[1.0f32; 75]);
        let mut now = SimTime::ZERO;
        let rec = run_inference_irq(
            &mut bus,
            &cpu,
            &mut gic,
            &mut now,
            base,
            crate::interrupt::accel_irq_line(0),
            &words,
            SimTime::from_secs_f64(ip.latency_secs()),
        )
        .unwrap();
        assert_eq!(rec.class, ip.infer(&[1u32; 75]).0);
        // The foreign line is untouched, ours is acknowledged.
        assert!(gic.is_pending(crate::interrupt::IRQ_CAN0));
        assert!(!gic.is_pending(crate::interrupt::accel_irq_line(0)));
    }

    #[test]
    fn masked_irq_line_fails_instead_of_waking() {
        let (mut bus, base, ip) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut gic = InterruptController::new();
        let words = pack_features(&[0.0f32; 75]);
        let mut now = SimTime::ZERO;
        let err = run_inference_irq(
            &mut bus,
            &cpu,
            &mut gic,
            &mut now,
            base,
            crate::interrupt::accel_irq_line(0),
            &words,
            SimTime::from_secs_f64(ip.latency_secs()),
        )
        .unwrap_err();
        assert_eq!(err, SocError::PollTimeout);
        // The completion is latched pending for whenever the line is
        // unmasked.
        assert!(gic.is_pending(crate::interrupt::accel_irq_line(0)));
    }

    #[test]
    fn irq_completion_costs_more_than_polling_under_linux() {
        // poll_interval-grained spinning beats a 9 us interrupt entry for
        // a microsecond-scale compute — the quantitative reason the
        // paper's per-message path polls.
        let (mut bus, base, ip) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let words = pack_features(&[1.0f32; 75]);
        let mut now = SimTime::ZERO;
        let polled = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
        let mut gic = InterruptController::new();
        gic.set_enabled(crate::interrupt::accel_irq_line(0), true);
        let irq = run_inference_irq(
            &mut bus,
            &cpu,
            &mut gic,
            &mut now,
            base,
            crate::interrupt::accel_irq_line(0),
            &words,
            SimTime::from_secs_f64(ip.latency_secs()),
        )
        .unwrap();
        assert!(irq.latency() > polled.latency());
        assert_eq!(irq.class, polled.class);
    }

    #[test]
    fn consecutive_inferences_advance_time() {
        let (mut bus, base, _) = setup();
        let cpu = CpuModel::zynqmp_a53_linux();
        let mut now = SimTime::ZERO;
        let words = pack_features(&[0.0f32; 75]);
        let a = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
        let b = run_inference(&mut bus, &cpu, &mut now, base, &words).unwrap();
        assert!(b.started_at >= a.completed_at);
    }
}
