//! Error types for the SoC substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the bus fabric, peripherals and drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// No peripheral is mapped at the address.
    UnmappedAddress(u64),
    /// A mapping would overlap an existing region.
    OverlappingRegion {
        /// Base of the new region.
        base: u64,
        /// Size of the new region.
        size: u64,
    },
    /// Write to a read-only register or read of a write-only register.
    AccessViolation {
        /// Absolute address.
        addr: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An accelerator index that was never attached.
    NoSuchAccelerator(usize),
    /// Started an inference while the IP was still busy.
    DeviceBusy,
    /// The feature vector length does not match the IP input width.
    InputDimension {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        actual: usize,
    },
    /// Polling exceeded the watchdog budget (hardware hang).
    PollTimeout,
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnmappedAddress(a) => write!(f, "no peripheral mapped at {a:#x}"),
            SocError::OverlappingRegion { base, size } => {
                write!(f, "region {base:#x}+{size:#x} overlaps an existing mapping")
            }
            SocError::AccessViolation { addr, reason } => {
                write!(f, "access violation at {addr:#x}: {reason}")
            }
            SocError::NoSuchAccelerator(i) => write!(f, "accelerator {i} not attached"),
            SocError::DeviceBusy => write!(f, "accelerator busy"),
            SocError::InputDimension { expected, actual } => {
                write!(f, "input has {actual} features, IP expects {expected}")
            }
            SocError::PollTimeout => write!(f, "status poll exceeded watchdog budget"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(SocError::UnmappedAddress(0xA000_0000)
            .to_string()
            .contains("0xa0000000"));
        assert!(SocError::InputDimension {
            expected: 75,
            actual: 10
        }
        .to_string()
        .contains("75"));
    }
}
