//! AXI-Stream DMA batch inference (driver-overhead ablation).
//!
//! The paper's 0.12 ms per-message path pays the runtime dispatch on
//! every frame. A DMA engine amortises it: the driver prepares a buffer
//! of `n` packed frames, starts one transfer, and the accelerator
//! streams through them back-to-back at its initiation interval. This
//! module models that alternative integration — used by the ablation
//! tests to show *why* the paper's per-message latency is
//! software-bound, and what a batched deployment would buy.

use canids_can::time::SimTime;
use canids_dataflow::ip::AcceleratorIp;

use crate::cpu::CpuModel;
use crate::error::SocError;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Sustained stream bandwidth between DDR and the PL (bytes/s).
    pub bandwidth_bytes_per_s: f64,
    /// One-off descriptor setup cost per transfer (software).
    pub setup: SimTime,
    /// Completion-interrupt service cost per transfer.
    pub completion_irq: SimTime,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            // HP port at 128 bit × 200 MHz, conservatively derated.
            bandwidth_bytes_per_s: 1.6e9,
            setup: SimTime::from_micros(20),
            completion_irq: SimTime::from_micros(12),
        }
    }
}

/// Result of one batched inference transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Classes, one per frame in the batch.
    pub classes: Vec<usize>,
    /// Wall time of the whole transfer (software + stream + compute).
    pub total: SimTime,
    /// Amortised per-frame latency.
    pub per_frame: SimTime,
}

/// Runs a batch of packed feature vectors through the IP via a modelled
/// DMA transfer.
///
/// # Errors
///
/// [`SocError::InputDimension`] when any vector has the wrong width.
pub fn run_batch(
    ip: &AcceleratorIp,
    cpu: &CpuModel,
    dma: DmaConfig,
    batch: &[Vec<f32>],
) -> Result<BatchReport, SocError> {
    let dim = ip.input_dim();
    for b in batch {
        if b.len() != dim {
            return Err(SocError::InputDimension {
                expected: dim,
                actual: b.len(),
            });
        }
    }
    // Functional results from the (bit-exact) IP model.
    let classes: Vec<usize> = batch
        .iter()
        .map(|bits| {
            let x: Vec<u32> = bits.iter().map(|&v| u32::from(v >= 0.5)).collect();
            ip.infer(&x).0
        })
        .collect();

    // Timing: one dispatch + descriptor setup, then the stream runs at
    // min(DMA bandwidth, accelerator II).
    let n = batch.len() as u64;
    let bytes = n * u64::from(ip.input_words()) * 4;
    let stream_s = bytes as f64 / dma.bandwidth_bytes_per_s;
    let ii_s = ip.initiation_interval() as f64 / ip.clock_hz() as f64;
    let pipeline_s = ip.latency_secs() + ii_s * (n.saturating_sub(1)) as f64;
    let compute_s = pipeline_s.max(stream_s);
    let total =
        cpu.runtime_dispatch + dma.setup + SimTime::from_secs_f64(compute_s) + dma.completion_irq;
    let per_frame = SimTime::from_nanos(total.as_nanos() / n.max(1));
    Ok(BatchReport {
        classes,
        total,
        per_frame,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataflow::ip::CompileConfig;
    use canids_qnn::prelude::*;

    fn ip() -> AcceleratorIp {
        let mlp = QuantMlp::new(MlpConfig::paper_4bit()).unwrap();
        AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap()
    }

    fn batch(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..75).map(|j| f32::from((i + j) % 2 == 0)).collect())
            .collect()
    }

    #[test]
    fn batch_amortises_dispatch() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let one = run_batch(&ip, &cpu, DmaConfig::default(), &batch(1)).unwrap();
        let many = run_batch(&ip, &cpu, DmaConfig::default(), &batch(256)).unwrap();
        assert!(many.per_frame < one.per_frame);
        // 256-frame batches push per-frame cost to the microsecond range.
        assert!(
            many.per_frame < SimTime::from_micros(5),
            "per-frame {}",
            many.per_frame
        );
    }

    #[test]
    fn classes_match_functional_model() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let frames = batch(16);
        let report = run_batch(&ip, &cpu, DmaConfig::default(), &frames).unwrap();
        for (bits, &class) in frames.iter().zip(&report.classes) {
            let x: Vec<u32> = bits.iter().map(|&v| u32::from(v >= 0.5)).collect();
            assert_eq!(class, ip.infer(&x).0);
        }
    }

    #[test]
    fn per_message_mode_still_wins_on_detection_delay() {
        // The ablation's flip side (and the paper's design point): batch
        // mode amortises cost but delays the verdict of the *first* frame
        // by the whole batch. Per-message latency of batch-256 total must
        // exceed the single-message driver path.
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let many = run_batch(&ip, &cpu, DmaConfig::default(), &batch(256)).unwrap();
        assert!(
            many.total > SimTime::from_micros(120),
            "batch verdict delay {}",
            many.total
        );
    }

    #[test]
    fn input_validation() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let err = run_batch(&ip, &cpu, DmaConfig::default(), &[vec![0.0; 10]]).unwrap_err();
        assert!(matches!(err, SocError::InputDimension { .. }));
    }
}
