//! AXI-Stream DMA batch inference (driver-overhead ablation).
//!
//! The paper's 0.12 ms per-message path pays the runtime dispatch on
//! every frame. A DMA engine amortises it: the driver prepares a buffer
//! of `n` packed frames, starts one transfer, and the accelerator
//! streams through them back-to-back at its initiation interval. This
//! module models that alternative integration — used by the ablation
//! tests to show *why* the paper's per-message latency is
//! software-bound, and what a batched deployment would buy.

use canids_can::time::SimTime;
use canids_dataflow::ip::AcceleratorIp;

use crate::cpu::CpuModel;
use crate::error::SocError;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Sustained stream bandwidth between DDR and the PL (bytes/s).
    pub bandwidth_bytes_per_s: f64,
    /// One-off descriptor setup cost per transfer (software).
    pub setup: SimTime,
    /// Completion-interrupt service cost per transfer.
    pub completion_irq: SimTime,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            // HP port at 128 bit × 200 MHz, conservatively derated.
            bandwidth_bytes_per_s: 1.6e9,
            setup: SimTime::from_micros(20),
            completion_irq: SimTime::from_micros(12),
        }
    }
}

/// Result of one batched inference transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Classes, one per frame in the batch.
    pub classes: Vec<usize>,
    /// Wall time of the whole transfer (software + stream + compute).
    pub total: SimTime,
    /// Amortised per-frame latency.
    pub per_frame: SimTime,
}

/// A batch of frames quantised and packed for DMA streaming **once**,
/// then consumable by any number of accelerator IPs — the shared
/// feature-packing substrate of the multi-detector deployment (N models
/// read one packed buffer instead of re-packing per model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureBatch {
    xs: Vec<Vec<u32>>,
    dim: usize,
}

impl FeatureBatch {
    /// An empty batch of `dim`-wide frames.
    pub fn new(dim: usize) -> Self {
        FeatureBatch {
            xs: Vec::new(),
            dim,
        }
    }

    /// Quantises and appends one frame's binary features.
    ///
    /// # Errors
    ///
    /// [`SocError::InputDimension`] when the vector has the wrong width.
    pub fn push(&mut self, bits: &[f32]) -> Result<(), SocError> {
        if bits.len() != self.dim {
            return Err(SocError::InputDimension {
                expected: self.dim,
                actual: bits.len(),
            });
        }
        self.xs
            .push(bits.iter().map(|&v| u32::from(v >= 0.5)).collect());
        Ok(())
    }

    /// Packs a slice of feature vectors in one pass.
    ///
    /// # Errors
    ///
    /// [`SocError::InputDimension`] when any vector has the wrong width.
    pub fn from_features(dim: usize, batch: &[Vec<f32>]) -> Result<Self, SocError> {
        let mut fb = FeatureBatch::new(dim);
        for bits in batch {
            fb.push(bits)?;
        }
        Ok(fb)
    }

    /// Frames in the batch.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no frame has been pushed.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature width per frame.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The quantised frames.
    pub fn frames(&self) -> &[Vec<u32>] {
        &self.xs
    }

    /// Empties the batch, keeping its capacity (hot-path reuse between
    /// DMA windows).
    pub fn clear(&mut self) {
        self.xs.clear();
    }
}

/// The timing of one DMA transfer of `n` frames into `ip`: one dispatch
/// plus descriptor setup, then the stream runs at min(DMA bandwidth,
/// accelerator initiation interval), plus the completion interrupt.
fn transfer_time(ip: &AcceleratorIp, cpu: &CpuModel, dma: DmaConfig, n: u64) -> SimTime {
    let bytes = n * u64::from(ip.input_words()) * 4;
    let stream_s = bytes as f64 / dma.bandwidth_bytes_per_s;
    let ii_s = ip.initiation_interval() as f64 / ip.clock_hz() as f64;
    let pipeline_s = ip.latency_secs() + ii_s * (n.saturating_sub(1)) as f64;
    let compute_s = pipeline_s.max(stream_s);
    cpu.runtime_dispatch + dma.setup + SimTime::from_secs_f64(compute_s) + dma.completion_irq
}

/// Runs a pre-packed batch through one IP via a modelled DMA transfer.
///
/// # Errors
///
/// [`SocError::InputDimension`] when the batch width does not match the
/// IP input width.
pub fn run_batch_shared(
    ip: &AcceleratorIp,
    cpu: &CpuModel,
    dma: DmaConfig,
    batch: &FeatureBatch,
) -> Result<BatchReport, SocError> {
    if batch.dim() != ip.input_dim() {
        return Err(SocError::InputDimension {
            expected: ip.input_dim(),
            actual: batch.dim(),
        });
    }
    // Functional results from the (bit-exact) IP model.
    let classes: Vec<usize> = batch.frames().iter().map(|x| ip.infer(x).0).collect();
    let n = batch.len() as u64;
    let total = transfer_time(ip, cpu, dma, n);
    let per_frame = SimTime::from_nanos(total.as_nanos() / n.max(1));
    Ok(BatchReport {
        classes,
        total,
        per_frame,
    })
}

/// Runs a batch of packed feature vectors through the IP via a modelled
/// DMA transfer.
///
/// # Errors
///
/// [`SocError::InputDimension`] when any vector has the wrong width.
pub fn run_batch(
    ip: &AcceleratorIp,
    cpu: &CpuModel,
    dma: DmaConfig,
    batch: &[Vec<f32>],
) -> Result<BatchReport, SocError> {
    run_batch_shared(
        ip,
        cpu,
        dma,
        &FeatureBatch::from_features(ip.input_dim(), batch)?,
    )
}

/// Result of one batched transfer broadcast to several IPs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBatchReport {
    /// Classes per model, outer index = model, inner = frame.
    pub classes: Vec<Vec<usize>>,
    /// Per-frame fused verdict: `true` when any model flagged the frame.
    pub flagged: Vec<bool>,
    /// Wall time of the whole transfer (software + stream + compute of
    /// the slowest model).
    pub total: SimTime,
    /// Amortised per-frame latency.
    pub per_frame: SimTime,
}

/// Broadcasts one pre-packed batch to `ips` over a shared DMA stream:
/// the descriptor setup and the stream are paid once (every IP taps the
/// same packed buffer), and the transfer completes when the slowest
/// model's pipeline drains.
///
/// # Errors
///
/// [`SocError::NoSuchAccelerator`] when `ips` is empty;
/// [`SocError::InputDimension`] when the batch width does not match any
/// IP input width.
pub fn run_batch_multi(
    ips: &[&AcceleratorIp],
    cpu: &CpuModel,
    dma: DmaConfig,
    batch: &FeatureBatch,
) -> Result<MultiBatchReport, SocError> {
    if ips.is_empty() {
        return Err(SocError::NoSuchAccelerator(0));
    }
    for ip in ips {
        if batch.dim() != ip.input_dim() {
            return Err(SocError::InputDimension {
                expected: ip.input_dim(),
                actual: batch.dim(),
            });
        }
    }
    let classes: Vec<Vec<usize>> = ips
        .iter()
        .map(|ip| batch.frames().iter().map(|x| ip.infer(x).0).collect())
        .collect();
    let flagged: Vec<bool> = (0..batch.len())
        .map(|f| classes.iter().any(|per_model| per_model[f] != 0))
        .collect();
    let n = batch.len() as u64;
    let total = ips
        .iter()
        .map(|ip| transfer_time(ip, cpu, dma, n))
        .max()
        .expect("ips checked non-empty");
    let per_frame = SimTime::from_nanos(total.as_nanos() / n.max(1));
    Ok(MultiBatchReport {
        classes,
        flagged,
        total,
        per_frame,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataflow::ip::CompileConfig;
    use canids_qnn::prelude::*;

    fn ip() -> AcceleratorIp {
        let mlp = QuantMlp::new(MlpConfig::paper_4bit()).unwrap();
        AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap()
    }

    fn batch(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..75).map(|j| f32::from((i + j) % 2 == 0)).collect())
            .collect()
    }

    #[test]
    fn batch_amortises_dispatch() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let one = run_batch(&ip, &cpu, DmaConfig::default(), &batch(1)).unwrap();
        let many = run_batch(&ip, &cpu, DmaConfig::default(), &batch(256)).unwrap();
        assert!(many.per_frame < one.per_frame);
        // 256-frame batches push per-frame cost to the microsecond range.
        assert!(
            many.per_frame < SimTime::from_micros(5),
            "per-frame {}",
            many.per_frame
        );
    }

    #[test]
    fn classes_match_functional_model() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let frames = batch(16);
        let report = run_batch(&ip, &cpu, DmaConfig::default(), &frames).unwrap();
        for (bits, &class) in frames.iter().zip(&report.classes) {
            let x: Vec<u32> = bits.iter().map(|&v| u32::from(v >= 0.5)).collect();
            assert_eq!(class, ip.infer(&x).0);
        }
    }

    #[test]
    fn per_message_mode_still_wins_on_detection_delay() {
        // The ablation's flip side (and the paper's design point): batch
        // mode amortises cost but delays the verdict of the *first* frame
        // by the whole batch. Per-message latency of batch-256 total must
        // exceed the single-message driver path.
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let many = run_batch(&ip, &cpu, DmaConfig::default(), &batch(256)).unwrap();
        assert!(
            many.total > SimTime::from_micros(120),
            "batch verdict delay {}",
            many.total
        );
    }

    #[test]
    fn input_validation() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let err = run_batch(&ip, &cpu, DmaConfig::default(), &[vec![0.0; 10]]).unwrap_err();
        assert!(matches!(err, SocError::InputDimension { .. }));
    }

    #[test]
    fn shared_batch_packs_once_and_matches_per_vec_path() {
        let ip = ip();
        let cpu = CpuModel::zynqmp_a53_linux();
        let frames = batch(32);
        let fb = FeatureBatch::from_features(ip.input_dim(), &frames).unwrap();
        assert_eq!(fb.len(), 32);
        assert!(!fb.is_empty());
        let shared = run_batch_shared(&ip, &cpu, DmaConfig::default(), &fb).unwrap();
        let legacy = run_batch(&ip, &cpu, DmaConfig::default(), &frames).unwrap();
        assert_eq!(shared, legacy);
    }

    #[test]
    fn multi_batch_broadcasts_one_buffer_to_all_models() {
        let cpu = CpuModel::zynqmp_a53_linux();
        let a = ip();
        let b = {
            let mlp = QuantMlp::new(MlpConfig {
                seed: 99,
                ..MlpConfig::paper_4bit()
            })
            .unwrap();
            AcceleratorIp::compile(&mlp.export().unwrap(), CompileConfig::default()).unwrap()
        };
        let frames = batch(16);
        let fb = FeatureBatch::from_features(a.input_dim(), &frames).unwrap();
        let multi = run_batch_multi(&[&a, &b], &cpu, DmaConfig::default(), &fb).unwrap();
        assert_eq!(multi.classes.len(), 2);
        assert_eq!(multi.flagged.len(), 16);
        // Per-model classes match the single-IP shared path exactly.
        let only_a = run_batch_shared(&a, &cpu, DmaConfig::default(), &fb).unwrap();
        let only_b = run_batch_shared(&b, &cpu, DmaConfig::default(), &fb).unwrap();
        assert_eq!(multi.classes[0], only_a.classes);
        assert_eq!(multi.classes[1], only_b.classes);
        for (f, &flag) in multi.flagged.iter().enumerate() {
            assert_eq!(flag, multi.classes[0][f] != 0 || multi.classes[1][f] != 0);
        }
        // The shared stream costs the slowest single transfer, not the sum.
        assert_eq!(multi.total, only_a.total.max(only_b.total));
    }

    #[test]
    fn multi_batch_rejects_empty_and_mismatched() {
        let cpu = CpuModel::zynqmp_a53_linux();
        let fb = FeatureBatch::from_features(75, &batch(4)).unwrap();
        assert!(matches!(
            run_batch_multi(&[], &cpu, DmaConfig::default(), &fb),
            Err(SocError::NoSuchAccelerator(0))
        ));
        let a = ip();
        let wrong = FeatureBatch::from_features(10, &[vec![0.0; 10]]).unwrap();
        assert!(matches!(
            run_batch_multi(&[&a], &cpu, DmaConfig::default(), &wrong),
            Err(SocError::InputDimension { .. })
        ));
    }

    #[test]
    fn feature_batch_clear_reuses_buffer() {
        let mut fb = FeatureBatch::new(3);
        fb.push(&[1.0, 0.0, 1.0]).unwrap();
        assert_eq!(fb.frames(), &[vec![1, 0, 1]]);
        fb.clear();
        assert!(fb.is_empty());
        assert_eq!(fb.dim(), 3);
        assert!(matches!(
            fb.push(&[1.0]),
            Err(SocError::InputDimension {
                expected: 3,
                actual: 1
            })
        ));
    }
}
