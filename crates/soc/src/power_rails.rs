//! Board power rails and energy accounting (PYNQ-PMBus style).
//!
//! The paper measures 2.09 W "directly from the device's power rails
//! (using the PYNQ-PMBus package) while performing inference and other
//! tasks on the ECU (with Linux OS)", giving 0.25 mJ per inference at the
//! 0.12 ms per-message latency. This module reproduces that measurement
//! path: per-rail power contributions (PS logic, PS DDR, PL) summed by a
//! sampling monitor that integrates energy over simulated time.

use canids_can::time::SimTime;
use canids_dataflow::power::PowerEstimate;
use canids_qnn::tensor::pinned_sum_f64;
use serde::{Deserialize, Serialize};

/// One named supply rail with its current power draw model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rail {
    /// Rail name as the PMBus controller reports it.
    pub name: String,
    /// Baseline (idle) draw in watts.
    pub idle_w: f64,
    /// Additional draw at full activity in watts.
    pub active_w: f64,
}

impl Rail {
    /// Power at an activity factor in `[0, 1]`.
    pub fn power_w(&self, activity: f64) -> f64 {
        self.idle_w + self.active_w * activity.clamp(0.0, 1.0)
    }
}

/// The board-level power model: PS rails plus the PL estimate from the
/// dataflow compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardPowerModel {
    /// Processing-system rails (Linux idle ≈ their idle sum).
    pub rails: Vec<Rail>,
    /// Programmable-logic power (static + dynamic at nominal toggle).
    pub pl: PowerEstimate,
}

impl BoardPowerModel {
    /// The ZCU104 model, calibrated to the paper's operating point:
    /// Linux idle ≈ 1.56 W on the PS rails; one A53 core saturated by the
    /// IDS driver adds ≈ 0.22 W; the PL contributes its static plus
    /// activity-dependent dynamic power.
    pub fn zcu104(pl: PowerEstimate) -> Self {
        BoardPowerModel {
            rails: vec![
                Rail {
                    name: "VCCPSINTFP".to_owned(),
                    idle_w: 0.62,
                    active_w: 0.22, // per saturated A53 core (scaled below)
                },
                Rail {
                    name: "VCCPSINTLP".to_owned(),
                    idle_w: 0.18,
                    active_w: 0.02,
                },
                Rail {
                    name: "VCCPSDDR".to_owned(),
                    idle_w: 0.38,
                    active_w: 0.08,
                },
                Rail {
                    name: "VCCPSAUX".to_owned(),
                    idle_w: 0.28,
                    active_w: 0.01,
                },
            ],
            pl,
        }
    }

    /// Total board power at the given CPU activity (busy cores / cores)
    /// and PL toggle activity already folded into `self.pl`.
    pub fn total_w(&self, cpu_activity: f64) -> f64 {
        let ps = pinned_sum_f64(self.rails.iter().map(|r| r.power_w(cpu_activity)));
        ps + self.pl.total_w()
    }

    /// Idle board power (Linux, PL configured but quiescent).
    pub fn idle_w(&self) -> f64 {
        let ps = pinned_sum_f64(self.rails.iter().map(|r| r.idle_w));
        ps + self.pl.static_w
    }
}

/// A sampled power trace with trapezoidal energy integration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerMonitor {
    samples: Vec<(SimTime, f64)>,
}

impl PowerMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        PowerMonitor::default()
    }

    /// Records a power sample at `t` (samples must be time-ordered).
    pub fn sample(&mut self, t: SimTime, watts: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(lt, _)| lt <= t),
            "samples must be time-ordered"
        );
        self.samples.push((t, watts));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean power over the trace.
    pub fn mean_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        pinned_sum_f64(self.samples.iter().map(|&(_, w)| w)) / self.samples.len() as f64
    }

    /// Trapezoidal energy integral over the trace, in joules.
    pub fn energy_j(&self) -> f64 {
        pinned_sum_f64(self.samples.windows(2).map(|pair| {
            let dt = (pair[1].0 - pair[0].0).as_secs_f64();
            0.5 * (pair[0].1 + pair[1].1) * dt
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataflow::power::PowerEstimate;

    fn pl() -> PowerEstimate {
        PowerEstimate {
            dynamic_w: 0.02,
            static_w: 0.28,
        }
    }

    #[test]
    fn zcu104_hits_paper_operating_point() {
        let model = BoardPowerModel::zcu104(pl());
        // One of four cores saturated by the IDS driver: activity 0.25...
        // but the polling driver keeps one core spinning, so activity is
        // measured per-rail: the calibration uses the single-busy-core
        // factor of 1.0 on VCCPSINTFP's active share.
        let total = model.total_w(1.0);
        assert!(
            (total - 2.09).abs() < 0.05,
            "board power {total} W vs paper 2.09 W"
        );
    }

    #[test]
    fn idle_is_below_active() {
        let model = BoardPowerModel::zcu104(pl());
        assert!(model.idle_w() < model.total_w(1.0));
        assert!(model.idle_w() > 1.5, "Linux idle floor");
    }

    #[test]
    fn rail_activity_clamps() {
        let r = Rail {
            name: "X".into(),
            idle_w: 1.0,
            active_w: 0.5,
        };
        assert_eq!(r.power_w(-1.0), 1.0);
        assert_eq!(r.power_w(2.0), 1.5);
    }

    #[test]
    fn monitor_integrates_constant_power() {
        let mut m = PowerMonitor::new();
        m.sample(SimTime::ZERO, 2.0);
        m.sample(SimTime::from_secs(1), 2.0);
        m.sample(SimTime::from_secs(2), 2.0);
        assert!((m.energy_j() - 4.0).abs() < 1e-12);
        assert!((m.mean_w() - 2.0).abs() < 1e-12);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn monitor_trapezoid_on_ramp() {
        let mut m = PowerMonitor::new();
        m.sample(SimTime::ZERO, 0.0);
        m.sample(SimTime::from_secs(2), 4.0);
        assert!((m.energy_j() - 4.0).abs() < 1e-12, "0.5*(0+4)*2");
    }

    #[test]
    fn empty_monitor_is_zero() {
        let m = PowerMonitor::new();
        assert!(m.is_empty());
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.mean_w(), 0.0);
    }
}
