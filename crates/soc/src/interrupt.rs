//! A GIC-style interrupt controller model.
//!
//! Only the facilities the ECU path needs: level interrupt lines (CAN RX,
//! accelerator done), per-line enables, and a claim/ack cycle.

/// Interrupt line assigned to CAN0 RX (mirrors the ZynqMP GIC SPI).
pub const IRQ_CAN0: u32 = 55;
/// Interrupt line assigned to the first PL accelerator.
pub const IRQ_ACCEL0: u32 = 121;

/// A simple 128-line interrupt controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterruptController {
    pending: u128,
    enabled: u128,
}

impl InterruptController {
    /// Creates a controller with all lines disabled and idle.
    pub fn new() -> Self {
        InterruptController::default()
    }

    /// Enables or disables a line.
    ///
    /// # Panics
    ///
    /// Panics when `line >= 128`.
    pub fn set_enabled(&mut self, line: u32, enabled: bool) {
        assert!(line < 128, "line out of range");
        if enabled {
            self.enabled |= 1 << line;
        } else {
            self.enabled &= !(1 << line);
        }
    }

    /// Raises a line (edge from a peripheral).
    ///
    /// # Panics
    ///
    /// Panics when `line >= 128`.
    pub fn raise(&mut self, line: u32) {
        assert!(line < 128, "line out of range");
        self.pending |= 1 << line;
    }

    /// Highest-priority (lowest-numbered) pending *and enabled* line.
    pub fn claim(&self) -> Option<u32> {
        let active = self.pending & self.enabled;
        if active == 0 {
            None
        } else {
            Some(active.trailing_zeros())
        }
    }

    /// Acknowledges (clears) a pending line.
    ///
    /// # Panics
    ///
    /// Panics when `line >= 128`.
    pub fn ack(&mut self, line: u32) {
        assert!(line < 128, "line out of range");
        self.pending &= !(1 << line);
    }

    /// Whether a line is pending (regardless of enable).
    pub fn is_pending(&self, line: u32) -> bool {
        line < 128 && self.pending & (1 << line) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lines_are_not_claimed() {
        let mut gic = InterruptController::new();
        gic.raise(IRQ_CAN0);
        assert_eq!(gic.claim(), None);
        gic.set_enabled(IRQ_CAN0, true);
        assert_eq!(gic.claim(), Some(IRQ_CAN0));
    }

    #[test]
    fn claim_returns_lowest_line() {
        let mut gic = InterruptController::new();
        gic.set_enabled(IRQ_CAN0, true);
        gic.set_enabled(IRQ_ACCEL0, true);
        gic.raise(IRQ_ACCEL0);
        gic.raise(IRQ_CAN0);
        assert_eq!(gic.claim(), Some(IRQ_CAN0));
        gic.ack(IRQ_CAN0);
        assert_eq!(gic.claim(), Some(IRQ_ACCEL0));
        gic.ack(IRQ_ACCEL0);
        assert_eq!(gic.claim(), None);
    }

    #[test]
    fn pending_is_tracked_independently_of_enable() {
        let mut gic = InterruptController::new();
        gic.raise(3);
        assert!(gic.is_pending(3));
        assert!(!gic.is_pending(4));
        assert_eq!(gic.claim(), None);
    }

    #[test]
    #[should_panic(expected = "line out of range")]
    fn out_of_range_line_panics() {
        let mut gic = InterruptController::new();
        gic.raise(128);
    }
}
