//! A GIC-style interrupt controller model.
//!
//! Only the facilities the ECU path needs: level interrupt lines (CAN RX,
//! accelerator done), per-line enables, and a claim/ack cycle. The
//! controller models 256 SPI lines — enough for the CAN controller plus a
//! full multi-model PL deployment with one completion line per
//! accelerator (see [`accel_irq_line`]).

/// Interrupt line assigned to CAN0 RX (mirrors the ZynqMP GIC SPI).
pub const IRQ_CAN0: u32 = 55;
/// Interrupt line assigned to the first PL accelerator.
pub const IRQ_ACCEL0: u32 = 121;
/// Number of interrupt lines the controller models.
pub const IRQ_LINES: u32 = 256;

/// The completion-interrupt line of PL accelerator `idx` (consecutive
/// SPIs starting at [`IRQ_ACCEL0`], as the PL-to-PS interrupt fabric
/// routes them).
///
/// # Panics
///
/// Panics when the line would exceed the controller's range.
pub fn accel_irq_line(idx: usize) -> u32 {
    let line = IRQ_ACCEL0 + idx as u32;
    assert!(line < IRQ_LINES, "accelerator {idx} exceeds IRQ fabric");
    line
}

/// A simple 256-line interrupt controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterruptController {
    pending: [u128; 2],
    enabled: [u128; 2],
}

fn split(line: u32) -> (usize, u128) {
    assert!(line < IRQ_LINES, "line out of range");
    ((line / 128) as usize, 1u128 << (line % 128))
}

impl InterruptController {
    /// Creates a controller with all lines disabled and idle.
    pub fn new() -> Self {
        InterruptController::default()
    }

    /// Enables or disables a line.
    ///
    /// # Panics
    ///
    /// Panics when `line >= 256`.
    pub fn set_enabled(&mut self, line: u32, enabled: bool) {
        let (w, bit) = split(line);
        if enabled {
            self.enabled[w] |= bit;
        } else {
            self.enabled[w] &= !bit;
        }
    }

    /// Whether a line is enabled.
    pub fn is_enabled(&self, line: u32) -> bool {
        line < IRQ_LINES && {
            let (w, bit) = split(line);
            self.enabled[w] & bit != 0
        }
    }

    /// Raises a line (edge from a peripheral).
    ///
    /// # Panics
    ///
    /// Panics when `line >= 256`.
    pub fn raise(&mut self, line: u32) {
        let (w, bit) = split(line);
        self.pending[w] |= bit;
    }

    /// Highest-priority (lowest-numbered) pending *and enabled* line.
    pub fn claim(&self) -> Option<u32> {
        for (w, (&pending, &enabled)) in self.pending.iter().zip(&self.enabled).enumerate() {
            let active = pending & enabled;
            if active != 0 {
                return Some(w as u32 * 128 + active.trailing_zeros());
            }
        }
        None
    }

    /// Acknowledges (clears) a pending line.
    ///
    /// # Panics
    ///
    /// Panics when `line >= 256`.
    pub fn ack(&mut self, line: u32) {
        let (w, bit) = split(line);
        self.pending[w] &= !bit;
    }

    /// Whether a line is pending (regardless of enable).
    pub fn is_pending(&self, line: u32) -> bool {
        line < IRQ_LINES && {
            let (w, bit) = split(line);
            self.pending[w] & bit != 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lines_are_not_claimed() {
        let mut gic = InterruptController::new();
        gic.raise(IRQ_CAN0);
        assert_eq!(gic.claim(), None);
        gic.set_enabled(IRQ_CAN0, true);
        assert_eq!(gic.claim(), Some(IRQ_CAN0));
        assert!(gic.is_enabled(IRQ_CAN0));
    }

    #[test]
    fn claim_returns_lowest_line() {
        let mut gic = InterruptController::new();
        gic.set_enabled(IRQ_CAN0, true);
        gic.set_enabled(IRQ_ACCEL0, true);
        gic.raise(IRQ_ACCEL0);
        gic.raise(IRQ_CAN0);
        assert_eq!(gic.claim(), Some(IRQ_CAN0));
        gic.ack(IRQ_CAN0);
        assert_eq!(gic.claim(), Some(IRQ_ACCEL0));
        gic.ack(IRQ_ACCEL0);
        assert_eq!(gic.claim(), None);
    }

    #[test]
    fn pending_is_tracked_independently_of_enable() {
        let mut gic = InterruptController::new();
        gic.raise(3);
        assert!(gic.is_pending(3));
        assert!(!gic.is_pending(4));
        assert_eq!(gic.claim(), None);
    }

    #[test]
    fn upper_word_lines_work() {
        // An 8-detector deployment uses accelerator lines 121..=128; line
        // 128 crosses into the second word.
        let mut gic = InterruptController::new();
        let line = accel_irq_line(7);
        assert_eq!(line, 128);
        gic.set_enabled(line, true);
        gic.raise(line);
        assert_eq!(gic.claim(), Some(line));
        gic.ack(line);
        assert_eq!(gic.claim(), None);
        assert!(!gic.is_pending(line));
    }

    #[test]
    fn accel_lines_are_consecutive() {
        assert_eq!(accel_irq_line(0), IRQ_ACCEL0);
        assert_eq!(accel_irq_line(3), IRQ_ACCEL0 + 3);
    }

    #[test]
    #[should_panic(expected = "line out of range")]
    fn out_of_range_line_panics() {
        let mut gic = InterruptController::new();
        gic.raise(256);
    }
}
