//! Processing-system cost model.
//!
//! The paper's per-message latency (0.12 ms) is dominated not by the
//! accelerator (sub-microsecond compute) but by the software path on the
//! quad-core Cortex-A53 running Linux (PYNQ image): interrupt entry,
//! frame copy, the runtime's driver-dispatch overhead and `mmap`-ed
//! register accesses. This module is that cost model, with the
//! calibration documented in EXPERIMENTS.md.

use canids_can::time::SimTime;
use serde::{Deserialize, Serialize};

/// Per-operation software costs for a Linux userspace driver on the PS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Number of application cores (ZU7EV: quad A53).
    pub cores: usize,
    /// One `mmap`-ed device-register read, including barriers.
    pub mmio_read: SimTime,
    /// One `mmap`-ed device-register write, including barriers.
    pub mmio_write: SimTime,
    /// CAN RX interrupt entry + kernel handler + wakeup.
    pub irq_entry: SimTime,
    /// Copy + feature-encode of one CAN frame into the driver buffer.
    pub frame_copy: SimTime,
    /// Fixed per-call overhead of the accelerator runtime (the PYNQ
    /// driver-dispatch path the paper measures through).
    pub runtime_dispatch: SimTime,
    /// Interval between consecutive status polls (the poll loop body).
    pub poll_interval: SimTime,
}

impl CpuModel {
    /// The ZCU104 PS running the PYNQ Linux image — the paper's ECU.
    ///
    /// Calibrated so the end-to-end per-message path (IRQ + copy +
    /// dispatch + MMIO + compute) lands at the paper's measured 0.12 ms.
    pub fn zynqmp_a53_linux() -> Self {
        CpuModel {
            cores: 4,
            mmio_read: SimTime::from_nanos(140),
            mmio_write: SimTime::from_nanos(120),
            irq_entry: SimTime::from_micros(9),
            frame_copy: SimTime::from_micros(6),
            runtime_dispatch: SimTime::from_micros(98),
            poll_interval: SimTime::from_nanos(400),
        }
    }

    /// A bare-metal variant: no Linux, no runtime dispatch — the latency
    /// floor an AUTOSAR-style integration could reach (used by the
    /// driver-overhead ablation).
    pub fn zynqmp_a53_baremetal() -> Self {
        CpuModel {
            cores: 4,
            mmio_read: SimTime::from_nanos(60),
            mmio_write: SimTime::from_nanos(50),
            irq_entry: SimTime::from_micros(1),
            frame_copy: SimTime::from_micros(1),
            runtime_dispatch: SimTime::from_micros(2),
            poll_interval: SimTime::from_nanos(200),
        }
    }

    /// Total software receive-path cost (IRQ + copy/encode).
    pub fn rx_path(&self) -> SimTime {
        self.irq_entry + self.frame_copy
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::zynqmp_a53_linux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_model_matches_paper_scale() {
        let m = CpuModel::zynqmp_a53_linux();
        // Software path must dominate and land near 0.113 ms before
        // MMIO/compute: 9 + 6 + 98 = 113 µs.
        let base = m.rx_path() + m.runtime_dispatch;
        assert!((base.as_micros_f64() - 113.0).abs() < 1.0, "{base}");
        assert_eq!(m.cores, 4);
    }

    #[test]
    fn baremetal_is_far_cheaper() {
        let linux = CpuModel::zynqmp_a53_linux();
        let bm = CpuModel::zynqmp_a53_baremetal();
        assert!(bm.rx_path() + bm.runtime_dispatch < SimTime::from_micros(5));
        assert!(
            (linux.rx_path() + linux.runtime_dispatch).as_nanos()
                > 10 * (bm.rx_path() + bm.runtime_dispatch).as_nanos()
        );
    }

    #[test]
    fn mmio_costs_are_sub_microsecond() {
        let m = CpuModel::default();
        assert!(m.mmio_read.as_nanos() < 1_000);
        assert!(m.mmio_write.as_nanos() < 1_000);
    }
}
