//! Property-based tests of the quantizers and the integer export.

use canids_qnn::prelude::*;
use canids_qnn::quant::{ActQuantizer, WeightQuantizer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn weight_quantisation_error_bounded(
        bits in 2u8..=8,
        weights in proptest::collection::vec(-10.0f32..10.0, 1..64),
    ) {
        let q = WeightQuantizer::new(BitWidth::new(bits).unwrap());
        let mut out = vec![0.0; weights.len()];
        let scale = q.fake_quantize(&weights, &mut out);
        prop_assert!(scale > 0.0);
        for (w, o) in weights.iter().zip(&out) {
            prop_assert!((w - o).abs() <= scale / 2.0 + 1e-5,
                "|{w} - {o}| > {scale}/2");
        }
    }

    #[test]
    fn weight_codes_stay_in_narrow_range(
        bits in 2u8..=8,
        weights in proptest::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let width = BitWidth::new(bits).unwrap();
        let q = WeightQuantizer::new(width);
        let scale = q.scale(&weights);
        for &w in &weights {
            let code = q.to_int(w, scale);
            prop_assert!(code.abs() <= width.signed_max());
        }
    }

    #[test]
    fn activation_levels_bounded_and_monotone(
        bits in 2u8..=8,
        ceiling in 0.5f32..10.0,
        zs in proptest::collection::vec(-5.0f32..15.0, 1..64),
    ) {
        let mut q = ActQuantizer::new(BitWidth::new(bits).unwrap());
        q.observe(&[ceiling]);
        let mut sorted = zs.clone();
        sorted.sort_by(f32::total_cmp);
        let mut last = 0u32;
        for &z in &sorted {
            let level = q.to_int(z);
            prop_assert!(level <= q.bits().unsigned_max());
            prop_assert!(level >= last, "quantisation must be monotone");
            last = level;
        }
    }

    #[test]
    fn export_thresholds_ascend_for_any_seed(seed in 0u64..500) {
        let mlp = QuantMlp::new(MlpConfig {
            input_dim: 8,
            hidden: vec![6],
            seed,
            ..MlpConfig::default()
        })
        .unwrap();
        let model = mlp.export().unwrap();
        for block in &model.blocks {
            for j in 0..block.out_dim {
                let row = block.threshold_row(j);
                prop_assert!(row.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn integer_inference_is_deterministic_and_bounded(
        seed in 0u64..200,
        x in proptest::collection::vec(0u32..=1, 8),
    ) {
        let mlp = QuantMlp::new(MlpConfig {
            input_dim: 8,
            hidden: vec![6],
            seed,
            ..MlpConfig::default()
        })
        .unwrap();
        let model = mlp.export().unwrap();
        let a = model.infer(&x);
        let b = model.infer(&x);
        prop_assert_eq!(a.class, b.class);
        prop_assert_eq!(&a.scores, &b.scores);
        prop_assert!(a.class < 2);
    }

    #[test]
    fn confusion_matrix_metrics_in_unit_range(
        tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        for v in [cm.precision(), cm.recall(), cm.f1(), cm.fnr(), cm.fpr(), cm.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        prop_assert!((cm.recall() + cm.fnr() - 1.0).abs() < 1e-12
            || (tp + fn_) == 0);
    }
}
