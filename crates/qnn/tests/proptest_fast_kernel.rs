//! Re-validation of the reassociated fast inference kernel.
//!
//! `linear_forward_fast` reorders each neuron's summation into eight
//! partial-sum lanes, so its logits may differ from the pinned-order
//! kernel in the last float bits. These properties pin what is allowed
//! to change (logit ulps, bounded) and what is not (classification:
//! per-row argmax after quantised inference).

use canids_qnn::layers::QuantLinear;
use canids_qnn::mlp::{MlpConfig, QuantMlp};
use canids_qnn::quant::BitWidth;
use canids_qnn::tensor::{linear_forward, linear_forward_fast, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pseudo_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed | 1;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        data.push(((state >> 16) as f32 / 32768.0) - 1.0);
    }
    Matrix::from_vec(rows, cols, data)
}

/// Encoder-like integer features in `0..=63`, the domain the streaming
/// featuriser feeds the float predict path.
fn pseudo_features(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed | 1;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        data.push(((state >> 20) & 63) as f32);
    }
    Matrix::from_vec(rows, cols, data)
}

/// Same argmax convention as `QuantMlp::predict_batch`.
fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Asserts the two kernels classify `pinned` vs `fast` identically,
/// except where the pinned top-2 logits tie to within the kernels'
/// reassociation rounding (`tol`): quantised weights over integer
/// features produce *mathematically tied* logits routinely, and a tie's
/// float ordering is rounding-defined under either summation order.
/// (The deployed post-quantisation path — `IntegerMlp`'s thresholded
/// integer inference — never touches a float kernel and stays
/// bit-identical unconditionally.)
fn assert_argmax_agrees(pinned: &[f32], fast: &[f32], tol: f32, ctx: &str) {
    let (p, f) = (argmax(pinned), argmax(fast));
    if p != f {
        let gap = (pinned[p] - pinned[f]).abs();
        assert!(
            gap <= tol * (1.0 + pinned[p].abs()),
            "{ctx}: argmax {p} vs {f} with non-tied gap {gap} (pinned {pinned:?} fast {fast:?})"
        );
    }
}

proptest! {
    // The fast kernel is a reassociation, not an approximation: the
    // difference from the pinned kernel stays within a few ulps of the
    // running sum across random shapes, including `k % 8` tails and
    // sub-block output counts.
    #[test]
    fn fast_kernel_error_bounded(
        rows in 1usize..6,
        out in 1usize..70,
        cols in 1usize..90,
        seed in 0u32..500,
    ) {
        let x = pseudo_matrix(rows, cols, seed);
        let w = pseudo_matrix(out, cols, seed.wrapping_add(17));
        let b: Vec<f32> = (0..out).map(|i| i as f32 * 0.01 - 0.1).collect();
        let pinned = linear_forward(&x, &w, &b);
        let fast = linear_forward_fast(&x, &w, &b);
        for (p, f) in pinned.as_slice().iter().zip(fast.as_slice()) {
            prop_assert!(
                (p - f).abs() <= 2e-4 * (1.0 + p.abs()),
                "{rows}x{out}x{cols}: pinned {p} vs fast {f}"
            );
        }
    }

    // Layer-level quantised inference: the shipped eval forward (fast
    // kernel over fake-quantised weights) picks the same class as the
    // pinned kernel over the identical quantised weights, reconstructed
    // independently from `int_weights()`.
    #[test]
    fn quantised_layer_argmax_matches_pinned(
        in_dim in 1usize..80,
        out_dim in 2usize..20,
        batch in 1usize..6,
        bits in 2u8..=8,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = QuantLinear::new(in_dim, out_dim, BitWidth::new(bits).unwrap(), &mut rng);
        let x = pseudo_features(batch, in_dim, seed as u32 ^ 0x5a5a);
        let fast = layer.forward(&x, false);
        let (codes, scale) = layer.int_weights();
        let wq = Matrix::from_vec(
            out_dim,
            in_dim,
            codes.iter().map(|&c| c as f32 * scale).collect(),
        );
        let pinned = linear_forward(&x, &wq, &layer.bias().data);
        for r in 0..batch {
            assert_argmax_agrees(
                pinned.row(r),
                fast.row(r),
                2e-4,
                &format!("row {r} of {batch}x{out_dim}x{in_dim} (w{bits})"),
            );
        }
    }

    // Model-level: random topologies (depth, widths, bit widths, BN
    // on/off) classify identically through the fast eval forward and
    // the pinned-order reference forward, up to mathematical ties.
    #[test]
    fn model_argmax_matches_pinned_reference(
        input_dim in 1usize..40,
        h1 in 1usize..24,
        h2 in 0usize..12,
        classes in 2usize..5,
        bn_flip in 0u8..2,
        bits in 2u8..=8,
        seed in 0u64..100,
    ) {
        let batch_norm = bn_flip == 1;
        let mut hidden = vec![h1];
        if h2 > 0 {
            hidden.push(h2);
        }
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim,
            hidden,
            classes,
            weight_bits: BitWidth::new(bits).unwrap(),
            batch_norm,
            seed,
            ..MlpConfig::default()
        })
        .unwrap();
        let x = pseudo_features(4, input_dim, seed as u32 ^ 0xc3c3);
        let fast = mlp.forward(&x, false);
        let pinned = mlp.forward_reference(&x);
        for r in 0..4 {
            assert_argmax_agrees(
                pinned.row(r),
                fast.row(r),
                1e-3,
                &format!("row {r} (in {input_dim}, classes {classes}, bn {batch_norm})"),
            );
        }
    }
}
