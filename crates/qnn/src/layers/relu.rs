//! Quantised ReLU activation.

use crate::quant::{ActQuantizer, BitWidth};
use crate::tensor::Matrix;

/// ReLU fused with an unsigned uniform activation quantizer — the
/// `QuantReLU` of Brevitas. In hardware this becomes a per-neuron
/// MultiThreshold unit (see `canids-dataflow`).
///
/// # Example
///
/// ```
/// use canids_qnn::layers::QuantReLU;
/// use canids_qnn::quant::BitWidth;
/// use canids_qnn::tensor::Matrix;
///
/// let mut act = QuantReLU::new(BitWidth::W4);
/// let z = Matrix::from_rows(&[&[-1.0, 0.5, 9.9]]);
/// let y = act.forward(&z, true);
/// assert_eq!(y[(0, 0)], 0.0); // negatives clamp to zero
/// assert!(y[(0, 2)] <= act.quantizer().running_max() + 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct QuantReLU {
    quantizer: ActQuantizer,
    cache_z: Option<Matrix>,
}

impl QuantReLU {
    /// Creates a quantised ReLU of the given activation width.
    pub fn new(bits: BitWidth) -> Self {
        QuantReLU {
            quantizer: ActQuantizer::new(bits),
            cache_z: None,
        }
    }

    /// The activation quantizer (scale, ceiling, levels).
    pub fn quantizer(&self) -> &ActQuantizer {
        &self.quantizer
    }

    /// Forward pass. Training mode first updates the calibration
    /// statistics, then quantises; the pre-activations are cached for the
    /// straight-through backward pass.
    pub fn forward(&mut self, z: &Matrix, train: bool) -> Matrix {
        if train {
            self.quantizer.observe(z.as_slice());
            self.cache_z = Some(z.clone());
        }
        let mut y = Matrix::zeros(z.rows(), z.cols());
        for (o, &v) in y.as_mut_slice().iter_mut().zip(z.as_slice()) {
            *o = self.quantizer.fake_quantize(v);
        }
        y
    }

    /// Backward pass: clipped straight-through estimator.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode forward.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let z = self
            .cache_z
            .take()
            .expect("backward requires a training-mode forward");
        let mut dx = Matrix::zeros(dy.rows(), dy.cols());
        for ((o, &g), &v) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(dy.as_slice())
            .zip(z.as_slice())
        {
            *o = g * self.quantizer.ste_mask(v);
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_levels_are_multiples_of_scale() {
        let mut act = QuantReLU::new(BitWidth::W4);
        let z = Matrix::from_rows(&[&[0.1, 0.9, 1.7, 2.5, 3.3]]);
        let y = act.forward(&z, true);
        let s = act.quantizer().scale();
        for &v in y.as_slice() {
            let level = v / s;
            assert!((level - level.round()).abs() < 1e-4, "level {level}");
        }
    }

    #[test]
    fn negatives_zeroed_and_grad_blocked() {
        let mut act = QuantReLU::new(BitWidth::W4);
        // Calibrate the ceiling above the probe value first.
        let _ = act.forward(&Matrix::from_rows(&[&[2.0]]), true);
        let z = Matrix::from_rows(&[&[-2.0, 1.0]]);
        let y = act.forward(&z, true);
        assert_eq!(y[(0, 0)], 0.0);
        let dy = Matrix::from_rows(&[&[1.0, 1.0]]);
        let dx = act.backward(&dy);
        assert_eq!(dx[(0, 0)], 0.0);
        assert_eq!(dx[(0, 1)], 1.0);
    }

    #[test]
    fn grad_blocked_above_ceiling() {
        let mut act = QuantReLU::new(BitWidth::W4);
        let _ = act.forward(&Matrix::from_rows(&[&[2.0]]), true);
        // Ceiling calibrated to 2.0; values above it saturate.
        let z = Matrix::from_rows(&[&[5.0, 1.0]]);
        let _ = act.forward(&z, true);
        let dy = Matrix::from_rows(&[&[1.0, 1.0]]);
        let dx = act.backward(&dy);
        assert_eq!(dx[(0, 0)], 0.0, "saturated activation blocks gradient");
        assert!(dx[(0, 1)] > 0.0);
    }

    #[test]
    fn eval_mode_does_not_recalibrate() {
        let mut act = QuantReLU::new(BitWidth::W4);
        let _ = act.forward(&Matrix::from_rows(&[&[2.0]]), true);
        let ceiling = act.quantizer().running_max();
        let _ = act.forward(&Matrix::from_rows(&[&[100.0]]), false);
        assert_eq!(act.quantizer().running_max(), ceiling);
    }

    #[test]
    #[should_panic(expected = "training-mode forward")]
    fn backward_without_forward_panics() {
        let mut act = QuantReLU::new(BitWidth::W4);
        let _ = act.backward(&Matrix::zeros(1, 1));
    }

    #[test]
    fn one_bit_acts_are_binary() {
        let mut act = QuantReLU::new(BitWidth::W1);
        let z = Matrix::from_rows(&[&[0.9, 0.1, -0.5]]);
        let y = act.forward(&z, true);
        let s = act.quantizer().scale();
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - s).abs() < 1e-6);
        }
    }
}
