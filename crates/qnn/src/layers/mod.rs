//! Quantisation-aware layers: [`QuantLinear`], [`BatchNorm1d`] and
//! [`QuantReLU`] — the Brevitas-style building blocks the paper's MLP is
//! assembled from.

mod batchnorm;
mod linear;
mod relu;

pub use batchnorm::BatchNorm1d;
pub use linear::QuantLinear;
pub use relu::QuantReLU;
