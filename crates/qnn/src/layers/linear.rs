//! Weight-quantised fully-connected layer.

use rand::rngs::StdRng;
use rand::Rng;

use crate::params::ParamTensor;
use crate::quant::{BitWidth, WeightQuantizer};
use crate::tensor::{
    linear_backward_input, linear_backward_params, linear_forward, linear_forward_fast, Matrix,
};

/// A fully-connected layer whose weights are fake-quantised to a symmetric
/// integer grid on every forward pass (quantisation-aware training).
///
/// The backward pass uses the straight-through estimator: gradients flow
/// to the latent full-precision weights unchanged.
///
/// # Example
///
/// ```
/// use canids_qnn::layers::QuantLinear;
/// use canids_qnn::quant::BitWidth;
/// use canids_qnn::tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut layer = QuantLinear::new(4, 2, BitWidth::W4, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let y = layer.forward(&x, false);
/// assert_eq!((y.rows(), y.cols()), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct QuantLinear {
    in_dim: usize,
    out_dim: usize,
    weight: ParamTensor,
    bias: ParamTensor,
    quantizer: WeightQuantizer,
    /// Quantised weights from the latest forward (used by backward and
    /// inspection).
    wq: Matrix,
    last_scale: f32,
    cache_x: Option<Matrix>,
}

impl QuantLinear {
    /// Creates a layer with Kaiming-uniform initialisation.
    pub fn new(in_dim: usize, out_dim: usize, bits: BitWidth, rng: &mut StdRng) -> Self {
        let bound = (6.0 / in_dim.max(1) as f32).sqrt();
        let weight = ParamTensor::from_values(
            (0..in_dim * out_dim)
                .map(|_| rng.gen_range(-bound..=bound))
                .collect(),
        );
        let bias = ParamTensor::zeros(out_dim);
        QuantLinear {
            in_dim,
            out_dim,
            weight,
            bias,
            quantizer: WeightQuantizer::new(bits),
            wq: Matrix::zeros(out_dim, in_dim),
            last_scale: 1.0,
            cache_x: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight quantizer.
    pub fn quantizer(&self) -> WeightQuantizer {
        self.quantizer
    }

    /// Latent full-precision weights (`out × in`, flattened row-major).
    pub fn weight(&self) -> &ParamTensor {
        &self.weight
    }

    /// Bias values.
    pub fn bias(&self) -> &ParamTensor {
        &self.bias
    }

    /// Weight scale from the most recent forward/quantisation.
    pub fn weight_scale(&self) -> f32 {
        self.last_scale
    }

    /// Quantises the current weights and returns `(codes, scale)` where
    /// `weight ≈ code * scale`; the form consumed by the hardware export.
    pub fn int_weights(&self) -> (Vec<i32>, f32) {
        let scale = self.quantizer.scale(&self.weight.data);
        let codes = self
            .weight
            .data
            .iter()
            .map(|&w| self.quantizer.to_int(w, scale))
            .collect();
        (codes, scale)
    }

    /// Forward pass: `y = x · quant(W)ᵀ + b`.
    ///
    /// In training mode the input is cached for the backward pass and
    /// the pinned-order [`linear_forward`] kernel runs, so training
    /// trajectories stay bit-reproducible. Eval mode takes the
    /// reassociated [`linear_forward_fast`] kernel: logits can differ
    /// from the pinned kernel in the last float bits, so classification
    /// can move only where the top logits *mathematically tie* within
    /// kernel rounding (pinned by proptest — see
    /// `tests/proptest_fast_kernel.rs`); the deployed post-quantisation
    /// integer path is bit-identical unconditionally.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        self.last_scale = self
            .quantizer
            .fake_quantize(&self.weight.data, self.wq.as_mut_slice());
        if train {
            self.cache_x = Some(x.clone());
            linear_forward(x, &self.wq, &self.bias.data)
        } else {
            linear_forward_fast(x, &self.wq, &self.bias.data)
        }
    }

    /// Eval-mode forward on the **pinned-order** kernel — the
    /// re-validation reference for [`forward`](Self::forward)'s fast
    /// path. Identical arithmetic to a pre-fast-kernel eval forward;
    /// never caches, never used by training.
    pub fn forward_reference(&mut self, x: &Matrix) -> Matrix {
        self.last_scale = self
            .quantizer
            .fake_quantize(&self.weight.data, self.wq.as_mut_slice());
        linear_forward(x, &self.wq, &self.bias.data)
    }

    /// Backward pass: accumulates parameter gradients (STE for the
    /// quantised weights) and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode forward.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .take()
            .expect("backward requires a training-mode forward");
        linear_backward_params(dy, &x, &mut self.weight.grad, &mut self.bias.grad);
        linear_backward_input(dy, &self.wq)
    }

    /// Mutable views of the layer's trainable tensors, in stable order.
    pub fn params_mut(&mut self) -> [&mut ParamTensor; 2] {
        [&mut self.weight, &mut self.bias]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Multiply-accumulate operations per input sample.
    pub fn macs(&self) -> usize {
        self.in_dim * self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer(in_dim: usize, out_dim: usize) -> QuantLinear {
        let mut rng = StdRng::seed_from_u64(7);
        QuantLinear::new(in_dim, out_dim, BitWidth::W4, &mut rng)
    }

    #[test]
    fn forward_uses_quantised_weights() {
        let mut l = layer(8, 4);
        let x = Matrix::from_vec(1, 8, vec![1.0; 8]);
        let y = l.forward(&x, false);
        // Recompute manually from int weights.
        let (codes, scale) = l.int_weights();
        for o in 0..4 {
            let expect: f32 = (0..8).map(|k| codes[o * 8 + k] as f32 * scale).sum();
            assert!((y[(0, o)] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_flow_via_ste() {
        let mut l = layer(4, 2);
        let x = Matrix::from_vec(2, 4, vec![0.5; 8]);
        let _ = l.forward(&x, true);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let dx = l.backward(&dy);
        assert_eq!((dx.rows(), dx.cols()), (2, 4));
        // Weight gradient: dW[o][k] = sum_b dy[b][o] * x[b][k] = 2 * 0.5 = 1.
        for g in &l.weight().grad {
            assert!((g - 1.0).abs() < 1e-5);
        }
        // Bias gradient: batch size.
        for g in &l.bias().grad {
            assert!((g - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "training-mode forward")]
    fn backward_without_forward_panics() {
        let mut l = layer(4, 2);
        let dy = Matrix::zeros(1, 2);
        let _ = l.backward(&dy);
    }

    #[test]
    fn int_weights_in_narrow_range() {
        let l = layer(16, 8);
        let (codes, scale) = l.int_weights();
        assert!(scale > 0.0);
        assert!(codes.iter().all(|&c| (-7..=7).contains(&c)));
        assert!(codes.iter().any(|&c| c != 0), "init should be nonzero");
    }

    #[test]
    fn deterministic_init_from_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = QuantLinear::new(5, 3, BitWidth::W4, &mut r1);
        let b = QuantLinear::new(5, 3, BitWidth::W4, &mut r2);
        assert_eq!(a.weight().data, b.weight().data);
    }

    #[test]
    fn counters() {
        let l = layer(75, 64);
        assert_eq!(l.param_count(), 75 * 64 + 64);
        assert_eq!(l.macs(), 75 * 64);
        assert_eq!(l.in_dim(), 75);
        assert_eq!(l.out_dim(), 64);
    }
}
