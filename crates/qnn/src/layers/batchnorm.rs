//! 1-D batch normalisation.
//!
//! Placed between each quantised linear layer and its activation
//! quantizer (the standard Brevitas/FINN MLP block); at export time the
//! affine transform folds into the integer thresholds, so batch norm is
//! free in hardware.

use crate::params::ParamTensor;
use crate::tensor::Matrix;

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

/// Batch normalisation over the feature dimension of a `batch × features`
/// activation matrix.
///
/// # Example
///
/// ```
/// use canids_qnn::layers::BatchNorm1d;
/// use canids_qnn::tensor::Matrix;
///
/// let mut bn = BatchNorm1d::new(2);
/// let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
/// let y = bn.forward(&x, true);
/// // Each feature is normalised to zero mean.
/// assert!((y[(0, 0)] + y[(1, 0)]).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    dim: usize,
    gamma: ParamTensor,
    beta: ParamTensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            dim,
            gamma: ParamTensor::from_values(vec![1.0; dim]),
            beta: ParamTensor::zeros(dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Scale parameters (γ).
    pub fn gamma(&self) -> &ParamTensor {
        &self.gamma
    }

    /// Shift parameters (β).
    pub fn beta(&self) -> &ParamTensor {
        &self.beta
    }

    /// Running mean (eval statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance (eval statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The per-feature affine form used at export time:
    /// `y = g * x + c` with `g = γ/√(var+ε)`, `c = β − g·mean`.
    pub fn eval_affine(&self) -> (Vec<f64>, Vec<f64>) {
        let mut g = Vec::with_capacity(self.dim);
        let mut c = Vec::with_capacity(self.dim);
        for j in 0..self.dim {
            let gj = f64::from(self.gamma.data[j])
                / (f64::from(self.running_var[j]) + f64::from(self.eps)).sqrt();
            g.push(gj);
            c.push(f64::from(self.beta.data[j]) - gj * f64::from(self.running_mean[j]));
        }
        (g, c)
    }

    /// Forward pass. Training mode uses batch statistics and updates the
    /// running estimates; eval mode uses the running estimates.
    ///
    /// # Panics
    ///
    /// Panics when `x.cols() != dim`.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.dim, "feature dimension mismatch");
        let n = x.rows().max(1);
        let mut y = Matrix::zeros(x.rows(), x.cols());
        if train {
            let mut mean = vec![0.0f32; self.dim];
            let mut var = vec![0.0f32; self.dim];
            for r in 0..x.rows() {
                for (j, m) in mean.iter_mut().enumerate() {
                    *m += x[(r, j)];
                }
            }
            mean.iter_mut().for_each(|m| *m /= n as f32);
            for r in 0..x.rows() {
                for (j, v) in var.iter_mut().enumerate() {
                    let d = x[(r, j)] - mean[j];
                    *v += d * d;
                }
            }
            var.iter_mut().for_each(|v| *v /= n as f32);

            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut xhat = Matrix::zeros(x.rows(), x.cols());
            for r in 0..x.rows() {
                for j in 0..self.dim {
                    let h = (x[(r, j)] - mean[j]) * inv_std[j];
                    xhat[(r, j)] = h;
                    y[(r, j)] = self.gamma.data[j] * h + self.beta.data[j];
                }
            }
            for j in 0..self.dim {
                self.running_mean[j] =
                    self.momentum * self.running_mean[j] + (1.0 - self.momentum) * mean[j];
                self.running_var[j] =
                    self.momentum * self.running_var[j] + (1.0 - self.momentum) * var[j];
            }
            self.cache = Some(BnCache { xhat, inv_std });
        } else {
            for r in 0..x.rows() {
                for j in 0..self.dim {
                    let h = (x[(r, j)] - self.running_mean[j])
                        / (self.running_var[j] + self.eps).sqrt();
                    y[(r, j)] = self.gamma.data[j] * h + self.beta.data[j];
                }
            }
        }
        y
    }

    /// Backward pass (training mode), returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode forward.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("backward requires a training-mode forward");
        let n = dy.rows().max(1) as f32;
        let mut dx = Matrix::zeros(dy.rows(), dy.cols());

        // Per-feature reductions.
        let mut sum_dy = vec![0.0f32; self.dim];
        let mut sum_dy_xhat = vec![0.0f32; self.dim];
        for r in 0..dy.rows() {
            for j in 0..self.dim {
                let g = dy[(r, j)];
                sum_dy[j] += g;
                sum_dy_xhat[j] += g * cache.xhat[(r, j)];
                self.beta.grad[j] += g;
                self.gamma.grad[j] += g * cache.xhat[(r, j)];
            }
        }
        for r in 0..dy.rows() {
            for j in 0..self.dim {
                let dxhat = dy[(r, j)] * self.gamma.data[j];
                let term = n * dxhat
                    - self.gamma.data[j] * sum_dy[j]
                    - cache.xhat[(r, j)] * self.gamma.data[j] * sum_dy_xhat[j];
                dx[(r, j)] = cache.inv_std[j] * term / n;
            }
        }
        dx
    }

    /// Mutable views of γ and β, in stable order.
    pub fn params_mut(&mut self) -> [&mut ParamTensor; 2] {
        [&mut self.gamma, &mut self.beta]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        2 * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 100.0, -3.0],
            &[2.0, 110.0, -1.0],
            &[3.0, 120.0, 1.0],
            &[4.0, 130.0, 3.0],
        ])
    }

    #[test]
    fn training_normalises_batch() {
        let mut bn = BatchNorm1d::new(3);
        let y = bn.forward(&sample(), true);
        for j in 0..3 {
            let mean: f32 = (0..4).map(|r| y[(r, j)]).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| (y[(r, j)] - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_approach_batch_stats() {
        let mut bn = BatchNorm1d::new(3);
        for _ in 0..60 {
            let _ = bn.forward(&sample(), true);
        }
        assert!((bn.running_mean()[0] - 2.5).abs() < 0.1);
        assert!((bn.running_mean()[1] - 115.0).abs() < 2.0);
        // Batch variance of feature 0 is 1.25.
        assert!((bn.running_var()[0] - 1.25).abs() < 0.15);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(3);
        for _ in 0..60 {
            let _ = bn.forward(&sample(), true);
        }
        let y = bn.forward(&sample(), false);
        // Feature 0, row 0: (1 - 2.5)/sqrt(1.25) ≈ -1.34.
        assert!((y[(0, 0)] + 1.34).abs() < 0.1, "got {}", y[(0, 0)]);
    }

    #[test]
    fn eval_affine_matches_eval_forward() {
        let mut bn = BatchNorm1d::new(3);
        for _ in 0..30 {
            let _ = bn.forward(&sample(), true);
        }
        let (g, c) = bn.eval_affine();
        let x = sample();
        let y = bn.forward(&x, false);
        for r in 0..4 {
            for j in 0..3 {
                let expect = g[j] * f64::from(x[(r, j)]) + c[j];
                assert!((f64::from(y[(r, j)]) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn backward_gradient_check() {
        // Numeric gradient through the full training-mode forward, with a
        // non-uniform upstream gradient (a uniform one is annihilated by
        // the batch-mean subtraction and would make the check vacuous).
        let weights: Vec<f32> = vec![0.7, -1.2, 0.3, 2.0, -0.5, 1.1];
        let loss =
            |y: &Matrix| -> f32 { y.as_slice().iter().zip(&weights).map(|(v, w)| v * w).sum() };
        let fresh = || {
            let mut bn = BatchNorm1d::new(2);
            bn.gamma.data = vec![1.3, 0.7];
            bn.beta.data = vec![0.1, -0.2];
            bn
        };
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 2.0], &[-0.5, 0.3]]);
        let mut bn = fresh();
        let _ = bn.forward(&x, true);
        let dy = Matrix::from_vec(3, 2, weights.clone());
        let dx = bn.backward(&dy);
        let eps = 1e-3f32;
        for r in 0..3 {
            for j in 0..2 {
                let mut xp = x.clone();
                xp[(r, j)] += eps;
                let mut xm = x.clone();
                xm[(r, j)] -= eps;
                let fp = loss(&fresh().forward(&xp, true));
                let fm = loss(&fresh().forward(&xm, true));
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (dx[(r, j)] - numeric).abs() < 2e-2,
                    "dx[{r}][{j}] = {} vs {numeric}",
                    dx[(r, j)]
                );
            }
        }
    }

    #[test]
    fn param_grads_accumulate() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let _ = bn.forward(&x, true);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = bn.backward(&dy);
        // dβ = Σ dy = 2 per feature.
        assert!((bn.beta().grad[0] - 2.0).abs() < 1e-5);
        // dγ = Σ dy·x̂ = 0 for symmetric x̂.
        assert!(bn.gamma().grad[0].abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "training-mode forward")]
    fn backward_without_forward_panics() {
        let mut bn = BatchNorm1d::new(2);
        let _ = bn.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn forward_validates_dim() {
        let mut bn = BatchNorm1d::new(2);
        let _ = bn.forward(&Matrix::zeros(1, 3), true);
    }
}
