//! Quantisation-aware training (QAT) for the CAN-IDS multi-layer
//! perceptrons — the Rust equivalent of the paper's Brevitas/PyTorch
//! training flow.
//!
//! * [`tensor`] — dense-matrix kernels sized for MLP training,
//! * [`quant`] — uniform weight/activation quantizers with
//!   straight-through estimators,
//! * [`layers`] — `QuantLinear`, `BatchNorm1d`, `QuantReLU`,
//! * [`mlp`] — the network: blocks of linear+BN+quantised-ReLU,
//! * [`loss`]/[`optim`]/[`trainer`] — class-weighted cross-entropy, SGD /
//!   Adam, and the training loop,
//! * [`metrics`] — the precision/recall/F1/FNR quartet of Table I,
//! * [`export`] — FINN-style streamlining to an integer-only
//!   MultiThreshold network ([`IntegerMlp`]), bit-exact by construction
//!   and consumed by the `canids-dataflow` hardware compiler.
//!
//! # Example
//!
//! ```
//! use canids_qnn::prelude::*;
//!
//! // Train a small 4-bit model on a toy separable problem, then
//! // streamline it to integer-only form.
//! let xs: Vec<Vec<f32>> = (0..128)
//!     .map(|i| vec![(i % 2) as f32, ((i + 1) % 2) as f32, 0.0, 1.0])
//!     .collect();
//! let ys: Vec<usize> = (0..128).map(|i| i % 2).collect();
//! let mut mlp = QuantMlp::new(MlpConfig {
//!     input_dim: 4,
//!     hidden: vec![8],
//!     ..MlpConfig::default()
//! })?;
//! Trainer::new(TrainConfig {
//!     epochs: 10,
//!     lr: 1e-2,
//!     ..TrainConfig::default()
//! })
//! .fit(&mut mlp, &xs, &ys)?;
//! let int_mlp = mlp.export()?;
//! assert_eq!(int_mlp.infer(&[1, 0, 0, 1]).class, 1);
//! # Ok::<(), canids_qnn::QnnError>(())
//! ```

pub mod error;
pub mod export;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod params;
pub mod quant;
pub mod tensor;
pub mod trainer;

pub use error::QnnError;
pub use export::{IntBlock, IntOutput, IntPrediction, IntegerMlp, BIAS_SHIFT};
pub use metrics::ConfusionMatrix;
pub use mlp::{MlpConfig, QuantMlp};
pub use quant::{ActQuantizer, BitWidth, WeightQuantizer};
pub use tensor::Matrix;
pub use trainer::{evaluate, TrainConfig, TrainReport, Trainer};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::error::QnnError;
    pub use crate::export::{IntPrediction, IntegerMlp};
    pub use crate::metrics::ConfusionMatrix;
    pub use crate::mlp::{MlpConfig, QuantMlp};
    pub use crate::optim::OptimizerKind;
    pub use crate::quant::BitWidth;
    pub use crate::tensor::Matrix;
    pub use crate::trainer::{evaluate, TrainConfig, TrainReport, Trainer};
}
