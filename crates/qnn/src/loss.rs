//! Softmax cross-entropy loss with optional class weighting.
//!
//! Class weighting matters here: CAN IDS captures are imbalanced (attack
//! frames are a minority in fuzzy captures), and the paper-level
//! false-negative rates require the minority class to carry proportionate
//! gradient.

use crate::error::QnnError;
use crate::tensor::{pinned_sum_f32, Matrix};

/// Computes the mean softmax cross-entropy and the logit gradient.
///
/// `class_weights`, when given, rescales each sample's contribution by
/// the weight of its target class (mean taken over the weighted batch).
///
/// Returns `(loss, dlogits)` where `dlogits` has the shape of `logits`.
///
/// # Errors
///
/// * [`QnnError::EmptyDataset`] for an empty batch,
/// * [`QnnError::DimensionMismatch`] when `targets.len() != logits.rows()`
///   or the weight vector length differs from the class count,
/// * [`QnnError::LabelOutOfRange`] for a target ≥ the class count.
///
/// # Example
///
/// ```
/// use canids_qnn::loss::softmax_cross_entropy;
/// use canids_qnn::tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[2.0, -2.0], &[-2.0, 2.0]]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], None)?;
/// assert!(loss < 0.1, "confident correct predictions give low loss");
/// assert_eq!(grad.rows(), 2);
/// # Ok::<(), canids_qnn::QnnError>(())
/// ```
pub fn softmax_cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    class_weights: Option<&[f32]>,
) -> Result<(f32, Matrix), QnnError> {
    let (n, c) = (logits.rows(), logits.cols());
    if n == 0 {
        return Err(QnnError::EmptyDataset);
    }
    if targets.len() != n {
        return Err(QnnError::DimensionMismatch {
            context: "cross-entropy targets",
            expected: n,
            actual: targets.len(),
        });
    }
    if let Some(w) = class_weights {
        if w.len() != c {
            return Err(QnnError::DimensionMismatch {
                context: "class weights",
                expected: c,
                actual: w.len(),
            });
        }
    }

    let mut dlogits = Matrix::zeros(n, c);
    let mut loss = 0.0f64;
    let mut weight_sum = 0.0f64;

    for r in 0..n {
        let t = targets[r];
        if t >= c {
            return Err(QnnError::LabelOutOfRange {
                label: t,
                classes: c,
            });
        }
        let w = class_weights.map_or(1.0, |cw| cw[t]);
        let row = logits.row(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let denom = pinned_sum_f32(row.iter().map(|&v| (v - max).exp()));
        let log_denom = denom.ln();
        // lint:allow(float-reassociation): f64 accumulator advanced in pinned row order r = 0..n
        loss += f64::from(w) * f64::from(log_denom - (row[t] - max));
        // lint:allow(float-reassociation): f64 accumulator advanced in pinned row order r = 0..n
        weight_sum += f64::from(w);
        for j in 0..c {
            let p = (row[j] - max).exp() / denom;
            dlogits[(r, j)] = w * (p - if j == t { 1.0 } else { 0.0 });
        }
    }

    // Normalise by the total weight so the step size is balance-invariant.
    let norm = (weight_sum.max(1e-12)) as f32;
    for g in dlogits.as_mut_slice() {
        *g /= norm;
    }
    Ok(((loss / weight_sum.max(1e-12)) as f32, dlogits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(4, 3);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 0], None).unwrap();
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.0, 2.0, -1.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 1], None).unwrap();
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -1.2], &[0.9, 0.4]]);
        let targets = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None).unwrap();
        let eps = 1e-3f32;
        for r in 0..2 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp[(r, j)] += eps;
                let mut lm = logits.clone();
                lm[(r, j)] -= eps;
                let (fp, _) = softmax_cross_entropy(&lp, &targets, None).unwrap();
                let (fm, _) = softmax_cross_entropy(&lm, &targets, None).unwrap();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad[(r, j)] - numeric).abs() < 1e-3,
                    "grad[{r}][{j}] = {} vs {numeric}",
                    grad[(r, j)]
                );
            }
        }
    }

    #[test]
    fn class_weights_rebalance() {
        // Up-weighting class 1 increases its gradient share.
        let logits = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]);
        let (_, g_plain) = softmax_cross_entropy(&logits, &[0, 1], None).unwrap();
        let (_, g_weighted) = softmax_cross_entropy(&logits, &[0, 1], Some(&[1.0, 3.0])).unwrap();
        let r1_plain = g_plain[(1, 1)].abs();
        let r1_weighted = g_weighted[(1, 1)].abs();
        assert!(r1_weighted > r1_plain, "{r1_weighted} !> {r1_plain}");
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Matrix::from_rows(&[&[1000.0, -1000.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0], None).unwrap();
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
        assert!(loss < 1e-4);
    }

    #[test]
    fn errors_on_bad_input() {
        let logits = Matrix::zeros(2, 2);
        assert_eq!(
            softmax_cross_entropy(&Matrix::zeros(0, 2), &[], None).unwrap_err(),
            QnnError::EmptyDataset
        );
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0], None).unwrap_err(),
            QnnError::DimensionMismatch { .. }
        ));
        assert_eq!(
            softmax_cross_entropy(&logits, &[0, 5], None).unwrap_err(),
            QnnError::LabelOutOfRange {
                label: 5,
                classes: 2
            }
        );
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 1], Some(&[1.0])).unwrap_err(),
            QnnError::DimensionMismatch { .. }
        ));
    }
}
