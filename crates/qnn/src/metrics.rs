//! Classification metrics: the precision / recall / F1 / FNR quartet the
//! paper's Table I reports.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A binary confusion matrix with the attack class as "positive".
///
/// # Example
///
/// ```
/// use canids_qnn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // detected attack
/// cm.record(false, false); // correctly passed normal frame
/// cm.record(false, true);  // missed attack (false negative)
/// assert_eq!(cm.recall(), 0.5);
/// assert_eq!(cm.fnr(), 0.5);
/// assert_eq!(cm.precision(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Attacks classified as attacks.
    pub tp: u64,
    /// Normal frames classified as attacks.
    pub fp: u64,
    /// Normal frames classified as normal.
    pub tn: u64,
    /// Attacks classified as normal (the safety-critical error).
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one decision: `predicted_attack` vs `truth_attack`.
    pub fn record(&mut self, predicted_attack: bool, truth_attack: bool) {
        match (predicted_attack, truth_attack) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Builds a matrix from parallel prediction/truth class indices
    /// (0 = normal, 1 = attack).
    pub fn from_predictions(preds: &[usize], truths: &[usize]) -> Self {
        let mut cm = ConfusionMatrix::new();
        for (&p, &t) in preds.iter().zip(truths) {
            cm.record(p != 0, t != 0);
        }
        cm
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision: TP / (TP + FP). 1.0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (true-positive rate): TP / (TP + FN). 1.0 with no attacks.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-negative rate: FN / (TP + FN) — missed attacks.
    pub fn fnr(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }

    /// False-positive rate: FP / (FP + TN).
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// The Table-I row: `(precision %, recall %, F1 %, FNR %)`.
    pub fn table_row(&self) -> (f64, f64, f64, f64) {
        (
            100.0 * self.precision(),
            100.0 * self.recall(),
            100.0 * self.f1(),
            100.0 * self.fnr(),
        )
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p, r, f1, fnr) = self.table_row();
        write!(
            f,
            "precision {p:6.2}%  recall {r:6.2}%  f1 {f1:6.2}%  fnr {fnr:5.2}%  (tp {} fp {} tn {} fn {})",
            self.tp, self.fp, self.tn, self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let cm = ConfusionMatrix {
            tp: 50,
            fp: 0,
            tn: 950,
            fn_: 0,
        };
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.fnr(), 0.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        let cm = ConfusionMatrix {
            tp: 90,
            fp: 10,
            tn: 880,
            fn_: 20,
        };
        assert!((cm.precision() - 0.9).abs() < 1e-12);
        assert!((cm.recall() - 90.0 / 110.0).abs() < 1e-12);
        assert!((cm.fnr() - 20.0 / 110.0).abs() < 1e-12);
        assert!((cm.fpr() - 10.0 / 890.0).abs() < 1e-12);
        assert!((cm.accuracy() - 970.0 / 1000.0).abs() < 1e-12);
        let f1 = 2.0 * cm.precision() * cm.recall() / (cm.precision() + cm.recall());
        assert!((cm.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_defined() {
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.fnr(), 0.0);
        assert_eq!(empty.accuracy(), 1.0);
        let all_negative = ConfusionMatrix {
            tn: 10,
            ..ConfusionMatrix::new()
        };
        assert_eq!(all_negative.precision(), 1.0);
        assert_eq!(all_negative.fpr(), 0.0);
    }

    #[test]
    fn from_predictions_counts() {
        let cm = ConfusionMatrix::from_predictions(&[1, 0, 1, 0], &[1, 0, 0, 1]);
        assert_eq!(cm.tp, 1);
        assert_eq!(cm.tn, 1);
        assert_eq!(cm.fp, 1);
        assert_eq!(cm.fn_, 1);
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.tp, 2);
        assert_eq!(a.fn_, 8);
    }

    #[test]
    fn table_row_is_percent() {
        let cm = ConfusionMatrix {
            tp: 9999,
            fp: 1,
            tn: 9999,
            fn_: 1,
        };
        let (p, r, f1, fnr) = cm.table_row();
        assert!(p > 99.9 && r > 99.9 && f1 > 99.9);
        assert!(fnr < 0.1);
    }

    #[test]
    fn display_contains_all_metrics() {
        let s = ConfusionMatrix::from_predictions(&[1], &[1]).to_string();
        assert!(s.contains("precision") && s.contains("fnr"));
    }
}
