//! The quantised multi-layer perceptron.
//!
//! The paper's model: binary frame features → a stack of
//! `QuantLinear → BatchNorm1d → QuantReLU` blocks → a final `QuantLinear`
//! producing class logits. Weight and activation bit-widths are uniform
//! across the network (the paper's design-space exploration selects 4-bit
//! for deployment).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::QnnError;
use crate::layers::{BatchNorm1d, QuantLinear, QuantReLU};
use crate::params::ParamTensor;
use crate::quant::BitWidth;
use crate::tensor::Matrix;

/// Topology and quantisation configuration of a [`QuantMlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimension (75 for the paper's frame encoding).
    pub input_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Weight quantisation width.
    pub weight_bits: BitWidth,
    /// Activation quantisation width.
    pub act_bits: BitWidth,
    /// Insert batch norm between linear layers and activations.
    pub batch_norm: bool,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input_dim: 75,
            hidden: vec![64, 32],
            classes: 2,
            weight_bits: BitWidth::W4,
            act_bits: BitWidth::W4,
            batch_norm: true,
            seed: 42,
        }
    }
}

impl MlpConfig {
    /// The paper's deployed 4-bit IDS configuration.
    pub fn paper_4bit() -> Self {
        MlpConfig::default()
    }

    /// The 8-bit GPU-reference configuration from the paper's energy
    /// comparison.
    pub fn gpu_8bit() -> Self {
        MlpConfig {
            weight_bits: BitWidth::W8,
            act_bits: BitWidth::W8,
            ..MlpConfig::default()
        }
    }

    /// Same topology at a different uniform bit-width (the DSE axis).
    pub fn with_bits(mut self, bits: BitWidth) -> Self {
        self.weight_bits = bits;
        self.act_bits = bits;
        self
    }
}

/// One hidden block: linear + optional batch norm + quantised ReLU.
#[derive(Debug, Clone)]
pub struct HiddenBlock {
    /// The weight-quantised linear layer.
    pub linear: QuantLinear,
    /// Optional batch normalisation (folded into thresholds at export).
    pub bn: Option<BatchNorm1d>,
    /// The activation quantizer.
    pub act: QuantReLU,
}

/// The quantisation-aware-trained MLP.
///
/// # Example
///
/// ```
/// use canids_qnn::mlp::{MlpConfig, QuantMlp};
/// use canids_qnn::tensor::Matrix;
///
/// let mut mlp = QuantMlp::new(MlpConfig::default())?;
/// let x = Matrix::zeros(4, 75);
/// let logits = mlp.forward(&x, false);
/// assert_eq!((logits.rows(), logits.cols()), (4, 2));
/// # Ok::<(), canids_qnn::QnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantMlp {
    config: MlpConfig,
    blocks: Vec<HiddenBlock>,
    output: QuantLinear,
}

impl QuantMlp {
    /// Builds the network described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::EmptyTopology`] for zero classes or a zero
    /// input dimension.
    pub fn new(config: MlpConfig) -> Result<Self, QnnError> {
        if config.input_dim == 0 || config.classes == 0 {
            return Err(QnnError::EmptyTopology);
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut blocks = Vec::with_capacity(config.hidden.len());
        let mut prev = config.input_dim;
        for &width in &config.hidden {
            if width == 0 {
                return Err(QnnError::EmptyTopology);
            }
            blocks.push(HiddenBlock {
                linear: QuantLinear::new(prev, width, config.weight_bits, &mut rng),
                bn: config.batch_norm.then(|| BatchNorm1d::new(width)),
                act: QuantReLU::new(config.act_bits),
            });
            prev = width;
        }
        let output = QuantLinear::new(prev, config.classes, config.weight_bits, &mut rng);
        Ok(QuantMlp {
            config,
            blocks,
            output,
        })
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// The hidden blocks (read access for export/compilation).
    pub fn blocks(&self) -> &[HiddenBlock] {
        &self.blocks
    }

    /// The output layer (read access for export/compilation).
    pub fn output(&self) -> &QuantLinear {
        &self.output
    }

    /// Forward pass producing logits (`batch × classes`).
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = None;
        for block in &mut self.blocks {
            let input = h.as_ref().unwrap_or(x);
            let z = block.linear.forward(input, train);
            let z = match &mut block.bn {
                Some(bn) => bn.forward(&z, train),
                None => z,
            };
            h = Some(block.act.forward(&z, train));
        }
        let input = h.as_ref().unwrap_or(x);
        self.output.forward(input, train)
    }

    /// Eval-mode logits on the **pinned-order** kernel — the
    /// re-validation reference for the fast inference path.
    ///
    /// [`forward`](Self::forward) with `train == false` runs every
    /// linear layer on the reassociated `linear_forward_fast` kernel;
    /// this walks the identical block structure (same BN running-stat
    /// and activation-quantiser eval transforms) with the pinned-order
    /// `linear_forward` instead. Logits may differ in the last float
    /// bits; classifications may move only on mathematically tied
    /// logits (where float order is rounding-defined under either
    /// kernel) — pinned by proptest over random models and by a
    /// capture-replay test.
    pub fn forward_reference(&mut self, x: &Matrix) -> Matrix {
        let mut h = None;
        for block in &mut self.blocks {
            let input = h.as_ref().unwrap_or(x);
            let z = block.linear.forward_reference(input);
            let z = match &mut block.bn {
                Some(bn) => bn.forward(&z, false),
                None => z,
            };
            h = Some(block.act.forward(&z, false));
        }
        let input = h.as_ref().unwrap_or(x);
        self.output.forward_reference(input)
    }

    /// Backward pass from the logit gradient (after a training-mode
    /// forward). Accumulates parameter gradients in every layer.
    pub fn backward(&mut self, dlogits: &Matrix) {
        let mut grad = self.output.backward(dlogits);
        for block in self.blocks.iter_mut().rev() {
            grad = block.act.backward(&grad);
            if let Some(bn) = &mut block.bn {
                grad = bn.backward(&grad);
            }
            grad = block.linear.backward(&grad);
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for p in self.param_tensors_mut() {
            p.zero_grad();
        }
    }

    /// Mutable views of every trainable tensor, in a stable order
    /// (the optimiser keys its state on this order).
    pub fn param_tensors_mut(&mut self) -> Vec<&mut ParamTensor> {
        let mut out = Vec::new();
        for block in &mut self.blocks {
            out.extend(block.linear.params_mut());
            if let Some(bn) = &mut block.bn {
                out.extend(bn.params_mut());
            }
        }
        out.extend(self.output.params_mut());
        out
    }

    /// Eval-mode class predictions for a batch.
    pub fn predict_batch(&mut self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x, false);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Eval-mode class prediction for a single frame's features — the
    /// float-path counterpart of frame-at-a-time (streaming) serving.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the configured input dimension.
    pub fn predict_one(&mut self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.config.input_dim, "input dimension mismatch");
        let mut m = Matrix::zeros(1, x.len());
        m.row_mut(0).copy_from_slice(x);
        self.predict_batch(&m)[0]
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        let mut n = self.output.param_count();
        for b in &self.blocks {
            n += b.linear.param_count();
            if let Some(bn) = &b.bn {
                n += bn.param_count();
            }
        }
        n
    }

    /// Multiply-accumulate operations per inference.
    pub fn macs(&self) -> usize {
        self.blocks.iter().map(|b| b.linear.macs()).sum::<usize>() + self.output.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_topology() {
        assert!(QuantMlp::new(MlpConfig {
            input_dim: 0,
            ..MlpConfig::default()
        })
        .is_err());
        assert!(QuantMlp::new(MlpConfig {
            classes: 0,
            ..MlpConfig::default()
        })
        .is_err());
        assert!(QuantMlp::new(MlpConfig {
            hidden: vec![16, 0],
            ..MlpConfig::default()
        })
        .is_err());
        assert!(QuantMlp::new(MlpConfig::default()).is_ok());
    }

    #[test]
    fn forward_shapes() {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 10,
            hidden: vec![8, 6],
            classes: 3,
            ..MlpConfig::default()
        })
        .unwrap();
        let x = Matrix::zeros(5, 10);
        let y = mlp.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn no_hidden_layers_is_logistic_regression() {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![],
            classes: 2,
            ..MlpConfig::default()
        })
        .unwrap();
        let y = mlp.forward(&Matrix::zeros(1, 4), false);
        assert_eq!(y.cols(), 2);
    }

    #[test]
    fn param_count_matches_topology() {
        let mlp = QuantMlp::new(MlpConfig {
            input_dim: 75,
            hidden: vec![64, 32],
            classes: 2,
            batch_norm: true,
            ..MlpConfig::default()
        })
        .unwrap();
        let expect = (75 * 64 + 64) + 2 * 64 + (64 * 32 + 32) + 2 * 32 + (32 * 2 + 2);
        assert_eq!(mlp.param_count(), expect);
        assert_eq!(mlp.macs(), 75 * 64 + 64 * 32 + 32 * 2);
    }

    #[test]
    fn training_step_reduces_simple_loss() {
        // One gradient step on a separable toy problem must reduce the loss.
        use crate::loss::softmax_cross_entropy;
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            classes: 2,
            batch_norm: false,
            weight_bits: BitWidth::W8,
            act_bits: BitWidth::W8,
            seed: 3,
        })
        .unwrap();
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[0.0, 0.9], &[0.9, 0.0]]);
        let y = vec![0usize, 1, 0, 1];
        let logits = mlp.forward(&x, true);
        let (loss0, dlogits) = softmax_cross_entropy(&logits, &y, None).unwrap();
        mlp.zero_grad();
        mlp.backward(&dlogits);
        // Plain SGD step.
        for p in mlp.param_tensors_mut() {
            for (v, g) in p.data.iter_mut().zip(&p.grad) {
                *v -= 0.5 * g;
            }
        }
        let logits = mlp.forward(&x, true);
        let (loss1, _) = softmax_cross_entropy(&logits, &y, None).unwrap();
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }

    #[test]
    fn predict_batch_returns_argmax() {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 3,
            hidden: vec![4],
            classes: 2,
            ..MlpConfig::default()
        })
        .unwrap();
        let x = Matrix::zeros(7, 3);
        let preds = mlp.predict_batch(&x);
        assert_eq!(preds.len(), 7);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn predict_one_matches_predict_batch() {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![6],
            classes: 3,
            seed: 9,
            ..MlpConfig::default()
        })
        .unwrap();
        let rows: [&[f32]; 3] = [&[0.0, 1.0, 0.0, 1.0], &[1.0; 4], &[0.25, 0.5, 0.75, 1.0]];
        let batch = Matrix::from_rows(&rows);
        let batched = mlp.predict_batch(&batch);
        for (row, &want) in rows.iter().zip(&batched) {
            assert_eq!(mlp.predict_one(row), want);
        }
    }

    #[test]
    fn stable_param_order() {
        let mut mlp = QuantMlp::new(MlpConfig::default()).unwrap();
        let lens_a: Vec<usize> = mlp.param_tensors_mut().iter().map(|p| p.len()).collect();
        let lens_b: Vec<usize> = mlp.param_tensors_mut().iter().map(|p| p.len()).collect();
        assert_eq!(lens_a, lens_b);
        // linear w, linear b, bn gamma, bn beta, ... output w, output b.
        assert_eq!(lens_a[0], 75 * 64);
        assert_eq!(lens_a[1], 64);
        assert_eq!(lens_a[2], 64);
        assert_eq!(*lens_a.last().unwrap(), 2);
    }

    #[test]
    fn same_seed_same_model() {
        let a = QuantMlp::new(MlpConfig::default()).unwrap();
        let b = QuantMlp::new(MlpConfig::default()).unwrap();
        assert_eq!(
            a.blocks()[0].linear.weight().data,
            b.blocks()[0].linear.weight().data
        );
    }
}
