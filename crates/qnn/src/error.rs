//! Error types for the QAT library.

use std::error::Error;
use std::fmt;

/// Errors raised by model construction, training and export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QnnError {
    /// Bit-width outside `1..=16`.
    InvalidBitWidth(u8),
    /// Mismatched tensor/layer dimensions.
    DimensionMismatch {
        /// What was being wired together.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A training set with no samples (or labels out of range).
    EmptyDataset,
    /// A label index ≥ the number of classes.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Model has no hidden layers where one was required.
    EmptyTopology,
}

impl fmt::Display for QnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QnnError::InvalidBitWidth(b) => write!(f, "bit-width {b} outside 1..=16"),
            QnnError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: expected dimension {expected}, got {actual}"),
            QnnError::EmptyDataset => write!(f, "training set is empty"),
            QnnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            QnnError::EmptyTopology => write!(f, "model must have at least one layer"),
        }
    }
}

impl Error for QnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_specifics() {
        let e = QnnError::DimensionMismatch {
            context: "layer 1 input",
            expected: 75,
            actual: 10,
        };
        let s = e.to_string();
        assert!(s.contains("75") && s.contains("10") && s.contains("layer 1"));
        assert!(QnnError::InvalidBitWidth(33).to_string().contains("33"));
    }
}
