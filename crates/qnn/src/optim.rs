//! Optimisers: SGD with momentum and Adam.
//!
//! State is keyed on the position of each tensor in the parameter list,
//! which [`crate::mlp::QuantMlp::param_tensors_mut`] guarantees is stable
//! across steps.

use crate::params::ParamTensor;

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
///
/// # Example
///
/// ```
/// use canids_qnn::optim::Sgd;
/// use canids_qnn::params::ParamTensor;
///
/// let mut p = ParamTensor::from_values(vec![1.0]);
/// p.grad[0] = 0.5;
/// let mut opt = Sgd::new(0.1).with_momentum(0.0);
/// opt.step(&mut [&mut p]);
/// assert!((p.data[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate (momentum 0.9 by default).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.9,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets decoupled weight decay (builder style).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to the parameter list.
    pub fn step(&mut self, params: &mut [&mut ParamTensor]) {
        if self.velocity.len() < params.len() {
            for p in params.iter().skip(self.velocity.len()) {
                self.velocity.push(vec![0.0; p.len()]);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            debug_assert_eq!(v.len(), p.len(), "parameter order must be stable");
            for (j, vj) in v.iter_mut().enumerate() {
                let g = p.grad[j] + self.weight_decay * p.data[j];
                *vj = self.momentum * *vj + g;
                p.data[j] -= self.lr * *vj;
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u32,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Sets decoupled weight decay (builder style).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to the parameter list.
    pub fn step(&mut self, params: &mut [&mut ParamTensor]) {
        while self.m.len() < params.len() {
            let p = &params[self.m.len()];
            self.m.push(vec![0.0; p.len()]);
            self.v.push(vec![0.0; p.len()]);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            debug_assert_eq!(m.len(), p.len(), "parameter order must be stable");
            for j in 0..p.data.len() {
                let g = p.grad[j] + self.weight_decay * p.data[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                p.data[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// The optimiser selection exposed in the trainer configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum OptimizerKind {
    /// SGD with the given momentum.
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
    },
    /// Adam with default betas.
    #[default]
    Adam,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step<F: FnMut(&mut [&mut ParamTensor])>(mut step: F) -> f32 {
        // Minimise f(x) = (x-3)^2 from x=0; gradient 2(x-3).
        let mut p = ParamTensor::from_values(vec![0.0]);
        for _ in 0..200 {
            p.grad[0] = 2.0 * (p.data[0] - 3.0);
            step(&mut [&mut p]);
        }
        p.data[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let x = quadratic_step(|ps| opt.step(ps));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = quadratic_step(|ps| opt.step(ps));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn plain_sgd_is_exact_update() {
        let mut p = ParamTensor::from_values(vec![2.0]);
        p.grad[0] = 1.0;
        let mut opt = Sgd::new(0.5).with_momentum(0.0);
        opt.step(&mut [&mut p]);
        assert!((p.data[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = ParamTensor::from_values(vec![1.0]);
        p.grad[0] = 0.0;
        let mut opt = Sgd::new(0.1).with_momentum(0.0).with_weight_decay(0.1);
        opt.step(&mut [&mut p]);
        assert!(p.data[0] < 1.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = ParamTensor::from_values(vec![0.0]);
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        p.grad[0] = 1.0;
        opt.step(&mut [&mut p]);
        let first = -p.data[0];
        p.grad[0] = 1.0;
        opt.step(&mut [&mut p]);
        let second = -p.data[0] - first;
        assert!(second > first, "second step larger under momentum");
    }

    #[test]
    fn state_grows_with_late_params() {
        let mut a = ParamTensor::from_values(vec![1.0]);
        let mut opt = Adam::new(0.01);
        a.grad[0] = 1.0;
        opt.step(&mut [&mut a]);
        let mut b = ParamTensor::from_values(vec![1.0, 2.0]);
        a.grad[0] = 1.0;
        b.grad = vec![1.0, 1.0];
        opt.step(&mut [&mut a, &mut b]);
        assert!(b.data[0] < 1.0);
    }

    #[test]
    fn lr_setter() {
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.2);
        assert_eq!(adam.lr(), 0.2);
    }
}
