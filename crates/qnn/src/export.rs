//! Integer-only export: FINN-style streamlining into MultiThreshold form.
//!
//! A trained [`QuantMlp`] evaluates, per hidden block,
//!
//! ```text
//! out_level = clamp(round(α·acc + β), 0, L)        acc = Σ Mᵢ·nᵢ (integer)
//! ```
//!
//! where `α`, `β` fold the weight scale, input scale, bias and batch-norm
//! affine, and `L = 2^a − 1` activation levels. Because the map is
//! monotone in the integer accumulator, it is *exactly* representable as
//! per-neuron integer thresholds `T₁ ≤ … ≤ T_L`:
//!
//! ```text
//! out_level = #{ k : acc ≥ T_k }
//! ```
//!
//! This is FINN's *streamlining* transformation (absorb scales and batch
//! norm into `MultiThreshold`), after which inference is integer-only —
//! the form the hardware MVAUs execute. Thresholds are derived in `f64`
//! and then *verified and corrected at the boundary* against the same
//! `f64` reference, so [`IntegerMlp::infer`] is bit-exact with the
//! [`reference_forward_f64`] semantics by construction.

use serde::{Deserialize, Serialize};

use crate::error::QnnError;
use crate::mlp::QuantMlp;

/// Fixed-point shift applied to output-layer scores so the (real-valued)
/// bias participates in the integer argmax with 2⁻¹⁶ resolution.
pub const BIAS_SHIFT: u32 = 16;

/// One streamlined hidden layer: integer weights + MultiThreshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntBlock {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension (neurons).
    pub out_dim: usize,
    /// Integer weight codes, `out_dim × in_dim` row-major. Rows whose
    /// folded scale was negative are sign-flipped so thresholds are
    /// always ascending.
    pub weights: Vec<i32>,
    /// Thresholds, `out_dim × levels` row-major, ascending per neuron.
    pub thresholds: Vec<i64>,
    /// Number of thresholds per neuron (`2^act_bits − 1`).
    pub levels: u32,
}

impl IntBlock {
    /// Weight row of neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= out_dim`.
    pub fn weight_row(&self, j: usize) -> &[i32] {
        &self.weights[j * self.in_dim..(j + 1) * self.in_dim]
    }

    /// Threshold row of neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= out_dim`.
    pub fn threshold_row(&self, j: usize) -> &[i64] {
        let l = self.levels as usize;
        &self.thresholds[j * l..(j + 1) * l]
    }

    /// Bounds of the integer accumulator given inputs in `0..=in_levels`
    /// — the datapath width the hardware must provision.
    pub fn acc_bounds(&self, in_levels: u32) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for j in 0..self.out_dim {
            let mut jlo = 0i64;
            let mut jhi = 0i64;
            for &w in self.weight_row(j) {
                if w > 0 {
                    jhi += i64::from(w) * i64::from(in_levels);
                } else {
                    jlo += i64::from(w) * i64::from(in_levels);
                }
            }
            lo = lo.min(jlo);
            hi = hi.max(jhi);
        }
        (lo, hi)
    }
}

/// The streamlined output layer: integer weights plus fixed-point bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntOutput {
    /// Input dimension.
    pub in_dim: usize,
    /// Output classes.
    pub out_dim: usize,
    /// Integer weight codes, `out_dim × in_dim` row-major.
    pub weights: Vec<i32>,
    /// Bias in accumulator units, pre-scaled by `2^BIAS_SHIFT`.
    pub bias_q: Vec<i64>,
}

impl IntOutput {
    /// Weight row of class `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= out_dim`.
    pub fn weight_row(&self, j: usize) -> &[i32] {
        &self.weights[j * self.in_dim..(j + 1) * self.in_dim]
    }
}

/// An integer prediction: the winning class plus raw per-class scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntPrediction {
    /// Argmax class (ties resolve to the lowest index).
    pub class: usize,
    /// Fixed-point class scores (`acc << BIAS_SHIFT` + bias).
    pub scores: Vec<i64>,
}

/// The fully streamlined integer-only network — what the FINN-style
/// compiler consumes and the hardware executes.
///
/// # Example
///
/// ```
/// use canids_qnn::prelude::*;
///
/// let mut mlp = QuantMlp::new(MlpConfig {
///     input_dim: 8,
///     hidden: vec![4],
///     ..MlpConfig::default()
/// })?;
/// let int_mlp = mlp.export()?;
/// let pred = int_mlp.infer(&[1, 0, 1, 0, 1, 1, 0, 0]);
/// assert!(pred.class < 2);
/// # Ok::<(), canids_qnn::QnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegerMlp {
    /// Streamlined hidden layers.
    pub blocks: Vec<IntBlock>,
    /// Streamlined output layer.
    pub output: IntOutput,
    /// Maximum input level (1 for the binary frame encoding).
    pub input_levels: u32,
    /// Weight bit-width the codes were quantised to.
    pub weight_bits: u8,
    /// Activation bit-width (levels = 2^bits − 1 thresholds).
    pub act_bits: u8,
}

/// Reusable buffers for [`IntegerMlp::infer_class`] — the
/// zero-allocation serving path. One scratch per evaluator/worker; the
/// buffers grow to the model's widest layer on first use and are reused
/// on every subsequent frame.
#[derive(Debug, Clone, Default)]
pub struct IntScratch {
    act: Vec<u32>,
    next: Vec<u32>,
    scores: Vec<i64>,
}

impl IntScratch {
    /// Empty scratch; buffers size themselves on first inference.
    pub fn new() -> Self {
        IntScratch::default()
    }

    /// Raw class scores from the most recent [`IntegerMlp::infer_class`].
    pub fn scores(&self) -> &[i64] {
        &self.scores
    }
}

impl IntegerMlp {
    /// Integer-only inference.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the first layer's input width.
    pub fn infer(&self, x: &[u32]) -> IntPrediction {
        let mut scratch = IntScratch::new();
        let class = self.infer_class(x, &mut scratch);
        IntPrediction {
            class,
            scores: std::mem::take(&mut scratch.scores),
        }
    }

    /// Integer-only inference through caller-owned buffers: identical
    /// arithmetic to [`infer`](Self::infer) (which delegates here), but
    /// allocation-free once `scratch` has warmed up — the per-frame hot
    /// path of the streaming evaluators and the software serving
    /// backend. Scores stay readable via [`IntScratch::scores`].
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the first layer's input width.
    pub fn infer_class(&self, x: &[u32], scratch: &mut IntScratch) -> usize {
        let first_dim = self
            .blocks
            .first()
            .map(|b| b.in_dim)
            .unwrap_or(self.output.in_dim);
        assert_eq!(x.len(), first_dim, "input dimension mismatch");
        scratch.act.clear();
        scratch.act.extend_from_slice(x);
        for block in &self.blocks {
            scratch.next.clear();
            scratch.next.resize(block.out_dim, 0);
            let act = &scratch.act;
            for (j, slot) in scratch.next.iter_mut().enumerate() {
                let row = block.weight_row(j);
                let mut acc = 0i64;
                for (w, &a) in row.iter().zip(act) {
                    acc += i64::from(*w) * i64::from(a);
                }
                let mut level = 0u32;
                for &t in block.threshold_row(j) {
                    if acc >= t {
                        level += 1;
                    } else {
                        break;
                    }
                }
                *slot = level;
            }
            std::mem::swap(&mut scratch.act, &mut scratch.next);
        }
        scratch.scores.clear();
        for j in 0..self.output.out_dim {
            let row = self.output.weight_row(j);
            let mut acc = 0i64;
            for (w, &a) in row.iter().zip(&scratch.act) {
                acc += i64::from(*w) * i64::from(a);
            }
            scratch
                .scores
                .push((acc << BIAS_SHIFT) + self.output.bias_q[j]);
        }
        scratch
            .scores
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Convenience wrapper rounding float features (e.g. the 0.0/1.0 bit
    /// encoding) to integer levels before inference.
    pub fn infer_bits(&self, bits: &[f32]) -> IntPrediction {
        let x: Vec<u32> = bits
            .iter()
            .map(|&b| (b.round().max(0.0) as u32).min(self.input_levels))
            .collect();
        self.infer(&x)
    }

    /// `(in_dim, out_dim)` of every layer, hidden then output.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        let mut dims: Vec<(usize, usize)> =
            self.blocks.iter().map(|b| (b.in_dim, b.out_dim)).collect();
        dims.push((self.output.in_dim, self.output.out_dim));
        dims
    }

    /// Total multiply-accumulate operations per inference.
    pub fn macs(&self) -> usize {
        self.layer_dims().iter().map(|(i, o)| i * o).sum()
    }

    /// Total weight-memory footprint in bits.
    pub fn weight_bits_total(&self) -> usize {
        self.macs() * usize::from(self.weight_bits)
    }
}

/// The per-neuron folded affine response used by the export and by the
/// verification tests: `clamp(round(α·acc + β), 0, L)` computed in `f64`.
pub fn folded_response(alpha: f64, beta: f64, levels: u32, acc: i64) -> u32 {
    let v = (alpha * acc as f64 + beta).round();
    if v <= 0.0 {
        0
    } else if v >= f64::from(levels) {
        levels
    } else {
        v as u32
    }
}

/// Reference forward pass in `f64` over the folded per-layer affine forms
/// of `mlp` — the semantics [`IntegerMlp::infer`] reproduces exactly.
///
/// Exposed so integration tests can cross-check the streamlined model
/// against an independent implementation.
pub fn reference_forward_f64(mlp: &QuantMlp, x: &[u32]) -> usize {
    let folded = FoldedMlp::from_mlp(mlp);
    folded.infer(x)
}

/// The folded affine view of the network (f64 path, used for testing).
struct FoldedMlp {
    blocks: Vec<FoldedBlock>,
    out_weights: Vec<i32>,
    out_dims: (usize, usize),
    out_bias_units: Vec<f64>,
}

struct FoldedBlock {
    weights: Vec<i32>,
    in_dim: usize,
    out_dim: usize,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    levels: u32,
}

impl FoldedMlp {
    fn from_mlp(mlp: &QuantMlp) -> Self {
        let mut blocks = Vec::new();
        let mut in_scale = 1.0f64; // binary input features
        for block in mlp.blocks() {
            let (codes, s_w) = block.linear.int_weights();
            let in_dim = block.linear.in_dim();
            let out_dim = block.linear.out_dim();
            let (g, c) = match &block.bn {
                Some(bn) => bn.eval_affine(),
                None => (vec![1.0; out_dim], vec![0.0; out_dim]),
            };
            let s_y = f64::from(block.act.quantizer().scale());
            let levels = block.act.quantizer().bits().unsigned_max();
            let mut alpha = Vec::with_capacity(out_dim);
            let mut beta = Vec::with_capacity(out_dim);
            let mut weights = codes;
            for j in 0..out_dim {
                let b_j = f64::from(block.linear.bias().data[j]);
                let mut a = g[j] * f64::from(s_w) * in_scale / s_y;
                let bt = (g[j] * b_j + c[j]) / s_y;
                if a < 0.0 {
                    // Flip the weight row so the response is ascending.
                    for w in &mut weights[j * in_dim..(j + 1) * in_dim] {
                        *w = -*w;
                    }
                    a = -a;
                }
                alpha.push(a);
                beta.push(bt);
            }
            blocks.push(FoldedBlock {
                weights,
                in_dim,
                out_dim,
                alpha,
                beta,
                levels,
            });
            in_scale = s_y;
        }
        let (out_codes, out_sw) = mlp.output().int_weights();
        let out_scale = f64::from(out_sw) * in_scale;
        let out_bias_units: Vec<f64> = mlp
            .output()
            .bias()
            .data
            .iter()
            .map(|&b| f64::from(b) / out_scale)
            .collect();
        FoldedMlp {
            blocks,
            out_weights: out_codes,
            out_dims: (mlp.output().in_dim(), mlp.output().out_dim()),
            out_bias_units,
        }
    }

    fn infer(&self, x: &[u32]) -> usize {
        let mut act: Vec<u32> = x.to_vec();
        for b in &self.blocks {
            let mut next = vec![0u32; b.out_dim];
            for (j, slot) in next.iter_mut().enumerate() {
                let row = &b.weights[j * b.in_dim..(j + 1) * b.in_dim];
                let mut acc = 0i64;
                for (w, &a) in row.iter().zip(&act) {
                    acc += i64::from(*w) * i64::from(a);
                }
                *slot = folded_response(b.alpha[j], b.beta[j], b.levels, acc);
            }
            act = next;
        }
        let (in_dim, out_dim) = self.out_dims;
        let mut best_class = 0usize;
        let mut best_score = i64::MIN;
        for j in 0..out_dim {
            let row = &self.out_weights[j * in_dim..(j + 1) * in_dim];
            let mut acc = 0i64;
            for (w, &a) in row.iter().zip(&act) {
                acc += i64::from(*w) * i64::from(a);
            }
            let score = (acc << BIAS_SHIFT)
                + (self.out_bias_units[j] * f64::from(1u32 << BIAS_SHIFT)).round() as i64;
            if score > best_score {
                best_score = score;
                best_class = j;
            }
        }
        best_class
    }
}

impl QuantMlp {
    /// Streamlines the trained network into integer-only
    /// [`IntegerMlp`] form (binary input features assumed, as produced by
    /// the 75-bit frame encoding).
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::EmptyTopology`] for a network with no layers.
    pub fn export(&self) -> Result<IntegerMlp, QnnError> {
        if self.config().classes == 0 {
            return Err(QnnError::EmptyTopology);
        }
        let folded = FoldedMlp::from_mlp(self);
        let mut blocks = Vec::with_capacity(folded.blocks.len());
        for fb in &folded.blocks {
            let levels = fb.levels;
            let mut thresholds = Vec::with_capacity(fb.out_dim * levels as usize);
            // Accumulator bounds for this layer (inputs are non-negative).
            for j in 0..fb.out_dim {
                let alpha = fb.alpha[j];
                let beta = fb.beta[j];
                for k in 1..=levels {
                    let t = if alpha == 0.0 {
                        // Constant response: threshold collapses to ±∞.
                        if folded_response(alpha, beta, levels, 0) >= k {
                            i64::MIN
                        } else {
                            i64::MAX
                        }
                    } else {
                        let mut t = ((f64::from(k) - 0.5 - beta) / alpha).ceil() as i64;
                        // Boundary fix-up against the exact f64 response so
                        // the threshold is the *minimal* accumulator value
                        // reaching level k.
                        let mut guard = 0;
                        while folded_response(alpha, beta, levels, t) < k {
                            t += 1;
                            guard += 1;
                            debug_assert!(guard < 1_000, "threshold fix-up diverged");
                        }
                        while t > i64::MIN + 1 && folded_response(alpha, beta, levels, t - 1) >= k {
                            t -= 1;
                            guard += 1;
                            debug_assert!(guard < 1_000, "threshold fix-up diverged");
                        }
                        t
                    };
                    thresholds.push(t);
                }
            }
            blocks.push(IntBlock {
                in_dim: fb.in_dim,
                out_dim: fb.out_dim,
                weights: fb.weights.clone(),
                thresholds,
                levels,
            });
        }
        let bias_q: Vec<i64> = folded
            .out_bias_units
            .iter()
            .map(|&b| (b * f64::from(1u32 << BIAS_SHIFT)).round() as i64)
            .collect();
        Ok(IntegerMlp {
            blocks,
            output: IntOutput {
                in_dim: folded.out_dims.0,
                out_dim: folded.out_dims.1,
                weights: folded.out_weights.clone(),
                bias_q,
            },
            input_levels: 1,
            weight_bits: self.config().weight_bits.bits(),
            act_bits: self.config().act_bits.bits(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use crate::quant::BitWidth;
    use crate::tensor::Matrix;
    use crate::trainer::{TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_mlp(bits: u8, hidden: Vec<usize>, seed: u64) -> QuantMlp {
        let dim = 12;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..400 {
            let y = usize::from(rng.gen_bool(0.5));
            let x: Vec<f32> = (0..dim)
                .map(|i| {
                    let base = if y == 1 {
                        (i % 2) as f32
                    } else {
                        ((i + 1) % 2) as f32
                    };
                    if rng.gen_bool(0.05) {
                        1.0 - base
                    } else {
                        base
                    }
                })
                .collect();
            xs.push(x);
            ys.push(y);
        }
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: dim,
            hidden,
            weight_bits: BitWidth::new(bits).unwrap(),
            act_bits: BitWidth::new(bits).unwrap(),
            seed,
            ..MlpConfig::default()
        })
        .unwrap();
        Trainer::new(TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        mlp
    }

    fn random_bit_inputs(dim: usize, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| u32::from(rng.gen_bool(0.5))).collect())
            .collect()
    }

    #[test]
    fn scratch_inference_is_bit_identical_to_infer() {
        let mlp = trained_mlp(4, vec![10, 6], 21);
        let int_mlp = mlp.export().unwrap();
        // One scratch reused across every frame — the serving pattern.
        let mut scratch = IntScratch::new();
        for x in random_bit_inputs(12, 200, 77) {
            let fresh = int_mlp.infer(&x);
            let class = int_mlp.infer_class(&x, &mut scratch);
            assert_eq!(class, fresh.class);
            assert_eq!(scratch.scores(), fresh.scores.as_slice());
        }
    }

    #[test]
    fn thresholds_are_ascending_per_neuron() {
        let mlp = trained_mlp(4, vec![10, 6], 1);
        let int_mlp = mlp.export().unwrap();
        for b in &int_mlp.blocks {
            for j in 0..b.out_dim {
                let row = b.threshold_row(j);
                for w in row.windows(2) {
                    assert!(w[0] <= w[1], "thresholds must ascend: {row:?}");
                }
            }
        }
    }

    #[test]
    fn integer_model_matches_f64_reference_exactly() {
        for bits in [2u8, 3, 4, 8] {
            let mlp = trained_mlp(bits, vec![10, 6], u64::from(bits));
            let int_mlp = mlp.export().unwrap();
            for x in random_bit_inputs(12, 300, 99) {
                let a = int_mlp.infer(&x).class;
                let b = reference_forward_f64(&mlp, &x);
                assert_eq!(a, b, "bits={bits} x={x:?}");
            }
        }
    }

    #[test]
    fn integer_model_agrees_with_float_predictions() {
        // The f32 fake-quant path and the streamlined integer path should
        // agree on almost every input (boundary rounding may differ on a
        // vanishing fraction).
        let mut mlp = trained_mlp(4, vec![10, 6], 3);
        let int_mlp = mlp.export().unwrap();
        let inputs = random_bit_inputs(12, 500, 7);
        let mut agree = 0usize;
        for x in &inputs {
            let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
            let mut m = Matrix::zeros(1, 12);
            m.row_mut(0).copy_from_slice(&xf);
            let float_pred = mlp.predict_batch(&m)[0];
            let int_pred = int_mlp.infer(x).class;
            if float_pred == int_pred {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / inputs.len() as f64 > 0.98,
            "agreement = {agree}/500"
        );
    }

    #[test]
    fn trained_accuracy_survives_export() {
        let dim = 12;
        let mlp = trained_mlp(4, vec![10, 6], 4);
        let int_mlp = mlp.export().unwrap();
        // Rebuild the training distribution and check the integer model
        // classifies it well.
        let mut rng = StdRng::seed_from_u64(4);
        let mut correct = 0usize;
        let total = 400usize;
        for _ in 0..total {
            let y = usize::from(rng.gen_bool(0.5));
            let x: Vec<u32> = (0..dim)
                .map(|i| {
                    let base = if y == 1 {
                        (i % 2) as u32
                    } else {
                        ((i + 1) % 2) as u32
                    };
                    if rng.gen_bool(0.05) {
                        1 - base
                    } else {
                        base
                    }
                })
                .collect();
            if int_mlp.infer(&x).class == y {
                correct += 1;
            }
        }
        // 4 quick epochs at 4 bits on a noisy toy problem: well above
        // chance is what matters here (exact accuracy is data-dependent).
        assert!(correct as f64 / total as f64 > 0.8, "acc {correct}/{total}");
    }

    #[test]
    fn infer_bits_rounds_floats() {
        let mlp = trained_mlp(4, vec![8], 5);
        let int_mlp = mlp.export().unwrap();
        let x = vec![0u32, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0];
        let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        assert_eq!(int_mlp.infer(&x), int_mlp.infer_bits(&xf));
    }

    #[test]
    fn layer_dims_and_macs() {
        let mlp = trained_mlp(4, vec![10, 6], 6);
        let int_mlp = mlp.export().unwrap();
        assert_eq!(int_mlp.layer_dims(), vec![(12, 10), (10, 6), (6, 2)]);
        assert_eq!(int_mlp.macs(), 12 * 10 + 10 * 6 + 6 * 2);
        assert_eq!(int_mlp.weight_bits_total(), int_mlp.macs() * 4);
    }

    #[test]
    fn acc_bounds_contain_all_observed_accumulators() {
        let mlp = trained_mlp(4, vec![10], 7);
        let int_mlp = mlp.export().unwrap();
        let block = &int_mlp.blocks[0];
        let (lo, hi) = block.acc_bounds(1);
        for x in random_bit_inputs(12, 200, 8) {
            for j in 0..block.out_dim {
                let acc: i64 = block
                    .weight_row(j)
                    .iter()
                    .zip(&x)
                    .map(|(&w, &a)| i64::from(w) * i64::from(a))
                    .sum();
                assert!(acc >= lo && acc <= hi, "acc {acc} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn weight_codes_within_bitwidth() {
        for bits in [2u8, 4, 8] {
            let mlp = trained_mlp(bits, vec![8], 9);
            let int_mlp = mlp.export().unwrap();
            let max = (1i32 << (bits - 1)) - 1;
            for b in &int_mlp.blocks {
                assert!(b.weights.iter().all(|&w| w.abs() <= max.max(1)));
            }
            assert!(int_mlp
                .output
                .weights
                .iter()
                .all(|&w| w.abs() <= max.max(1)));
        }
    }

    #[test]
    fn deterministic_export() {
        let mlp = trained_mlp(4, vec![8], 10);
        assert_eq!(mlp.export().unwrap(), mlp.export().unwrap());
    }
}
