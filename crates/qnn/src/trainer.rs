//! The quantisation-aware training loop.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::QnnError;
use crate::loss::softmax_cross_entropy;
use crate::metrics::ConfusionMatrix;
use crate::mlp::QuantMlp;
use crate::optim::{Adam, OptimizerKind, Sgd};
use crate::tensor::Matrix;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Per-epoch learning-rate multiplier.
    pub lr_decay: f32,
    /// Optimiser selection.
    pub optimizer: OptimizerKind,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Rebalance the loss by inverse class frequency (CAN captures are
    /// heavily imbalanced).
    pub balance_classes: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            lr: 2e-3,
            lr_decay: 0.85,
            optimizer: OptimizerKind::Adam,
            weight_decay: 1e-5,
            seed: 0x7EA1,
            balance_classes: true,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub train_accuracy: f64,
    /// Number of epochs executed.
    pub epochs_run: usize,
}

enum AnyOpt {
    Sgd(Sgd),
    Adam(Adam),
}

impl AnyOpt {
    fn step(&mut self, params: &mut [&mut crate::params::ParamTensor]) {
        match self {
            AnyOpt::Sgd(o) => o.step(params),
            AnyOpt::Adam(o) => o.step(params),
        }
    }
    fn set_lr(&mut self, lr: f32) {
        match self {
            AnyOpt::Sgd(o) => o.set_lr(lr),
            AnyOpt::Adam(o) => o.set_lr(lr),
        }
    }
}

/// Runs quantisation-aware training of a [`QuantMlp`].
///
/// # Example
///
/// ```
/// use canids_qnn::prelude::*;
///
/// // Learn y = x0 (a trivially separable problem). Batch norm is off:
/// // with a handful of minibatches per epoch its running statistics
/// // would not have converged for eval mode — real captures provide
/// // thousands of batches. The small batch size keeps the optimiser
/// // step count realistic for a 64-sample toy set.
/// let xs: Vec<Vec<f32>> = (0..64).map(|i| vec![(i % 2) as f32, 0.5]).collect();
/// let ys: Vec<usize> = (0..64).map(|i| i % 2).collect();
/// let mut mlp = QuantMlp::new(MlpConfig {
///     input_dim: 2,
///     hidden: vec![8],
///     batch_norm: false,
///     ..MlpConfig::default()
/// })?;
/// let report = Trainer::new(TrainConfig {
///     epochs: 20,
///     lr: 1e-2,
///     batch_size: 8,
///     ..TrainConfig::default()
/// })
/// .fit(&mut mlp, &xs, &ys)?;
/// assert!(report.train_accuracy > 0.95);
/// # Ok::<(), canids_qnn::QnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` on `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// * [`QnnError::EmptyDataset`] for an empty set,
    /// * [`QnnError::DimensionMismatch`] when feature length ≠ model input
    ///   or `xs.len() != ys.len()`,
    /// * [`QnnError::LabelOutOfRange`] for labels ≥ the class count.
    pub fn fit(
        &self,
        mlp: &mut QuantMlp,
        xs: &[Vec<f32>],
        ys: &[usize],
    ) -> Result<TrainReport, QnnError> {
        if xs.is_empty() {
            return Err(QnnError::EmptyDataset);
        }
        if xs.len() != ys.len() {
            return Err(QnnError::DimensionMismatch {
                context: "training labels",
                expected: xs.len(),
                actual: ys.len(),
            });
        }
        let input_dim = mlp.config().input_dim;
        let classes = mlp.config().classes;
        for x in xs {
            if x.len() != input_dim {
                return Err(QnnError::DimensionMismatch {
                    context: "training feature vector",
                    expected: input_dim,
                    actual: x.len(),
                });
            }
        }
        for &y in ys {
            if y >= classes {
                return Err(QnnError::LabelOutOfRange { label: y, classes });
            }
        }

        let class_weights = if self.config.balance_classes {
            let mut counts = vec![0usize; classes];
            for &y in ys {
                counts[y] += 1;
            }
            let total = ys.len() as f32;
            Some(
                counts
                    .iter()
                    .map(|&c| {
                        if c == 0 {
                            1.0
                        } else {
                            total / (classes as f32 * c as f32)
                        }
                    })
                    .collect::<Vec<f32>>(),
            )
        } else {
            None
        };

        let mut opt = match self.config.optimizer {
            OptimizerKind::Sgd { momentum } => AnyOpt::Sgd(
                Sgd::new(self.config.lr)
                    .with_momentum(momentum)
                    .with_weight_decay(self.config.weight_decay),
            ),
            OptimizerKind::Adam => {
                AnyOpt::Adam(Adam::new(self.config.lr).with_weight_decay(self.config.weight_decay))
            }
        };

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let batch = self.config.batch_size.max(1);
        let mut lr = self.config.lr;

        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let mut x = Matrix::zeros(chunk.len(), input_dim);
                let mut y = Vec::with_capacity(chunk.len());
                for (r, &idx) in chunk.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&xs[idx]);
                    y.push(ys[idx]);
                }
                let logits = mlp.forward(&x, true);
                let (loss, dlogits) = softmax_cross_entropy(&logits, &y, class_weights.as_deref())?;
                mlp.zero_grad();
                mlp.backward(&dlogits);
                opt.step(&mut mlp.param_tensors_mut());
                // lint:allow(float-reassociation): epoch-mean accumulator advanced in pinned batch order
                loss_sum += f64::from(loss);
                batches += 1;
            }
            epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
            lr *= self.config.lr_decay;
            opt.set_lr(lr);
        }

        let cm = evaluate(mlp, xs, ys);
        Ok(TrainReport {
            epoch_losses,
            train_accuracy: cm.accuracy(),
            epochs_run: self.config.epochs,
        })
    }
}

/// Evaluates a model on a labelled set, returning the binary confusion
/// matrix (class 0 = normal, anything else = attack).
pub fn evaluate(mlp: &mut QuantMlp, xs: &[Vec<f32>], ys: &[usize]) -> ConfusionMatrix {
    let input_dim = mlp.config().input_dim;
    let mut cm = ConfusionMatrix::new();
    for chunk in xs.chunks(256).zip(ys.chunks(256)) {
        let (cx, cy) = chunk;
        let mut x = Matrix::zeros(cx.len(), input_dim);
        for (r, xi) in cx.iter().enumerate() {
            x.row_mut(r).copy_from_slice(xi);
        }
        let preds = mlp.predict_batch(&x);
        for (&p, &t) in preds.iter().zip(cy) {
            cm.record(p != 0, t != 0);
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use crate::quant::BitWidth;
    use rand::Rng;

    /// Two-cluster toy problem: class = MSB of the feature block.
    fn toy_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = usize::from(rng.gen_bool(0.5));
            let mut x = vec![0.0f32; dim];
            for (i, v) in x.iter_mut().enumerate() {
                let base = if y == 1 {
                    (i % 2) as f32
                } else {
                    ((i + 1) % 2) as f32
                };
                // 10% feature noise.
                *v = if rng.gen_bool(0.1) { 1.0 - base } else { base };
            }
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_problem_at_4_bits() {
        let (xs, ys) = toy_data(800, 16, 5);
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 16,
            hidden: vec![16],
            ..MlpConfig::default()
        })
        .unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        assert!(
            report.train_accuracy > 0.97,
            "accuracy = {}",
            report.train_accuracy
        );
        assert_eq!(report.epoch_losses.len(), 8);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (xs, ys) = toy_data(400, 8, 6);
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 8,
            hidden: vec![12],
            ..MlpConfig::default()
        })
        .unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn sgd_also_learns() {
        let (xs, ys) = toy_data(400, 8, 7);
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 8,
            hidden: vec![12],
            weight_bits: BitWidth::W8,
            act_bits: BitWidth::W8,
            ..MlpConfig::default()
        })
        .unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 10,
            lr: 0.05,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        assert!(report.train_accuracy > 0.9, "{}", report.train_accuracy);
    }

    #[test]
    fn imbalanced_data_with_weighting_finds_minority() {
        // 95/5 imbalance; balanced loss should still detect the minority.
        let mut rng = StdRng::seed_from_u64(8);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..600 {
            let y = usize::from(rng.gen_bool(0.05));
            let x = if y == 1 {
                vec![1.0, 1.0, 0.0, 0.0]
            } else {
                vec![0.0, 0.0, 1.0, 1.0]
            };
            xs.push(x);
            ys.push(y);
        }
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![8],
            ..MlpConfig::default()
        })
        .unwrap();
        // 600 samples is ~10 minibatches per epoch; with the default
        // decaying schedule that is too few steps for an unlucky init,
        // so give the optimiser a realistic step budget. The property
        // under test is the class weighting, not convergence speed.
        Trainer::new(TrainConfig {
            epochs: 20,
            lr: 1e-2,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &xs, &ys)
        .unwrap();
        let cm = evaluate(&mut mlp, &xs, &ys);
        assert!(cm.recall() > 0.95, "recall = {}", cm.recall());
        assert!(cm.precision() > 0.95, "precision = {}", cm.precision());
    }

    #[test]
    fn validation_errors() {
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![4],
            ..MlpConfig::default()
        })
        .unwrap();
        let trainer = Trainer::new(TrainConfig::default());
        assert_eq!(
            trainer.fit(&mut mlp, &[], &[]).unwrap_err(),
            QnnError::EmptyDataset
        );
        assert!(matches!(
            trainer.fit(&mut mlp, &[vec![0.0; 4]], &[0, 1]).unwrap_err(),
            QnnError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            trainer.fit(&mut mlp, &[vec![0.0; 3]], &[0]).unwrap_err(),
            QnnError::DimensionMismatch { .. }
        ));
        assert_eq!(
            trainer.fit(&mut mlp, &[vec![0.0; 4]], &[7]).unwrap_err(),
            QnnError::LabelOutOfRange {
                label: 7,
                classes: 2
            }
        );
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = toy_data(200, 8, 9);
        let run = || {
            let mut mlp = QuantMlp::new(MlpConfig {
                input_dim: 8,
                hidden: vec![8],
                ..MlpConfig::default()
            })
            .unwrap();
            Trainer::new(TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            })
            .fit(&mut mlp, &xs, &ys)
            .unwrap()
            .epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluate_counts_everything() {
        let (xs, ys) = toy_data(300, 8, 10);
        let mut mlp = QuantMlp::new(MlpConfig {
            input_dim: 8,
            hidden: vec![8],
            ..MlpConfig::default()
        })
        .unwrap();
        let cm = evaluate(&mut mlp, &xs, &ys);
        assert_eq!(cm.total(), 300);
    }
}
