//! Trainable parameter storage.

use serde::{Deserialize, Serialize};

/// A flat trainable tensor with its gradient accumulator.
///
/// Layers own their `ParamTensor`s; the optimiser receives mutable views
/// in a stable order each step (see [`crate::optim`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamTensor {
    /// Parameter values.
    pub data: Vec<f32>,
    /// Accumulated gradient (same length as `data`).
    pub grad: Vec<f32>,
}

impl ParamTensor {
    /// Creates a zero-initialised tensor of the given length.
    pub fn zeros(len: usize) -> Self {
        ParamTensor {
            data: vec![0.0; len],
            grad: vec![0.0; len],
        }
    }

    /// Wraps explicit values with a zeroed gradient.
    pub fn from_values(data: Vec<f32>) -> Self {
        let grad = vec![0.0; data.len()];
        ParamTensor { data, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_values() {
        let p = ParamTensor::zeros(3);
        assert_eq!(p.len(), 3);
        assert!(p.data.iter().all(|&v| v == 0.0));
        let q = ParamTensor::from_values(vec![1.0, 2.0]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.grad, vec![0.0, 0.0]);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = ParamTensor::zeros(2);
        p.grad[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
    }
}
