//! Uniform quantizers with straight-through estimators (Brevitas-style).
//!
//! * **Weights** — symmetric per-tensor quantisation to signed integers in
//!   the narrow range `[-(2^(b-1)-1), 2^(b-1)-1]`, scale derived from the
//!   current absolute maximum (recomputed every forward pass, as
//!   Brevitas' default `Int8WeightPerTensorFloat` family does).
//! * **Activations** — unsigned quantisation after ReLU to
//!   `[0, 2^b - 1]`, scale derived from an exponential-moving-average of
//!   the batch maximum (Brevitas' activation-statistics calibration).
//!
//! The backward passes use the straight-through estimator: weight
//! gradients pass through unchanged, activation gradients are clipped to
//! the active range.

use serde::{Deserialize, Serialize};

use crate::error::QnnError;

/// A validated quantisation bit-width in `1..=16`.
///
/// # Example
///
/// ```
/// use canids_qnn::quant::BitWidth;
///
/// let w4 = BitWidth::new(4)?;
/// assert_eq!(w4.bits(), 4);
/// assert_eq!(w4.signed_max(), 7);     // narrow symmetric range
/// assert_eq!(w4.unsigned_max(), 15);  // activation levels
/// # Ok::<(), canids_qnn::QnnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitWidth(u8);

impl BitWidth {
    /// The paper's deployed configuration: 4-bit uniform quantisation.
    pub const W4: BitWidth = BitWidth(4);
    /// 8-bit quantisation (the paper's GPU reference model).
    pub const W8: BitWidth = BitWidth(8);
    /// Binary (1-bit) quantisation.
    pub const W1: BitWidth = BitWidth(1);

    /// Creates a bit-width.
    ///
    /// # Errors
    ///
    /// Returns [`QnnError::InvalidBitWidth`] outside `1..=16`.
    pub fn new(bits: u8) -> Result<Self, QnnError> {
        if (1..=16).contains(&bits) {
            Ok(BitWidth(bits))
        } else {
            Err(QnnError::InvalidBitWidth(bits))
        }
    }

    /// The raw bit count.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Largest magnitude of the narrow symmetric signed range:
    /// `2^(b-1) - 1` (1 for 1-bit, i.e. weights in `{-1, 0, +1}` — we use
    /// the ternary-with-zero convention FINN adopts for b=1 weights with
    /// zero included via rounding).
    pub fn signed_max(self) -> i32 {
        if self.0 == 1 {
            1
        } else {
            (1i32 << (self.0 - 1)) - 1
        }
    }

    /// Largest value of the unsigned activation range: `2^b - 1`.
    pub fn unsigned_max(self) -> u32 {
        (1u32 << self.0) - 1
    }
}

impl Default for BitWidth {
    fn default() -> Self {
        BitWidth::W4
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

/// Symmetric per-tensor weight quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightQuantizer {
    bits: BitWidth,
}

impl WeightQuantizer {
    /// Creates a weight quantizer for the given width.
    pub fn new(bits: BitWidth) -> Self {
        WeightQuantizer { bits }
    }

    /// The configured width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The per-tensor scale for the given weights: `max|w| / signed_max`.
    /// Returns 1.0 for an all-zero tensor so division stays defined.
    pub fn scale(&self, weights: &[f32]) -> f32 {
        let max_abs = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if max_abs == 0.0 {
            1.0
        } else {
            max_abs / self.bits.signed_max() as f32
        }
    }

    /// Quantises one weight to its integer code.
    pub fn to_int(&self, w: f32, scale: f32) -> i32 {
        let q = (w / scale).round() as i32;
        q.clamp(-self.bits.signed_max(), self.bits.signed_max())
    }

    /// Fake-quantises `weights` into `out` (same length), returning the
    /// scale used. `out` may alias a scratch buffer reused across steps.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != weights.len()`.
    pub fn fake_quantize(&self, weights: &[f32], out: &mut [f32]) -> f32 {
        assert_eq!(out.len(), weights.len(), "buffer length mismatch");
        let scale = self.scale(weights);
        for (o, &w) in out.iter_mut().zip(weights) {
            *o = self.to_int(w, scale) as f32 * scale;
        }
        scale
    }
}

/// Unsigned activation quantizer with EMA max-statistics calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActQuantizer {
    bits: BitWidth,
    running_max: f32,
    momentum: f32,
    calibrated: bool,
}

impl ActQuantizer {
    /// Creates an activation quantizer; `running_max` starts at 6.0
    /// (the ReLU6 heuristic) until the first batch calibrates it.
    pub fn new(bits: BitWidth) -> Self {
        ActQuantizer {
            bits,
            running_max: 6.0,
            momentum: 0.9,
            calibrated: false,
        }
    }

    /// The configured width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// The calibrated clip ceiling.
    pub fn running_max(&self) -> f32 {
        self.running_max
    }

    /// The quantisation step: `running_max / unsigned_max`.
    pub fn scale(&self) -> f32 {
        self.running_max / self.bits.unsigned_max() as f32
    }

    /// Updates the EMA of the batch maximum (training mode only).
    pub fn observe(&mut self, batch: &[f32]) {
        let batch_max = batch.iter().fold(0.0f32, |m, &v| m.max(v));
        if batch_max <= 0.0 {
            return;
        }
        if self.calibrated {
            self.running_max = self.momentum * self.running_max + (1.0 - self.momentum) * batch_max;
        } else {
            self.running_max = batch_max;
            self.calibrated = true;
        }
        // Keep the ceiling strictly positive for scale stability.
        self.running_max = self.running_max.max(1e-3);
    }

    /// Quantises one pre-activation to its integer level (ReLU included).
    pub fn to_int(&self, z: f32) -> u32 {
        let scale = self.scale();
        let q = (z / scale).round();
        if q <= 0.0 {
            0
        } else {
            (q as u32).min(self.bits.unsigned_max())
        }
    }

    /// Fake-quantised activation value (ReLU + round + clip, re-scaled).
    pub fn fake_quantize(&self, z: f32) -> f32 {
        self.to_int(z) as f32 * self.scale()
    }

    /// Straight-through gradient mask: 1 inside the active range
    /// `(0, running_max)`, 0 outside.
    pub fn ste_mask(&self, z: f32) -> f32 {
        if z > 0.0 && z < self.running_max {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_validates_range() {
        assert!(BitWidth::new(0).is_err());
        assert!(BitWidth::new(17).is_err());
        for b in 1..=16 {
            assert_eq!(BitWidth::new(b).unwrap().bits(), b);
        }
    }

    #[test]
    fn signed_max_follows_narrow_range() {
        assert_eq!(BitWidth::new(2).unwrap().signed_max(), 1);
        assert_eq!(BitWidth::new(4).unwrap().signed_max(), 7);
        assert_eq!(BitWidth::new(8).unwrap().signed_max(), 127);
        assert_eq!(BitWidth::W1.signed_max(), 1);
    }

    #[test]
    fn unsigned_max_is_full_range() {
        assert_eq!(BitWidth::W1.unsigned_max(), 1);
        assert_eq!(BitWidth::W4.unsigned_max(), 15);
        assert_eq!(BitWidth::W8.unsigned_max(), 255);
    }

    #[test]
    fn weight_scale_from_abs_max() {
        let q = WeightQuantizer::new(BitWidth::W4);
        let w = [0.5, -1.4, 0.7];
        assert!((q.scale(&w) - 1.4 / 7.0).abs() < 1e-6);
        assert_eq!(q.scale(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn weight_codes_clamped_to_narrow_range() {
        let q = WeightQuantizer::new(BitWidth::W4);
        let w = [0.5, -1.4, 0.7, 1.4];
        let s = q.scale(&w);
        for &v in &w {
            let code = q.to_int(v, s);
            assert!((-7..=7).contains(&code), "code {code}");
        }
        assert_eq!(q.to_int(1.4, s), 7);
        assert_eq!(q.to_int(-1.4, s), -7);
    }

    #[test]
    fn fake_quantize_is_idempotent() {
        let q = WeightQuantizer::new(BitWidth::W4);
        let w = [0.31, -0.94, 0.02, 0.77];
        let mut once = vec![0.0; 4];
        let s1 = q.fake_quantize(&w, &mut once);
        let mut twice = vec![0.0; 4];
        let s2 = q.fake_quantize(&once, &mut twice);
        assert!((s1 - s2).abs() < 1e-6);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantisation_error_bounded_by_half_step() {
        let q = WeightQuantizer::new(BitWidth::W8);
        let w: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 37.0).collect();
        let mut out = vec![0.0; w.len()];
        let s = q.fake_quantize(&w, &mut out);
        for (a, b) in w.iter().zip(&out) {
            assert!((a - b).abs() <= s / 2.0 + 1e-6);
        }
    }

    #[test]
    fn act_quantizer_calibrates_then_smooths() {
        let mut q = ActQuantizer::new(BitWidth::W4);
        q.observe(&[0.0, 2.0, 4.0]);
        assert!((q.running_max() - 4.0).abs() < 1e-6, "first batch snaps");
        q.observe(&[0.0, 8.0]);
        // EMA: 0.9*4 + 0.1*8 = 4.4
        assert!((q.running_max() - 4.4).abs() < 1e-4);
    }

    #[test]
    fn act_levels_clip_and_floor() {
        let mut q = ActQuantizer::new(BitWidth::W4);
        q.observe(&[3.0]);
        assert_eq!(q.to_int(-1.0), 0, "negative pre-activations clamp to 0");
        assert_eq!(q.to_int(100.0), 15, "large values clip to max level");
        let mid = q.fake_quantize(1.5);
        assert!(mid > 0.0 && mid < 3.01);
    }

    #[test]
    fn act_fake_quantize_error_bounded() {
        let mut q = ActQuantizer::new(BitWidth::W8);
        q.observe(&[4.0]);
        let s = q.scale();
        for i in 0..100 {
            let z = i as f32 * 0.04;
            let fq = q.fake_quantize(z);
            assert!((fq - z.clamp(0.0, 4.0)).abs() <= s / 2.0 + 1e-6);
        }
    }

    #[test]
    fn ste_mask_matches_active_range() {
        let mut q = ActQuantizer::new(BitWidth::W4);
        q.observe(&[2.0]);
        assert_eq!(q.ste_mask(-0.1), 0.0);
        assert_eq!(q.ste_mask(0.5), 1.0);
        assert_eq!(q.ste_mask(2.5), 0.0);
    }

    #[test]
    fn observe_ignores_non_positive_batches() {
        let mut q = ActQuantizer::new(BitWidth::W4);
        let before = q.running_max();
        q.observe(&[-1.0, 0.0]);
        assert_eq!(q.running_max(), before);
    }

    #[test]
    fn one_bit_activation_is_binary() {
        let mut q = ActQuantizer::new(BitWidth::W1);
        q.observe(&[1.0]);
        assert_eq!(q.to_int(0.6), 1);
        assert_eq!(q.to_int(0.4), 0);
        assert_eq!(q.bits().unsigned_max(), 1);
    }
}
