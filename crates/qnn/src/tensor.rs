//! Minimal dense-matrix kernels for MLP training.
//!
//! Everything the trainer needs reduces to three fused linear-layer
//! kernels, each written so the inner loop walks contiguous rows
//! (`x` rows and `W` rows are both contiguous in the `y = x Wᵀ + b`
//! layout), which keeps the pure-Rust implementation within a small
//! factor of a BLAS on these layer sizes.

use std::fmt;

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use canids_qnn::tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills the matrix with zeros (reuse between minibatches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, " [")?;
            for c in 0..self.cols.min(12) {
                write!(f, " {:8.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 12 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// `y = x · Wᵀ + b` — the linear-layer forward pass.
///
/// Shapes: `x` is `batch × in`, `w` is `out × in`, `b` has `out` entries;
/// the result is `batch × out`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_forward(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
    assert_eq!(x.cols, w.cols, "x cols must equal w cols (input dim)");
    assert_eq!(
        b.len(),
        w.rows,
        "bias length must equal w rows (output dim)"
    );
    let mut y = Matrix::zeros(x.rows, w.rows);
    for r in 0..x.rows {
        let xr = x.row(r);
        let yr = y.row_mut(r);
        for (o, yo) in yr.iter_mut().enumerate() {
            let wr = w.row(o);
            let mut acc = 0.0f32;
            for k in 0..xr.len() {
                acc += xr[k] * wr[k];
            }
            *yo = acc + b[o];
        }
    }
    y
}

/// `dx = dy · W` — gradient with respect to the layer input.
///
/// Shapes: `dy` is `batch × out`, `w` is `out × in`; result `batch × in`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_backward_input(dy: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(dy.cols, w.rows, "dy cols must equal w rows");
    let mut dx = Matrix::zeros(dy.rows, w.cols);
    for r in 0..dy.rows {
        let dyr = dy.row(r);
        let dxr = dx.row_mut(r);
        for (o, &g) in dyr.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let wr = w.row(o);
            for k in 0..dxr.len() {
                dxr[k] += g * wr[k];
            }
        }
    }
    dx
}

/// Accumulates `dw += dyᵀ · x` and `db += Σ dy` — parameter gradients.
///
/// Shapes: `dy` is `batch × out`, `x` is `batch × in`, `dw` is `out × in`
/// flattened, `db` has `out` entries.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_backward_params(dy: &Matrix, x: &Matrix, dw: &mut [f32], db: &mut [f32]) {
    assert_eq!(dy.rows, x.rows, "batch sizes must match");
    assert_eq!(dw.len(), dy.cols * x.cols, "dw must be out*in");
    assert_eq!(db.len(), dy.cols, "db must be out");
    let in_dim = x.cols;
    for r in 0..dy.rows {
        let dyr = dy.row(r);
        let xr = x.row(r);
        for (o, &g) in dyr.iter().enumerate() {
            db[o] += g;
            if g == 0.0 {
                continue;
            }
            let dwr = &mut dw[o * in_dim..(o + 1) * in_dim];
            for k in 0..in_dim {
                dwr[k] += g * xr[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_forward(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), w.rows());
        for r in 0..x.rows() {
            for o in 0..w.rows() {
                let mut acc = b[o];
                for k in 0..x.cols() {
                    acc += x[(r, k)] * w[(o, k)];
                }
                y[(r, o)] = acc;
            }
        }
        y
    }

    fn pseudo_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed | 1;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.push(((state >> 16) as f32 / 32768.0) - 1.0);
        }
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn indexing_is_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn forward_matches_naive() {
        let x = pseudo_matrix(5, 7, 1);
        let w = pseudo_matrix(3, 7, 2);
        let b = vec![0.1, -0.2, 0.3];
        let got = linear_forward(&x, &w, &b);
        let want = naive_forward(&x, &w, &b);
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w_).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let x = pseudo_matrix(2, 4, 3);
        let w = pseudo_matrix(3, 4, 4);
        let b = vec![0.0; 3];
        // Loss = sum(y); dL/dy = 1; dL/dx[r][k] = sum_o w[o][k].
        let dy = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let dx = linear_backward_input(&dy, &w);
        let eps = 1e-3f32;
        for r in 0..2 {
            for k in 0..4 {
                let mut xp = x.clone();
                xp[(r, k)] += eps;
                let mut xm = x.clone();
                xm[(r, k)] -= eps;
                let fp: f32 = linear_forward(&xp, &w, &b).as_slice().iter().sum();
                let fm: f32 = linear_forward(&xm, &w, &b).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (dx[(r, k)] - numeric).abs() < 1e-2,
                    "dx[{r}][{k}] = {} vs {numeric}",
                    dx[(r, k)]
                );
            }
        }
    }

    #[test]
    fn backward_params_matches_finite_difference() {
        let x = pseudo_matrix(3, 4, 5);
        let w = pseudo_matrix(2, 4, 6);
        let b = vec![0.05, -0.07];
        let dy = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let mut dw = vec![0.0f32; 8];
        let mut db = vec![0.0f32; 2];
        linear_backward_params(&dy, &x, &mut dw, &mut db);
        let eps = 1e-3f32;
        for o in 0..2 {
            for k in 0..4 {
                let mut wp = w.clone();
                wp[(o, k)] += eps;
                let mut wm = w.clone();
                wm[(o, k)] -= eps;
                let fp: f32 = linear_forward(&x, &wp, &b).as_slice().iter().sum();
                let fm: f32 = linear_forward(&x, &wm, &b).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!((dw[o * 4 + k] - numeric).abs() < 1e-2);
            }
            // db[o] = batch size (each row contributes 1).
            assert!((db[o] - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_gradient_rows_skipped_correctly() {
        let w = pseudo_matrix(3, 4, 7);
        let dy = Matrix::from_vec(1, 3, vec![0.0, 2.0, 0.0]);
        let dx = linear_backward_input(&dy, &w);
        for k in 0..4 {
            assert!((dx[(0, k)] - 2.0 * w[(1, k)]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "x cols must equal w cols")]
    fn forward_validates_shapes() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 4);
        linear_forward(&x, &w, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = pseudo_matrix(3, 3, 8);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = pseudo_matrix(20, 40, 9);
        let s = m.to_string();
        assert!(s.contains("Matrix 20x40"));
    }
}
