//! Minimal dense-matrix kernels for MLP training.
//!
//! Everything the trainer needs reduces to three fused linear-layer
//! kernels, each written so the inner loop walks contiguous rows
//! (`x` rows and `W` rows are both contiguous in the `y = x Wᵀ + b`
//! layout), which keeps the pure-Rust implementation within a small
//! factor of a BLAS on these layer sizes.

use std::fmt;

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use canids_qnn::tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills the matrix with zeros (reuse between minibatches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, " [")?;
            for c in 0..self.cols.min(12) {
                write!(f, " {:8.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 12 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// `y = x · Wᵀ + b` — the linear-layer forward pass.
///
/// Shapes: `x` is `batch × in`, `w` is `out × in`, `b` has `out` entries;
/// the result is `batch × out`.
///
/// The kernel blocks eight output neurons against each cached input row,
/// giving eight independent accumulation chains per inner loop (the
/// scalar version is latency-bound on a single chain). Each neuron's
/// accumulator still sums over `k` in order, so results are bit-identical
/// to the straightforward scalar kernel.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_forward(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
    let mut y = Matrix::zeros(x.rows, w.rows);
    linear_forward_into(x, w, b, &mut y);
    y
}

/// [`linear_forward`] into a caller-provided output matrix — the
/// allocation-free variant for hot paths that reuse buffers across calls
/// (per-frame streaming evaluation, minibatch loops).
///
/// # Panics
///
/// Panics on shape mismatch, including a mis-sized `y`.
pub fn linear_forward_into(x: &Matrix, w: &Matrix, b: &[f32], y: &mut Matrix) {
    assert_eq!(x.cols, w.cols, "x cols must equal w cols (input dim)");
    assert_eq!(
        b.len(),
        w.rows,
        "bias length must equal w rows (output dim)"
    );
    assert_eq!(y.rows, x.rows, "y rows must equal x rows (batch)");
    assert_eq!(y.cols, w.rows, "y cols must equal w rows (output dim)");
    let out_dim = w.rows;
    for r in 0..x.rows {
        let xr = x.row(r);
        let yr = y.row_mut(r);
        let mut o = 0usize;
        while o + 8 <= out_dim {
            let s = dot8(xr, &w.data[o * w.cols..(o + 8) * w.cols], w.cols);
            for (j, &sj) in s.iter().enumerate() {
                yr[o + j] = sj + b[o + j];
            }
            o += 8;
        }
        while o < out_dim {
            yr[o] = dot(xr, w.row(o)) + b[o];
            o += 1;
        }
    }
}

/// Eight simultaneous dot products sharing one pass over `x`; `ws` holds
/// eight contiguous weight rows of length `n`.
#[inline]
fn dot8(x: &[f32], ws: &[f32], n: usize) -> [f32; 8] {
    let x = &x[..n];
    // Re-slicing each row to a common length lets the compiler drop
    // bounds checks in the hot loop.
    let (w0, w1, w2, w3, w4, w5, w6, w7) = (
        &ws[..n],
        &ws[n..2 * n],
        &ws[2 * n..3 * n],
        &ws[3 * n..4 * n],
        &ws[4 * n..5 * n],
        &ws[5 * n..6 * n],
        &ws[6 * n..7 * n],
        &ws[7 * n..8 * n],
    );
    let mut s = [0.0f32; 8];
    for k in 0..n {
        let xv = x[k];
        s[0] += xv * w0[k];
        s[1] += xv * w1[k];
        s[2] += xv * w2[k];
        s[3] += xv * w3[k];
        s[4] += xv * w4[k];
        s[5] += xv * w5[k];
        s[6] += xv * w6[k];
        s[7] += xv * w7[k];
    }
    s
}

/// Sequential dot product (remainder path; keeps summation order).
#[inline]
fn dot(x: &[f32], w: &[f32]) -> f32 {
    let w = &w[..x.len()];
    let mut acc = 0.0f32;
    for k in 0..x.len() {
        acc += x[k] * w[k];
    }
    acc
}

/// `y = x · Wᵀ + b` — the **reassociated** fast forward kernel.
///
/// Same contract and shapes as [`linear_forward`], but each neuron's
/// `k`-summation runs as eight independent partial-sum lanes (SIMD
/// width) instead of one sequential chain, so results can differ from
/// the pinned-order kernel in the last bits. The combine order is
/// fixed — lanes reduce pairwise as `((s0+s4)+(s1+s5)) +
/// ((s2+s6)+(s3+s7))`, then the `k % 8` tail, then the bias — so the
/// kernel is still deterministic run-to-run; it is only *reassociated*
/// relative to [`linear_forward`].
///
/// Use this on inference-only paths (`QuantMlp` eval-mode forwards).
/// Training and any path whose bit-exactness contract spans the float
/// domain must stay on [`linear_forward`]; the `float-reassociation`
/// lint confines reassociated accumulation to this one audited site.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_forward_fast(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
    let mut y = Matrix::zeros(x.rows, w.rows);
    linear_forward_fast_into(x, w, b, &mut y);
    y
}

/// [`linear_forward_fast`] into a caller-provided output matrix — the
/// allocation-free variant for buffer-reusing inference loops.
///
/// All reassociated accumulation in the workspace lives in this one
/// function body (eight-output blocks with eight partial-sum lanes per
/// neuron, plus the lane-tailed remainder columns and remainder
/// neurons), which is what keeps the audit surface a single site.
///
/// # Panics
///
/// Panics on shape mismatch, including a mis-sized `y`.
// lint:allow(float-reassociation): the single audited reassociated kernel — 8 partial-sum lanes per neuron with a fixed pairwise combine order, inference-only callers (training stays on the pinned-order linear_forward)
pub fn linear_forward_fast_into(x: &Matrix, w: &Matrix, b: &[f32], y: &mut Matrix) {
    assert_eq!(x.cols, w.cols, "x cols must equal w cols (input dim)");
    assert_eq!(
        b.len(),
        w.rows,
        "bias length must equal w rows (output dim)"
    );
    assert_eq!(y.rows, x.rows, "y rows must equal x rows (batch)");
    assert_eq!(y.cols, w.rows, "y cols must equal w rows (output dim)");
    let n = w.cols;
    let out_dim = w.rows;
    for r in 0..x.rows {
        let xr = &x.row(r)[..n];
        let yr = y.row_mut(r);
        let mut o = 0usize;
        while o + 8 <= out_dim {
            let ws = &w.data[o * n..(o + 8) * n];
            // Re-slicing each weight row to a common length drops bounds
            // checks in the chunk loop, same idiom as `dot8`.
            let rows = [
                &ws[..n],
                &ws[n..2 * n],
                &ws[2 * n..3 * n],
                &ws[3 * n..4 * n],
                &ws[4 * n..5 * n],
                &ws[5 * n..6 * n],
                &ws[6 * n..7 * n],
                &ws[7 * n..8 * n],
            ];
            // Eight independent lanes per output neuron: the chunk loop
            // carries 64 accumulators (8 neurons × 8 lanes), so the FP
            // adds pipeline instead of serialising on one chain.
            let mut acc = [[0.0f32; 8]; 8];
            let mut k = 0usize;
            while k + 8 <= n {
                let xc = &xr[k..k + 8];
                for j in 0..8 {
                    let wc = &rows[j][k..k + 8];
                    let a = &mut acc[j];
                    for l in 0..8 {
                        a[l] += xc[l] * wc[l];
                    }
                }
                k += 8;
            }
            for j in 0..8 {
                let a = &acc[j];
                let wr = rows[j];
                let mut tail = 0.0f32;
                for kk in k..n {
                    tail += xr[kk] * wr[kk];
                }
                let lanes = ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]));
                yr[o + j] = (lanes + tail) + b[o + j];
            }
            o += 8;
        }
        while o < out_dim {
            let wr = &w.row(o)[..n];
            let mut acc = [0.0f32; 8];
            let mut k = 0usize;
            while k + 8 <= n {
                for l in 0..8 {
                    acc[l] += xr[k + l] * wr[k + l];
                }
                k += 8;
            }
            let mut tail = 0.0f32;
            while k < n {
                tail += xr[k] * wr[k];
                k += 1;
            }
            let lanes =
                ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
            yr[o] = (lanes + tail) + b[o];
            o += 1;
        }
    }
}

/// `dx = dy · W` — gradient with respect to the layer input.
///
/// Shapes: `dy` is `batch × out`, `w` is `out × in`; result `batch × in`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_backward_input(dy: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(dy.cols, w.rows, "dy cols must equal w rows");
    let mut dx = Matrix::zeros(dy.rows, w.cols);
    for r in 0..dy.rows {
        let dyr = dy.row(r);
        let dxr = dx.row_mut(r);
        for (o, &g) in dyr.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let wr = w.row(o);
            for k in 0..dxr.len() {
                dxr[k] += g * wr[k];
            }
        }
    }
    dx
}

/// Accumulates `dw += dyᵀ · x` and `db += Σ dy` — parameter gradients.
///
/// Shapes: `dy` is `batch × out`, `x` is `batch × in`, `dw` is `out × in`
/// flattened, `db` has `out` entries.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn linear_backward_params(dy: &Matrix, x: &Matrix, dw: &mut [f32], db: &mut [f32]) {
    assert_eq!(dy.rows, x.rows, "batch sizes must match");
    assert_eq!(dw.len(), dy.cols * x.cols, "dw must be out*in");
    assert_eq!(db.len(), dy.cols, "db must be out");
    let in_dim = x.cols;
    for r in 0..dy.rows {
        let dyr = dy.row(r);
        let xr = x.row(r);
        for (o, &g) in dyr.iter().enumerate() {
            db[o] += g;
            if g == 0.0 {
                continue;
            }
            let dwr = &mut dw[o * in_dim..(o + 1) * in_dim];
            for k in 0..in_dim {
                dwr[k] += g * xr[k];
            }
        }
    }
}

/// Strict left-to-right `f32` summation.
///
/// Float addition does not reassociate, so the accumulation order *is*
/// part of any bit-exactness contract. This module owns that order for
/// the workspace: callers route float reductions through these helpers
/// instead of open-coding `.sum()` / `+=` loops, and the
/// `float-reassociation` lint flags accumulation anywhere else.
///
/// # Example
///
/// ```
/// use canids_qnn::tensor::pinned_sum_f32;
/// assert_eq!(pinned_sum_f32([0.1f32, 0.2, 0.3]), 0.1 + 0.2 + 0.3);
/// ```
pub fn pinned_sum_f32(xs: impl IntoIterator<Item = f32>) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += x;
    }
    acc
}

/// Strict left-to-right `f64` summation — see [`pinned_sum_f32`].
pub fn pinned_sum_f64(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    for x in xs {
        acc += x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_forward(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), w.rows());
        for r in 0..x.rows() {
            for o in 0..w.rows() {
                let mut acc = b[o];
                for k in 0..x.cols() {
                    acc += x[(r, k)] * w[(o, k)];
                }
                y[(r, o)] = acc;
            }
        }
        y
    }

    fn pseudo_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed | 1;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.push(((state >> 16) as f32 / 32768.0) - 1.0);
        }
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn indexing_is_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn forward_matches_naive() {
        let x = pseudo_matrix(5, 7, 1);
        let w = pseudo_matrix(3, 7, 2);
        let b = vec![0.1, -0.2, 0.3];
        let got = linear_forward(&x, &w, &b);
        let want = naive_forward(&x, &w, &b);
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w_).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let x = pseudo_matrix(2, 4, 3);
        let w = pseudo_matrix(3, 4, 4);
        let b = vec![0.0; 3];
        // Loss = sum(y); dL/dy = 1; dL/dx[r][k] = sum_o w[o][k].
        let dy = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let dx = linear_backward_input(&dy, &w);
        let eps = 1e-3f32;
        for r in 0..2 {
            for k in 0..4 {
                let mut xp = x.clone();
                xp[(r, k)] += eps;
                let mut xm = x.clone();
                xm[(r, k)] -= eps;
                let fp: f32 = linear_forward(&xp, &w, &b).as_slice().iter().sum();
                let fm: f32 = linear_forward(&xm, &w, &b).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (dx[(r, k)] - numeric).abs() < 1e-2,
                    "dx[{r}][{k}] = {} vs {numeric}",
                    dx[(r, k)]
                );
            }
        }
    }

    #[test]
    fn backward_params_matches_finite_difference() {
        let x = pseudo_matrix(3, 4, 5);
        let w = pseudo_matrix(2, 4, 6);
        let b = vec![0.05, -0.07];
        let dy = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let mut dw = vec![0.0f32; 8];
        let mut db = vec![0.0f32; 2];
        linear_backward_params(&dy, &x, &mut dw, &mut db);
        let eps = 1e-3f32;
        for o in 0..2 {
            for k in 0..4 {
                let mut wp = w.clone();
                wp[(o, k)] += eps;
                let mut wm = w.clone();
                wm[(o, k)] -= eps;
                let fp: f32 = linear_forward(&x, &wp, &b).as_slice().iter().sum();
                let fm: f32 = linear_forward(&x, &wm, &b).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!((dw[o * 4 + k] - numeric).abs() < 1e-2);
            }
            // db[o] = batch size (each row contributes 1).
            assert!((db[o] - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_gradient_rows_skipped_correctly() {
        let w = pseudo_matrix(3, 4, 7);
        let dy = Matrix::from_vec(1, 3, vec![0.0, 2.0, 0.0]);
        let dx = linear_backward_input(&dy, &w);
        for k in 0..4 {
            assert!((dx[(0, k)] - 2.0 * w[(1, k)]).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_is_bit_identical_to_scalar_reference() {
        // The blocked kernel keeps each neuron's k-summation sequential,
        // so it must agree with the naive kernel to the last bit —
        // training trajectories cannot drift across the optimisation.
        // Same association as the kernel: sum over k first, bias last.
        fn scalar_forward(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
            let mut y = Matrix::zeros(x.rows(), w.rows());
            for r in 0..x.rows() {
                for o in 0..w.rows() {
                    let mut acc = 0.0f32;
                    for k in 0..x.cols() {
                        acc += x[(r, k)] * w[(o, k)];
                    }
                    y[(r, o)] = acc + b[o];
                }
            }
            y
        }
        for (rows, out) in [(1usize, 1usize), (3, 5), (7, 4), (64, 64), (5, 66)] {
            let x = pseudo_matrix(rows, 75, 11);
            let w = pseudo_matrix(out, 75, 13);
            let b: Vec<f32> = (0..out).map(|i| i as f32 * 0.01 - 0.2).collect();
            let got = linear_forward(&x, &w, &b);
            let want = scalar_forward(&x, &w, &b);
            assert_eq!(got.as_slice(), want.as_slice(), "{rows}x{out}");
        }
    }

    #[test]
    fn fast_forward_matches_pinned_within_eps() {
        // Reassociation moves rounding, not magnitude: for inputs in
        // [-1, 1] the two kernels agree to a few ulps of the running
        // sum. Shapes cover every block/tail combination on both axes.
        for (rows, out, cols) in [
            (1usize, 1usize, 1usize),
            (1, 1, 7),
            (1, 1, 8),
            (1, 1, 9),
            (3, 5, 3),
            (7, 4, 75),
            (4, 8, 16),
            (64, 64, 75),
            (5, 66, 75),
            (2, 17, 23),
        ] {
            let x = pseudo_matrix(rows, cols, 21);
            let w = pseudo_matrix(out, cols, 23);
            let b: Vec<f32> = (0..out).map(|i| i as f32 * 0.01 - 0.2).collect();
            let pinned = linear_forward(&x, &w, &b);
            let fast = linear_forward_fast(&x, &w, &b);
            for (p, f) in pinned.as_slice().iter().zip(fast.as_slice()) {
                assert!(
                    (p - f).abs() <= 1e-4 * (1.0 + p.abs()),
                    "{rows}x{out}x{cols}: pinned {p} vs fast {f}"
                );
            }
        }
    }

    #[test]
    fn fast_forward_is_exact_when_sums_are_representable() {
        // Small-integer values make every product and partial sum exact
        // in f32, so reassociation cannot move a single bit: the fast
        // kernel must agree with the pinned kernel exactly. This pins
        // the fast kernel's *determinism* (fixed lane combine order)
        // without claiming bit-identity on general inputs.
        for (rows, out, cols) in [(2usize, 9usize, 75usize), (3, 16, 11), (1, 4, 6)] {
            let mut state = 77u32;
            let mut gen = |len: usize| {
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    data.push(((state >> 24) % 7) as f32 - 3.0);
                }
                data
            };
            let x = Matrix::from_vec(rows, cols, gen(rows * cols));
            let w = Matrix::from_vec(out, cols, gen(out * cols));
            let b: Vec<f32> = (0..out).map(|i| i as f32 - 1.0).collect();
            let pinned = linear_forward(&x, &w, &b);
            let fast = linear_forward_fast(&x, &w, &b);
            assert_eq!(pinned.as_slice(), fast.as_slice(), "{rows}x{out}x{cols}");
            let again = linear_forward_fast(&x, &w, &b);
            assert_eq!(fast.as_slice(), again.as_slice());
        }
    }

    #[test]
    fn fast_forward_into_reuses_buffer() {
        let x = pseudo_matrix(4, 9, 24);
        let w = pseudo_matrix(6, 9, 25);
        let b = vec![0.5; 6];
        let mut y = pseudo_matrix(4, 6, 26); // stale contents must be overwritten
        linear_forward_fast_into(&x, &w, &b, &mut y);
        assert_eq!(y, linear_forward_fast(&x, &w, &b));
    }

    #[test]
    #[should_panic(expected = "x cols must equal w cols")]
    fn fast_forward_validates_shapes() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 4);
        linear_forward_fast(&x, &w, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "y cols must equal w rows")]
    fn fast_forward_into_validates_output_shape() {
        let x = Matrix::zeros(2, 3);
        let w = Matrix::zeros(4, 3);
        let mut y = Matrix::zeros(2, 5);
        linear_forward_fast_into(&x, &w, &[0.0; 4], &mut y);
    }

    #[test]
    fn forward_into_reuses_buffer() {
        let x = pseudo_matrix(4, 9, 14);
        let w = pseudo_matrix(6, 9, 15);
        let b = vec![0.5; 6];
        let mut y = pseudo_matrix(4, 6, 16); // stale contents must be overwritten
        linear_forward_into(&x, &w, &b, &mut y);
        assert_eq!(y, linear_forward(&x, &w, &b));
    }

    #[test]
    #[should_panic(expected = "y cols must equal w rows")]
    fn forward_into_validates_output_shape() {
        let x = Matrix::zeros(2, 3);
        let w = Matrix::zeros(4, 3);
        let mut y = Matrix::zeros(2, 5);
        linear_forward_into(&x, &w, &[0.0; 4], &mut y);
    }

    #[test]
    #[should_panic(expected = "x cols must equal w cols")]
    fn forward_validates_shapes() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 4);
        linear_forward(&x, &w, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = pseudo_matrix(3, 3, 8);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = pseudo_matrix(20, 40, 9);
        let s = m.to_string();
        assert!(s.contains("Matrix 20x40"));
    }

    #[test]
    fn pinned_sum_is_left_to_right() {
        // An order-sensitive input: summing forwards and backwards
        // differ in the last bit, which is exactly why the order is
        // pinned.
        let xs = [1.0e8f32, 1.0, -1.0e8, 1.0, 0.25, 1.0e-3];
        let mut manual = 0.0f32;
        for &x in &xs {
            manual += x;
        }
        assert_eq!(pinned_sum_f32(xs).to_bits(), manual.to_bits());
        let rev = pinned_sum_f32(xs.iter().rev().copied());
        assert_ne!(pinned_sum_f32(xs).to_bits(), rev.to_bits());

        let ys = [0.1f64, 0.2, 0.3, 1.0e16, -1.0e16];
        let mut manual = 0.0f64;
        for &y in &ys {
            manual += y;
        }
        assert_eq!(pinned_sum_f64(ys).to_bits(), manual.to_bits());
    }
}
