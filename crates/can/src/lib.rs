//! Bit-level Controller Area Network (CAN 2.0 A/B) substrate.
//!
//! This crate provides the in-vehicle network model that the quantised-MLP
//! intrusion-detection pipeline runs on top of. It implements the parts of
//! ISO 11898 that determine *what an IDS can observe* and *how fast frames
//! arrive*:
//!
//! * [`frame`] — identifiers, data/remote frames and validation,
//! * [`crc`] — the CRC-15 sequence (polynomial `0x4599`),
//! * [`bits`] — exact frame bit encoding with stuff-bit insertion/removal,
//! * [`timing`] — bit timing, frame durations and line-rate maths,
//! * [`arbitration`] — CSMA/CR identifier arbitration,
//! * [`filter`] — mask/value acceptance filtering,
//! * [`node`] — a CAN controller model with TX priority queue, RX FIFO and
//!   the error-confinement state machine (TEC/REC, error-passive, bus-off),
//! * [`bus`] — an event-driven multi-node bus simulator with bit-accurate
//!   frame durations and pluggable traffic sources,
//! * [`time`] — the simulation time base shared by the whole workspace.
//!
//! The model is frame-granular but bit-accurate in time: every duration is
//! derived from the encoded bit sequence (including stuff bits), so
//! throughput numbers such as the paper's "8 300+ messages per second on
//! high-speed CAN" *emerge* from the encoding rather than being asserted.
//!
//! # Example
//!
//! ```
//! use canids_can::prelude::*;
//!
//! # fn main() -> Result<(), CanError> {
//! let frame = CanFrame::new(CanId::standard(0x2C0)?, &[0xDE, 0xAD, 0xBE, 0xEF])?;
//! let bits = encode_frame(&frame);
//! let decoded = decode_frame(bits.bits())?;
//! assert_eq!(decoded, frame);
//!
//! // A 4-byte frame at 1 Mb/s occupies ~75-90 µs on the wire.
//! let rate = Bitrate::HIGH_SPEED_1M;
//! let dur = frame_duration(&frame, rate);
//! assert!(dur.as_nanos() > 70_000 && dur.as_nanos() < 95_000);
//! # Ok(())
//! # }
//! ```

pub mod arbitration;
pub mod bits;
pub mod bus;
pub mod crc;
pub mod error;
pub mod filter;
pub mod frame;
pub mod gateway;
pub mod node;
pub mod time;
pub mod timing;

pub use arbitration::{arbitrate, ArbitrationField};
pub use bits::{decode_frame, destuff, encode_frame, stuff, FrameBits};
pub use bus::{Bus, BusConfig, BusEvent, BusStats, TrafficSource};
pub use crc::crc15;
pub use error::{CanError, FrameError};
pub use filter::AcceptanceFilter;
pub use frame::{CanFrame, CanId, Dlc};
pub use gateway::{Gateway, GatewayConfig, GatewayStats};
pub use node::{CanController, ControllerConfig, ControllerStats, ErrorState};
pub use time::SimTime;
pub use timing::{
    frame_bit_count, frame_duration, max_frame_rate, BitTiming, Bitrate, EFF_OVERHEAD_BITS,
    INTERFRAME_BITS, SFF_OVERHEAD_BITS,
};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::arbitration::arbitrate;
    pub use crate::bits::{decode_frame, encode_frame};
    pub use crate::bus::{Bus, BusConfig, BusEvent, TrafficSource};
    pub use crate::error::{CanError, FrameError};
    pub use crate::filter::AcceptanceFilter;
    pub use crate::frame::{CanFrame, CanId};
    pub use crate::node::{CanController, ControllerConfig, ErrorState};
    pub use crate::time::SimTime;
    pub use crate::timing::{frame_duration, max_frame_rate, Bitrate};
}
