//! Error types for the CAN substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing frames or identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Standard identifier above `0x7FF`.
    StandardIdRange(u32),
    /// Extended identifier above `0x1FFF_FFFF`.
    ExtendedIdRange(u32),
    /// Payload longer than eight bytes (classic CAN limit).
    PayloadTooLong(usize),
    /// DLC above 8 for a classic CAN data frame.
    DlcRange(u8),
    /// A wire-level DLC field above the 4-bit maximum of 15 — only
    /// reachable when a caller hands [`crate::frame::Dlc::from_wire`] a
    /// value wider than the field it claims to have decoded.
    WireDlcRange(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::StandardIdRange(id) => {
                write!(f, "standard identifier {id:#x} exceeds 11 bits")
            }
            FrameError::ExtendedIdRange(id) => {
                write!(f, "extended identifier {id:#x} exceeds 29 bits")
            }
            FrameError::PayloadTooLong(len) => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the 8-byte classic CAN limit"
                )
            }
            FrameError::DlcRange(dlc) => write!(f, "DLC {dlc} exceeds 8"),
            FrameError::WireDlcRange(dlc) => {
                write!(f, "wire DLC {dlc} exceeds the 4-bit field maximum of 15")
            }
        }
    }
}

impl Error for FrameError {}

/// Errors raised by the bit codec, the controllers and the bus simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanError {
    /// A frame-construction error.
    Frame(FrameError),
    /// More than five equal consecutive bits inside the stuffed region.
    Stuff { position: usize },
    /// CRC-15 mismatch between the received and the computed sequence.
    Crc { expected: u16, computed: u16 },
    /// A fixed-form field (delimiter, EOF) held the wrong level.
    Form { field: &'static str },
    /// No node acknowledged the frame.
    Ack,
    /// The bit sequence ended before the frame was complete.
    Truncated { needed: usize, available: usize },
    /// Operation attempted on a bus-off controller.
    BusOff,
    /// A controller's TX queue is full.
    TxQueueFull,
}

impl fmt::Display for CanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanError::Frame(e) => write!(f, "invalid frame: {e}"),
            CanError::Stuff { position } => write!(f, "stuff error at bit {position}"),
            CanError::Crc { expected, computed } => write!(
                f,
                "CRC mismatch: received {expected:#06x}, computed {computed:#06x}"
            ),
            CanError::Form { field } => write!(f, "form error in {field}"),
            CanError::Ack => write!(f, "frame not acknowledged"),
            CanError::Truncated { needed, available } => write!(
                f,
                "bit sequence truncated: needed {needed} bits, had {available}"
            ),
            CanError::BusOff => write!(f, "controller is bus-off"),
            CanError::TxQueueFull => write!(f, "transmit queue full"),
        }
    }
}

impl Error for CanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CanError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for CanError {
    fn from(e: FrameError) -> Self {
        CanError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CanError::Crc {
            expected: 0x1234,
            computed: 0x0fff,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x1234"));
        assert!(msg.contains("0x0fff"));
        assert!(!msg.starts_with(char::is_uppercase) || msg.starts_with("CRC"));
    }

    #[test]
    fn frame_error_converts_into_can_error() {
        let e: CanError = FrameError::DlcRange(12).into();
        assert_eq!(e, CanError::Frame(FrameError::DlcRange(12)));
        assert!(e.to_string().contains("DLC 12"));
    }

    #[test]
    fn source_chains_to_frame_error() {
        use std::error::Error as _;
        let e: CanError = FrameError::PayloadTooLong(9).into();
        assert!(e.source().is_some());
        assert!(CanError::Ack.source().is_none());
    }
}
