//! CRC-15 sequence of ISO 11898-1.
//!
//! The CAN frame check sequence uses the generator polynomial
//! `x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1` (`0x4599`), computed
//! over the unstuffed bit stream from the start-of-frame bit up to and
//! including the last data bit.

/// The CAN CRC-15 generator polynomial (without the leading `x^15` term).
pub const CRC15_POLY: u16 = 0x4599;

/// Mask keeping the CRC register at 15 bits.
const CRC15_MASK: u16 = 0x7FFF;

/// Computes the CRC-15 over a bit sequence (MSB-first, one `bool` per bit).
///
/// Implements the shift-register procedure from ISO 11898-1 §10.4.2.6:
/// for each input bit, `crc_nxt = bit XOR crc[14]`, the register shifts
/// left, and the polynomial is XORed in when `crc_nxt` is set.
///
/// # Example
///
/// ```
/// use canids_can::crc::crc15;
///
/// // CRC of the empty sequence is zero.
/// assert_eq!(crc15(&[]), 0);
/// // A single dominant (0) bit leaves the register zero.
/// assert_eq!(crc15(&[false]), 0);
/// // A single recessive (1) bit loads the polynomial.
/// assert_eq!(crc15(&[true]), 0x4599);
/// ```
pub fn crc15(bits: &[bool]) -> u16 {
    let mut crc: u16 = 0;
    for &bit in bits {
        let crc_nxt = bit ^ ((crc >> 14) & 1 == 1);
        crc = (crc << 1) & CRC15_MASK;
        if crc_nxt {
            crc ^= CRC15_POLY;
        }
    }
    crc
}

/// Incremental CRC-15 register, for streaming encoders.
///
/// # Example
///
/// ```
/// use canids_can::crc::{crc15, Crc15};
///
/// let bits = [true, false, true, true, false];
/// let mut reg = Crc15::new();
/// for &b in &bits {
///     reg.push(b);
/// }
/// assert_eq!(reg.value(), crc15(&bits));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc15 {
    crc: u16,
}

impl Crc15 {
    /// Creates a zeroed CRC register.
    pub fn new() -> Self {
        Crc15 { crc: 0 }
    }

    /// Shifts one bit into the register.
    pub fn push(&mut self, bit: bool) {
        let crc_nxt = bit ^ ((self.crc >> 14) & 1 == 1);
        self.crc = (self.crc << 1) & CRC15_MASK;
        if crc_nxt {
            self.crc ^= CRC15_POLY;
        }
    }

    /// The current 15-bit CRC value.
    pub fn value(&self) -> u16 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_from_u32(value: u32, width: usize) -> Vec<bool> {
        (0..width).rev().map(|i| (value >> i) & 1 == 1).collect()
    }

    #[test]
    fn empty_sequence_is_zero() {
        assert_eq!(crc15(&[]), 0);
    }

    #[test]
    fn zeros_stay_zero() {
        assert_eq!(crc15(&[false; 64]), 0);
    }

    #[test]
    fn single_one_loads_polynomial() {
        assert_eq!(crc15(&[true]), CRC15_POLY);
    }

    #[test]
    fn linearity_under_xor() {
        // CRC of (a XOR b) == CRC(a) XOR CRC(b) for equal-length messages
        // (CRC with zero init is linear over GF(2)).
        let a = bits_from_u32(0xDEAD_BEEF, 32);
        let b = bits_from_u32(0x1234_5678, 32);
        let x: Vec<bool> = a.iter().zip(&b).map(|(&p, &q)| p ^ q).collect();
        assert_eq!(crc15(&x), crc15(&a) ^ crc15(&b));
    }

    #[test]
    fn incremental_matches_batch() {
        let bits = bits_from_u32(0xCAFE_F00D, 32);
        let mut reg = Crc15::new();
        for &b in &bits {
            reg.push(b);
        }
        assert_eq!(reg.value(), crc15(&bits));
    }

    #[test]
    fn appending_crc_yields_zero_remainder() {
        // Fundamental CRC property: message || CRC has remainder zero.
        let msg = bits_from_u32(0xA5A5_5A5A, 32);
        let fcs = crc15(&msg);
        let mut whole = msg.clone();
        whole.extend(bits_from_u32(u32::from(fcs), 15));
        assert_eq!(crc15(&whole), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let msg = bits_from_u32(0x0F0F_1234, 32);
        let fcs = crc15(&msg);
        for i in 0..msg.len() {
            let mut corrupted = msg.clone();
            corrupted[i] = !corrupted[i];
            assert_ne!(crc15(&corrupted), fcs, "flip at {i} undetected");
        }
    }

    #[test]
    fn crc_is_15_bits() {
        for seed in 0u32..256 {
            let msg = bits_from_u32(seed.wrapping_mul(0x9E37_79B9), 32);
            assert!(crc15(&msg) <= 0x7FFF);
        }
    }
}
