//! Bit timing and line-rate arithmetic.
//!
//! Frame durations are computed from the *actual encoded bit count*
//! (including stuff bits), so every throughput/latency figure that the
//! benchmark harness reports is grounded in the wire format. The paper's
//! headline "over 8 300 messages per second at highest payload capacity"
//! corresponds to 8-byte frames on a 1 Mb/s high-speed CAN segment; see
//! [`max_frame_rate`].

use serde::{Deserialize, Serialize};

use crate::bits::encode_frame;
use crate::error::FrameError;
use crate::frame::{CanFrame, CanId};
use crate::time::SimTime;

/// Fixed-form overhead bits of a standard data frame (SOF + ID + RTR + IDE +
/// r0 + DLC + CRC + delimiters + ACK + EOF), excluding data and stuff bits.
pub const SFF_OVERHEAD_BITS: usize = 44;

/// Fixed-form overhead bits of an extended data frame.
pub const EFF_OVERHEAD_BITS: usize = 64;

/// Interframe space (intermission) between consecutive frames, in bit times.
pub const INTERFRAME_BITS: usize = 3;

/// Nominal bus bitrate.
///
/// # Example
///
/// ```
/// use canids_can::timing::Bitrate;
///
/// assert_eq!(Bitrate::HIGH_SPEED_1M.bits_per_sec(), 1_000_000);
/// assert_eq!(Bitrate::HIGH_SPEED_1M.bit_time().as_nanos(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitrate(u32);

impl Bitrate {
    /// 1 Mb/s — ISO 11898-2 high-speed CAN maximum (powertrain/chassis).
    pub const HIGH_SPEED_1M: Bitrate = Bitrate(1_000_000);
    /// 500 kb/s — the common high-speed body/powertrain rate.
    pub const HIGH_SPEED_500K: Bitrate = Bitrate(500_000);
    /// 250 kb/s.
    pub const MEDIUM_250K: Bitrate = Bitrate(250_000);
    /// 125 kb/s — low-speed/comfort CAN.
    pub const LOW_SPEED_125K: Bitrate = Bitrate(125_000);

    /// Creates an arbitrary bitrate (bits per second). Panation-free; the
    /// value is clamped to at least 1 kb/s to keep durations finite.
    pub fn new(bits_per_sec: u32) -> Self {
        Bitrate(bits_per_sec.max(1_000))
    }

    /// Bits per second.
    pub fn bits_per_sec(self) -> u32 {
        self.0
    }

    /// Duration of one nominal bit time.
    pub fn bit_time(self) -> SimTime {
        SimTime::from_nanos(1_000_000_000 / u64::from(self.0))
    }
}

impl Default for Bitrate {
    fn default() -> Self {
        Bitrate::HIGH_SPEED_500K
    }
}

/// CAN bit-timing segments in time quanta (ISO 11898-1 §11.3).
///
/// The controller divides every bit into SYNC_SEG (always 1 tq),
/// PROP_SEG, PHASE_SEG1 and PHASE_SEG2; the sample point sits after
/// PHASE_SEG1.
///
/// # Example
///
/// ```
/// use canids_can::timing::BitTiming;
///
/// // 40 MHz CAN clock, 500 kb/s, sample point ~87.5 %.
/// let bt = BitTiming::for_bitrate(40_000_000, 500_000);
/// assert_eq!(bt.tq_per_bit() * bt.prescaler() as usize * 500_000,
///            40_000_000 as usize);
/// assert!(bt.sample_point() > 0.7 && bt.sample_point() < 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTiming {
    prescaler: u16,
    prop_seg: u8,
    phase_seg1: u8,
    phase_seg2: u8,
    sjw: u8,
}

impl BitTiming {
    /// Creates a timing configuration from explicit segment lengths
    /// (in time quanta). `SYNC_SEG` is implicitly 1 tq.
    pub fn new(prescaler: u16, prop_seg: u8, phase_seg1: u8, phase_seg2: u8, sjw: u8) -> Self {
        BitTiming {
            prescaler: prescaler.max(1),
            prop_seg: prop_seg.max(1),
            phase_seg1: phase_seg1.max(1),
            phase_seg2: phase_seg2.max(1),
            sjw: sjw.max(1),
        }
    }

    /// Derives a standard configuration (sample point near 87.5 %) for a
    /// CAN clock and target bitrate, following the usual CiA 301 heuristic.
    pub fn for_bitrate(can_clock_hz: u32, bitrate: u32) -> Self {
        let bitrate = bitrate.max(1_000);
        // Aim for 16 tq per bit when divisible, otherwise fall back.
        for tq_per_bit in [16u32, 20, 10, 8, 25, 12, 40] {
            let div = bitrate * tq_per_bit;
            if div != 0 && can_clock_hz.is_multiple_of(div) {
                let prescaler = (can_clock_hz / div) as u16;
                // Sample point ~87.5%: SYNC(1) + PROP + PS1 = 0.875 * tq
                let before = ((tq_per_bit as f64 * 0.875).round() as u32).max(3);
                let ps2 = (tq_per_bit - before).max(1) as u8;
                let prop = ((before - 1) / 2).max(1) as u8;
                let ps1 = (before - 1 - u32::from(prop)).max(1) as u8;
                return BitTiming::new(prescaler, prop, ps1, ps2, ps2.min(4));
            }
        }
        // Generic fallback: 10 tq per bit, integer prescaler.
        let prescaler = (can_clock_hz / (bitrate * 10)).max(1) as u16;
        BitTiming::new(prescaler, 4, 4, 1, 1)
    }

    /// Baud-rate prescaler (CAN clock divider).
    pub fn prescaler(self) -> u16 {
        self.prescaler
    }

    /// Total time quanta per bit (SYNC + PROP + PS1 + PS2).
    pub fn tq_per_bit(self) -> usize {
        1 + usize::from(self.prop_seg) + usize::from(self.phase_seg1) + usize::from(self.phase_seg2)
    }

    /// Relative sample-point position within the bit (0..1).
    pub fn sample_point(self) -> f64 {
        let before = 1 + usize::from(self.prop_seg) + usize::from(self.phase_seg1);
        before as f64 / self.tq_per_bit() as f64
    }

    /// (Re)synchronisation jump width in time quanta.
    pub fn sjw(self) -> u8 {
        self.sjw
    }

    /// The bitrate this timing yields on a given CAN clock.
    pub fn bitrate(self, can_clock_hz: u32) -> Bitrate {
        let denom = u32::from(self.prescaler) * self.tq_per_bit() as u32;
        Bitrate::new(can_clock_hz / denom.max(1))
    }
}

impl Default for BitTiming {
    fn default() -> Self {
        // 40 MHz clock, 500 kb/s, 16 tq.
        BitTiming::for_bitrate(40_000_000, 500_000)
    }
}

/// Number of on-wire bits for a frame (SOF..EOF, including stuff bits).
pub fn frame_bit_count(frame: &CanFrame) -> usize {
    encode_frame(frame).len()
}

/// Wire duration of a frame (SOF..EOF) at `rate`, excluding interframe space.
pub fn frame_duration(frame: &CanFrame, rate: Bitrate) -> SimTime {
    rate.bit_time().mul_u64(frame_bit_count(frame) as u64)
}

/// Wire duration of a frame plus the mandatory 3-bit interframe space.
pub fn frame_slot_duration(frame: &CanFrame, rate: Bitrate) -> SimTime {
    rate.bit_time()
        .mul_u64((frame_bit_count(frame) + INTERFRAME_BITS) as u64)
}

/// Maximum sustainable frames/second for back-to-back standard data frames
/// of `payload_len` bytes at `rate`, averaged over random payloads.
///
/// Uses the mean stuffed length of frames with uniformly random payloads
/// and a mid-range identifier, plus the 3-bit interframe space — the same
/// arithmetic that yields the paper's ≈8.3 kframe/s at 1 Mb/s.
///
/// # Errors
///
/// Returns [`FrameError::PayloadTooLong`] when `payload_len > 8`.
pub fn max_frame_rate(rate: Bitrate, payload_len: usize) -> Result<f64, FrameError> {
    if payload_len > 8 {
        return Err(FrameError::PayloadTooLong(payload_len));
    }
    // Deterministic pseudo-random payload sample for the average.
    let mut state = 0x9E37_79B9u32;
    let mut total_bits = 0usize;
    const SAMPLES: usize = 64;
    for i in 0..SAMPLES {
        let mut payload = [0u8; 8];
        for byte in payload.iter_mut().take(payload_len) {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *byte = (state >> 24) as u8;
        }
        let id = CanId::Standard(
            (0x100 + (u16::try_from(i).expect("SAMPLES < 64") * 13) % 0x400) & 0x7FF,
        );
        let frame = CanFrame::new(id, &payload[..payload_len]).expect("payload_len validated <= 8");
        total_bits += frame_bit_count(&frame) + INTERFRAME_BITS;
    }
    let mean_bits = total_bits as f64 / SAMPLES as f64;
    Ok(f64::from(rate.bits_per_sec()) / mean_bits)
}

/// Worst-case number of stuff bits for a standard frame with `n` stuffable
/// bits: `floor((n - 1) / 4)`.
pub fn worst_case_stuff_bits(stuffable_bits: usize) -> usize {
    if stuffable_bits == 0 {
        0
    } else {
        (stuffable_bits - 1) / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrame, CanId};

    fn frame8(id: u16) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[0xA5; 8]).unwrap()
    }

    #[test]
    fn bit_time_inverse_of_rate() {
        assert_eq!(Bitrate::HIGH_SPEED_1M.bit_time().as_nanos(), 1_000);
        assert_eq!(Bitrate::HIGH_SPEED_500K.bit_time().as_nanos(), 2_000);
        assert_eq!(Bitrate::LOW_SPEED_125K.bit_time().as_nanos(), 8_000);
    }

    #[test]
    fn frame_duration_scales_with_bitrate() {
        let f = frame8(0x2C0);
        let d1m = frame_duration(&f, Bitrate::HIGH_SPEED_1M);
        let d500k = frame_duration(&f, Bitrate::HIGH_SPEED_500K);
        assert_eq!(d500k.as_nanos(), 2 * d1m.as_nanos());
    }

    #[test]
    fn eight_byte_frame_at_1m_is_about_120us() {
        let f = frame8(0x2C0);
        let d = frame_duration(&f, Bitrate::HIGH_SPEED_1M);
        assert!(
            d.as_micros_f64() > 105.0 && d.as_micros_f64() < 135.0,
            "duration = {d}"
        );
    }

    #[test]
    fn line_rate_exceeds_8300_at_full_payload_1m() {
        // Paper: "over 8300 messages per second at highest payload capacity".
        let rate = max_frame_rate(Bitrate::HIGH_SPEED_1M, 8).unwrap();
        assert!(rate > 8_000.0 && rate < 9_300.0, "rate = {rate}");
    }

    #[test]
    fn line_rate_rejects_oversized_payload() {
        assert!(max_frame_rate(Bitrate::HIGH_SPEED_1M, 9).is_err());
    }

    #[test]
    fn shorter_payloads_yield_higher_rates() {
        let r0 = max_frame_rate(Bitrate::HIGH_SPEED_1M, 0).unwrap();
        let r8 = max_frame_rate(Bitrate::HIGH_SPEED_1M, 8).unwrap();
        assert!(r0 > r8);
    }

    #[test]
    fn bit_timing_sample_point_near_875() {
        let bt = BitTiming::for_bitrate(40_000_000, 500_000);
        assert!(
            (bt.sample_point() - 0.875).abs() < 0.08,
            "{}",
            bt.sample_point()
        );
        assert_eq!(bt.bitrate(40_000_000).bits_per_sec(), 500_000);
    }

    #[test]
    fn bit_timing_round_trips_common_rates() {
        for rate in [125_000u32, 250_000, 500_000, 1_000_000] {
            let bt = BitTiming::for_bitrate(40_000_000, rate);
            assert_eq!(bt.bitrate(40_000_000).bits_per_sec(), rate, "rate {rate}");
        }
    }

    #[test]
    fn worst_case_stuffing_formula() {
        assert_eq!(worst_case_stuff_bits(0), 0);
        assert_eq!(worst_case_stuff_bits(98), 24);
        assert_eq!(worst_case_stuff_bits(5), 1);
    }

    #[test]
    fn slot_duration_adds_interframe_space() {
        let f = frame8(0x100);
        let rate = Bitrate::HIGH_SPEED_1M;
        let without = frame_duration(&f, rate);
        let with = frame_slot_duration(&f, rate);
        assert_eq!(with.as_nanos() - without.as_nanos(), 3_000);
    }
}
