//! CAN identifiers and frames.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::FrameError;

/// Maximum value of an 11-bit (base/standard) identifier.
pub const MAX_STANDARD_ID: u32 = 0x7FF;
/// Maximum value of a 29-bit (extended) identifier.
pub const MAX_EXTENDED_ID: u32 = 0x1FFF_FFFF;

/// A CAN message identifier (11-bit standard or 29-bit extended).
///
/// Identifiers double as bus-arbitration priorities: a numerically lower
/// identifier wins arbitration. The `Ord` implementation reflects wire
/// priority (see [`crate::arbitration`]), with standard frames beating
/// extended frames that share the same base identifier.
///
/// # Example
///
/// ```
/// use canids_can::frame::CanId;
///
/// let engine = CanId::standard(0x316)?;
/// assert_eq!(engine.raw(), 0x316);
/// assert!(engine.is_standard());
/// # Ok::<(), canids_can::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CanId {
    /// 11-bit identifier (CAN 2.0A).
    Standard(u16),
    /// 29-bit identifier (CAN 2.0B).
    Extended(u32),
}

impl CanId {
    /// Creates a standard (11-bit) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::StandardIdRange`] when `id > 0x7FF`.
    pub fn standard(id: u16) -> Result<Self, FrameError> {
        if u32::from(id) > MAX_STANDARD_ID {
            Err(FrameError::StandardIdRange(u32::from(id)))
        } else {
            Ok(CanId::Standard(id))
        }
    }

    /// Creates an extended (29-bit) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::ExtendedIdRange`] when `id > 0x1FFF_FFFF`.
    pub fn extended(id: u32) -> Result<Self, FrameError> {
        if id > MAX_EXTENDED_ID {
            Err(FrameError::ExtendedIdRange(id))
        } else {
            Ok(CanId::Extended(id))
        }
    }

    /// Checked construction of a standard identifier from the raw
    /// `u32` that registers, CSV fields and the bit codec produce —
    /// the replacement for the silently-truncating `raw as u16` idiom
    /// (the bug class behind the original 29-bit extended-ID fix).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::StandardIdRange`] when `raw > 0x7FF`.
    ///
    /// # Example
    ///
    /// ```
    /// use canids_can::frame::CanId;
    ///
    /// assert_eq!(CanId::standard_from_raw(0x316)?.raw(), 0x316);
    /// assert!(CanId::standard_from_raw(0x800).is_err());
    /// # Ok::<(), canids_can::FrameError>(())
    /// ```
    pub fn standard_from_raw(raw: u32) -> Result<Self, FrameError> {
        if raw > MAX_STANDARD_ID {
            Err(FrameError::StandardIdRange(raw))
        } else {
            Ok(CanId::Standard(
                u16::try_from(raw).expect("raw <= 0x7FF fits u16"),
            ))
        }
    }

    /// The least-significant byte of the raw identifier — the checked
    /// way to derive an id-dependent payload byte (test traffic
    /// generators use this instead of `id as u8`).
    pub fn low_byte(self) -> u8 {
        self.raw().to_le_bytes()[0]
    }

    /// The raw identifier value (11 or 29 bits).
    pub fn raw(self) -> u32 {
        match self {
            CanId::Standard(id) => u32::from(id),
            CanId::Extended(id) => id,
        }
    }

    /// `true` for 11-bit identifiers.
    pub fn is_standard(self) -> bool {
        matches!(self, CanId::Standard(_))
    }

    /// `true` for 29-bit identifiers.
    pub fn is_extended(self) -> bool {
        matches!(self, CanId::Extended(_))
    }

    /// The 11-bit base identifier: the full standard identifier, or the
    /// most-significant 11 bits of an extended identifier.
    pub fn base_id(self) -> u16 {
        match self {
            CanId::Standard(id) => id,
            CanId::Extended(id) => u16::try_from((id >> 18) & 0x7FF).expect("masked to 11 bits"),
        }
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanId::Standard(id) => write!(f, "{id:#05X}"),
            CanId::Extended(id) => write!(f, "{id:#010X}x"),
        }
    }
}

/// A validated data length code (0..=8 for classic CAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dlc(u8);

impl Dlc {
    /// Creates a DLC, validating the classic-CAN 0..=8 range.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::DlcRange`] when `value > 8`.
    pub fn new(value: u8) -> Result<Self, FrameError> {
        if value > 8 {
            Err(FrameError::DlcRange(value))
        } else {
            Ok(Dlc(value))
        }
    }

    /// Checked construction from a raw wire field (as decoded from the
    /// 4-bit DLC slot). Classic CAN defines values 9..=15 to mean 8
    /// data bytes, so those clamp; values that cannot come from a 4-bit
    /// field at all are an error rather than a truncation.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::WireDlcRange`] when `raw > 15`.
    ///
    /// # Example
    ///
    /// ```
    /// use canids_can::frame::Dlc;
    ///
    /// assert_eq!(Dlc::from_wire(5)?.value(), 5);
    /// assert_eq!(Dlc::from_wire(12)?.value(), 8); // classic-CAN clamp
    /// assert!(Dlc::from_wire(16).is_err());
    /// # Ok::<(), canids_can::FrameError>(())
    /// ```
    pub fn from_wire(raw: u32) -> Result<Self, FrameError> {
        if raw > 15 {
            Err(FrameError::WireDlcRange(raw))
        } else {
            Ok(Dlc(u8::try_from(raw.min(8)).expect("clamped to <= 8")))
        }
    }

    /// Checked construction from a payload length.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::PayloadTooLong`] when `len > 8`.
    pub fn from_len(len: usize) -> Result<Self, FrameError> {
        if len > 8 {
            Err(FrameError::PayloadTooLong(len))
        } else {
            Ok(Dlc(u8::try_from(len).expect("len <= 8 fits u8")))
        }
    }

    /// The raw DLC value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Number of payload bytes (identical to the DLC for classic CAN).
    pub fn byte_len(self) -> usize {
        usize::from(self.0)
    }
}

impl Default for Dlc {
    fn default() -> Self {
        Dlc(8)
    }
}

/// A classic CAN data or remote frame.
///
/// The payload is stored in a fixed 8-byte buffer; only the first
/// [`CanFrame::dlc`] bytes are meaningful. Frames are small `Copy`-friendly
/// values: the whole struct is 16 bytes of payload-adjacent data, which
/// keeps the bus simulator allocation-free on the hot path.
///
/// # Example
///
/// ```
/// use canids_can::frame::{CanFrame, CanId};
///
/// let frame = CanFrame::new(CanId::standard(0x43F)?, &[0x01, 0x45])?;
/// assert_eq!(frame.dlc().value(), 2);
/// assert_eq!(frame.data(), &[0x01, 0x45]);
/// # Ok::<(), canids_can::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanFrame {
    id: CanId,
    dlc: Dlc,
    data: [u8; 8],
    remote: bool,
}

impl CanFrame {
    /// Creates a data frame carrying `payload`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::PayloadTooLong`] when `payload.len() > 8`.
    pub fn new(id: CanId, payload: &[u8]) -> Result<Self, FrameError> {
        if payload.len() > 8 {
            return Err(FrameError::PayloadTooLong(payload.len()));
        }
        let mut data = [0u8; 8];
        data[..payload.len()].copy_from_slice(payload);
        Ok(CanFrame {
            id,
            dlc: Dlc::from_len(payload.len()).expect("len <= 8 validated above"),
            data,
            remote: false,
        })
    }

    /// Creates a remote (RTR) frame requesting `dlc` bytes.
    pub fn remote(id: CanId, dlc: Dlc) -> Self {
        CanFrame {
            id,
            dlc,
            data: [0u8; 8],
            remote: true,
        }
    }

    /// The frame identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// The data length code.
    pub fn dlc(&self) -> Dlc {
        self.dlc
    }

    /// The meaningful payload bytes (`dlc` of them).
    pub fn data(&self) -> &[u8] {
        &self.data[..self.dlc.byte_len()]
    }

    /// The payload padded to 8 bytes with zeros — the layout consumed by
    /// the IDS feature extractor.
    pub fn data_padded(&self) -> &[u8; 8] {
        &self.data
    }

    /// `true` for remote (RTR) frames.
    pub fn is_remote(&self) -> bool {
        self.remote
    }

    /// Rebuilds the frame with a different payload, keeping the identifier.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::PayloadTooLong`] when `payload.len() > 8`.
    pub fn with_data(&self, payload: &[u8]) -> Result<Self, FrameError> {
        CanFrame::new(self.id, payload)
    }
}

impl fmt::Display for CanFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id, self.dlc.value())?;
        if self.remote {
            write!(f, " RTR")?;
        } else {
            for b in self.data() {
                write!(f, " {b:02X}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_id_accepts_11_bits() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert_eq!(
            CanId::standard(0x800).unwrap_err(),
            FrameError::StandardIdRange(0x800)
        );
    }

    #[test]
    fn extended_id_accepts_29_bits() {
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert_eq!(
            CanId::extended(0x2000_0000).unwrap_err(),
            FrameError::ExtendedIdRange(0x2000_0000)
        );
    }

    #[test]
    fn base_id_of_extended_takes_top_bits() {
        let id = CanId::extended(0x1234_5678).unwrap();
        assert_eq!(id.base_id(), 0x48D); // top 11 of the 29 bits
        let sid = CanId::standard(0x123).unwrap();
        assert_eq!(sid.base_id(), 0x123);
    }

    #[test]
    fn standard_from_raw_checks_range() {
        assert_eq!(
            CanId::standard_from_raw(0x7FF).unwrap(),
            CanId::standard(0x7FF).unwrap()
        );
        assert_eq!(
            CanId::standard_from_raw(0x800).unwrap_err(),
            FrameError::StandardIdRange(0x800)
        );
        assert_eq!(CanId::standard_from_raw(0x1AB).unwrap().low_byte(), 0xAB);
    }

    #[test]
    fn dlc_from_wire_clamps_and_checks() {
        for raw in 0..=8u32 {
            assert_eq!(u32::from(Dlc::from_wire(raw).unwrap().value()), raw);
        }
        for raw in 9..=15u32 {
            assert_eq!(Dlc::from_wire(raw).unwrap().value(), 8);
        }
        assert_eq!(
            Dlc::from_wire(16).unwrap_err(),
            FrameError::WireDlcRange(16)
        );
        assert_eq!(Dlc::from_len(3).unwrap().value(), 3);
        assert_eq!(Dlc::from_len(9).unwrap_err(), FrameError::PayloadTooLong(9));
    }

    #[test]
    fn data_frame_pads_payload() {
        let f = CanFrame::new(CanId::standard(0x100).unwrap(), &[1, 2, 3]).unwrap();
        assert_eq!(f.dlc().value(), 3);
        assert_eq!(f.data(), &[1, 2, 3]);
        assert_eq!(f.data_padded(), &[1, 2, 3, 0, 0, 0, 0, 0]);
        assert!(!f.is_remote());
    }

    #[test]
    fn payload_longer_than_8_rejected() {
        let err = CanFrame::new(CanId::standard(1).unwrap(), &[0; 9]).unwrap_err();
        assert_eq!(err, FrameError::PayloadTooLong(9));
    }

    #[test]
    fn remote_frame_has_no_data() {
        let f = CanFrame::remote(CanId::standard(0x55).unwrap(), Dlc::new(4).unwrap());
        assert!(f.is_remote());
        assert_eq!(f.dlc().value(), 4);
        assert_eq!(f.data(), &[0, 0, 0, 0]);
    }

    #[test]
    fn dlc_validates_range() {
        assert!(Dlc::new(8).is_ok());
        assert_eq!(Dlc::new(9).unwrap_err(), FrameError::DlcRange(9));
    }

    #[test]
    fn display_formats_id_and_payload() {
        let f = CanFrame::new(CanId::standard(0x43F).unwrap(), &[0xAB, 0x01]).unwrap();
        let s = f.to_string();
        assert!(s.contains("0x43F"), "{s}");
        assert!(s.contains("AB"), "{s}");
        let r = CanFrame::remote(CanId::standard(0x1).unwrap(), Dlc::new(2).unwrap());
        assert!(r.to_string().contains("RTR"));
    }

    #[test]
    fn with_data_keeps_identifier() {
        let f = CanFrame::new(CanId::standard(0x111).unwrap(), &[9]).unwrap();
        let g = f.with_data(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(g.id(), f.id());
        assert_eq!(g.dlc().value(), 8);
    }
}
