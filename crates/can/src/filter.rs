//! Mask/value acceptance filtering, as implemented by CAN controller
//! hardware (e.g. the Xilinx CANPS acceptance filter registers).
//!
//! A filter accepts an identifier when `id & mask == value & mask`. An IDS
//! ECU typically runs with a pass-all filter so the detection model sees
//! every frame on the bus.

use serde::{Deserialize, Serialize};

use crate::frame::{CanFrame, CanId};

/// A single mask/value acceptance filter.
///
/// # Example
///
/// ```
/// use canids_can::filter::AcceptanceFilter;
/// use canids_can::frame::{CanFrame, CanId};
///
/// // Accept only the powertrain block 0x100..=0x1FF.
/// let filter = AcceptanceFilter::standard(0x700, 0x100);
/// let f = CanFrame::new(CanId::standard(0x13A)?, &[])?;
/// assert!(filter.accepts(&f));
/// let g = CanFrame::new(CanId::standard(0x23A)?, &[])?;
/// assert!(!filter.accepts(&g));
/// # Ok::<(), canids_can::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceFilter {
    mask: u32,
    value: u32,
    extended: bool,
}

impl AcceptanceFilter {
    /// A filter on standard (11-bit) identifiers.
    pub fn standard(mask: u16, value: u16) -> Self {
        AcceptanceFilter {
            mask: u32::from(mask) & 0x7FF,
            value: u32::from(value) & 0x7FF,
            extended: false,
        }
    }

    /// A filter on extended (29-bit) identifiers.
    pub fn extended(mask: u32, value: u32) -> Self {
        AcceptanceFilter {
            mask: mask & 0x1FFF_FFFF,
            value: value & 0x1FFF_FFFF,
            extended: true,
        }
    }

    /// A pass-all filter for standard frames (mask 0 accepts everything) —
    /// the configuration an IDS node uses to observe the whole bus.
    pub fn accept_all_standard() -> Self {
        AcceptanceFilter::standard(0, 0)
    }

    /// The filter mask bits.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// The filter match value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Whether this filter applies to extended identifiers.
    pub fn is_extended(&self) -> bool {
        self.extended
    }

    /// Tests a frame against the filter. Frames of the other identifier
    /// format are rejected.
    pub fn accepts(&self, frame: &CanFrame) -> bool {
        match (frame.id(), self.extended) {
            (CanId::Standard(id), false) => u32::from(id) & self.mask == self.value & self.mask,
            (CanId::Extended(id), true) => id & self.mask == self.value & self.mask,
            _ => false,
        }
    }
}

/// A bank of filters; a frame is accepted when *any* filter matches, or
/// when the bank is empty (hardware reset default: no filtering).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterBank {
    filters: Vec<AcceptanceFilter>,
}

impl FilterBank {
    /// An empty (pass-everything) bank.
    pub fn new() -> Self {
        FilterBank {
            filters: Vec::new(),
        }
    }

    /// Adds a filter to the bank.
    pub fn add(&mut self, filter: AcceptanceFilter) -> &mut Self {
        self.filters.push(filter);
        self
    }

    /// Number of configured filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no filters are configured (all frames accepted).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Tests a frame against the bank.
    pub fn accepts(&self, frame: &CanFrame) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| f.accepts(frame))
    }
}

impl FromIterator<AcceptanceFilter> for FilterBank {
    fn from_iter<I: IntoIterator<Item = AcceptanceFilter>>(iter: I) -> Self {
        FilterBank {
            filters: iter.into_iter().collect(),
        }
    }
}

impl Extend<AcceptanceFilter> for FilterBank {
    fn extend<I: IntoIterator<Item = AcceptanceFilter>>(&mut self, iter: I) {
        self.filters.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrame, CanId};

    fn sf(id: u16) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[]).unwrap()
    }

    fn ef(id: u32) -> CanFrame {
        CanFrame::new(CanId::extended(id).unwrap(), &[]).unwrap()
    }

    #[test]
    fn mask_zero_accepts_everything_standard() {
        let f = AcceptanceFilter::accept_all_standard();
        for id in [0x000u16, 0x001, 0x3FF, 0x7FF] {
            assert!(f.accepts(&sf(id)));
        }
        assert!(
            !f.accepts(&ef(0x100)),
            "extended frames need an extended filter"
        );
    }

    #[test]
    fn exact_match_filter() {
        let f = AcceptanceFilter::standard(0x7FF, 0x316);
        assert!(f.accepts(&sf(0x316)));
        assert!(!f.accepts(&sf(0x317)));
    }

    #[test]
    fn block_filter_matches_prefix() {
        let f = AcceptanceFilter::standard(0x700, 0x200);
        assert!(f.accepts(&sf(0x2AB)));
        assert!(!f.accepts(&sf(0x300)));
    }

    #[test]
    fn extended_filter_matches_extended_only() {
        let f = AcceptanceFilter::extended(0x1FFF_FFFF, 0xABCDE);
        assert!(f.accepts(&ef(0xABCDE)));
        assert!(!f.accepts(&sf(0x123)));
    }

    #[test]
    fn bank_or_semantics() {
        let bank: FilterBank = [
            AcceptanceFilter::standard(0x7FF, 0x100),
            AcceptanceFilter::standard(0x7FF, 0x200),
        ]
        .into_iter()
        .collect();
        assert!(bank.accepts(&sf(0x100)));
        assert!(bank.accepts(&sf(0x200)));
        assert!(!bank.accepts(&sf(0x300)));
    }

    #[test]
    fn empty_bank_accepts_all() {
        let bank = FilterBank::new();
        assert!(bank.is_empty());
        assert!(bank.accepts(&sf(0x5AA)));
        assert!(bank.accepts(&ef(0x1234)));
    }

    #[test]
    fn extend_adds_filters() {
        let mut bank = FilterBank::new();
        bank.extend([AcceptanceFilter::standard(0x7FF, 0x42)]);
        assert_eq!(bank.len(), 1);
        assert!(bank.accepts(&sf(0x42)));
        assert!(!bank.accepts(&sf(0x43)));
    }
}
