//! Exact frame bit encoding: field layout, CRC insertion and bit stuffing.
//!
//! The encoder produces the on-wire bit sequence of a frame (dominant =
//! `false`, recessive = `true`), applying the 5-bit stuffing rule to the
//! region from start-of-frame through the CRC sequence. The decoder is its
//! exact inverse and validates stuffing, CRC and the fixed-form fields, so
//! `decode(encode(f)) == f` for every valid frame — a property exercised by
//! the test-suite.
//!
//! Bit durations derived from these sequences drive all throughput and
//! latency numbers reported by the benchmark harness.

use crate::crc::{crc15, Crc15};
use crate::error::CanError;
use crate::frame::{CanFrame, CanId, Dlc};

/// Number of identical consecutive bits after which a stuff bit is inserted.
pub const STUFF_RUN: usize = 5;

/// The encoded bit-level representation of a frame.
///
/// `bits` holds the complete on-wire sequence from SOF through the last EOF
/// bit (the 3-bit interframe space is *not* included; see
/// [`crate::timing::INTERFRAME_BITS`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBits {
    bits: Vec<bool>,
    stuff_bits: usize,
    stuffed_region_len: usize,
}

impl FrameBits {
    /// The full on-wire bit sequence (SOF..EOF).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Total number of bits on the wire (SOF..EOF, including stuff bits).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the sequence is empty (never the case for valid frames).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of stuff bits that were inserted.
    pub fn stuff_bits(&self) -> usize {
        self.stuff_bits
    }

    /// Length of the stuffed region (SOF..CRC, after stuffing).
    pub fn stuffed_region_len(&self) -> usize {
        self.stuffed_region_len
    }
}

fn push_bits_msb(dst: &mut Vec<bool>, value: u32, width: usize) {
    for i in (0..width).rev() {
        dst.push((value >> i) & 1 == 1);
    }
}

/// Applies CAN bit stuffing to a raw bit sequence.
///
/// After every run of five identical bits (counted over the *output*
/// stream, i.e. inserted stuff bits participate in subsequent runs), the
/// complement bit is inserted.
///
/// # Example
///
/// ```
/// use canids_can::bits::stuff;
///
/// let stuffed = stuff(&[false; 6]);
/// // 5 dominant bits, then a recessive stuff bit, then the 6th dominant bit.
/// assert_eq!(
///     stuffed,
///     vec![false, false, false, false, false, true, false]
/// );
/// ```
pub fn stuff(raw: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(raw.len() + raw.len() / 4);
    let mut run_val = false;
    let mut run_len = 0usize;
    for &bit in raw {
        out.push(bit);
        if run_len > 0 && bit == run_val {
            run_len += 1;
        } else {
            run_val = bit;
            run_len = 1;
        }
        if run_len == STUFF_RUN {
            let stuffed_bit = !run_val;
            out.push(stuffed_bit);
            run_val = stuffed_bit;
            run_len = 1;
        }
    }
    out
}

/// Removes stuff bits from a stuffed sequence, validating the stuffing rule.
///
/// # Errors
///
/// Returns [`CanError::Stuff`] when a sixth identical consecutive bit is
/// found where a complement stuff bit was required.
///
/// # Example
///
/// ```
/// use canids_can::bits::{destuff, stuff};
///
/// let raw = vec![true, true, true, true, true, true, false];
/// let wire = stuff(&raw);
/// assert_eq!(destuff(&wire)?, raw);
/// # Ok::<(), canids_can::CanError>(())
/// ```
pub fn destuff(stuffed: &[bool]) -> Result<Vec<bool>, CanError> {
    let mut out = Vec::with_capacity(stuffed.len());
    let mut run_val = false;
    let mut run_len = 0usize;
    let mut iter = stuffed.iter().copied().enumerate();
    while let Some((pos, bit)) = iter.next() {
        out.push(bit);
        if run_len > 0 && bit == run_val {
            run_len += 1;
        } else {
            run_val = bit;
            run_len = 1;
        }
        if run_len == STUFF_RUN {
            match iter.next() {
                Some((spos, sbit)) => {
                    if sbit == run_val {
                        return Err(CanError::Stuff { position: spos });
                    }
                    run_val = sbit;
                    run_len = 1;
                }
                None => break,
            }
            let _ = pos;
        }
    }
    Ok(out)
}

/// Builds the unstuffed field sequence from SOF through the CRC sequence.
fn stuffable_region(frame: &CanFrame) -> Vec<bool> {
    let mut raw = Vec::with_capacity(120);
    raw.push(false); // SOF (dominant)
    match frame.id() {
        CanId::Standard(id) => {
            push_bits_msb(&mut raw, u32::from(id), 11);
            raw.push(frame.is_remote()); // RTR
            raw.push(false); // IDE = 0 (standard)
            raw.push(false); // r0
        }
        CanId::Extended(id) => {
            push_bits_msb(&mut raw, (id >> 18) & 0x7FF, 11); // base ID
            raw.push(true); // SRR (recessive)
            raw.push(true); // IDE = 1 (extended)
            push_bits_msb(&mut raw, id & 0x3_FFFF, 18); // extension
            raw.push(frame.is_remote()); // RTR
            raw.push(false); // r1
            raw.push(false); // r0
        }
    }
    push_bits_msb(&mut raw, u32::from(frame.dlc().value()), 4);
    if !frame.is_remote() {
        for &byte in frame.data() {
            push_bits_msb(&mut raw, u32::from(byte), 8);
        }
    }
    let fcs = crc15(&raw);
    push_bits_msb(&mut raw, u32::from(fcs), 15);
    raw
}

/// Encodes a frame to its complete on-wire bit sequence.
///
/// The ACK slot is encoded dominant (`false`), i.e. the sequence as observed
/// on a bus where at least one receiver acknowledged the frame.
///
/// # Example
///
/// ```
/// use canids_can::bits::encode_frame;
/// use canids_can::frame::{CanFrame, CanId};
///
/// let f = CanFrame::new(CanId::standard(0x100)?, &[0xFF; 8])?;
/// let enc = encode_frame(&f);
/// // 8-byte standard frame: 98 stuffable bits + 10 fixed-form + stuffing.
/// assert!(enc.len() >= 108);
/// # Ok::<(), canids_can::FrameError>(())
/// ```
pub fn encode_frame(frame: &CanFrame) -> FrameBits {
    let raw = stuffable_region(frame);
    let mut bits = stuff(&raw);
    let stuffed_region_len = bits.len();
    let stuff_bits = stuffed_region_len - raw.len();
    bits.push(true); // CRC delimiter
    bits.push(false); // ACK slot (acknowledged)
    bits.push(true); // ACK delimiter
    bits.extend(std::iter::repeat_n(true, 7)); // EOF
    FrameBits {
        bits,
        stuff_bits,
        stuffed_region_len,
    }
}

/// Incremental destuffing cursor used by the decoder.
struct Destuffer<'a> {
    bits: &'a [bool],
    pos: usize,
    run_val: bool,
    run_len: usize,
    crc: Crc15,
    emitted: usize,
}

impl<'a> Destuffer<'a> {
    fn new(bits: &'a [bool]) -> Self {
        Destuffer {
            bits,
            pos: 0,
            run_val: false,
            run_len: 0,
            crc: Crc15::new(),
            emitted: 0,
        }
    }

    /// Reads the next payload (non-stuff) bit.
    fn next_bit(&mut self) -> Result<bool, CanError> {
        let bit = *self.bits.get(self.pos).ok_or(CanError::Truncated {
            needed: self.pos + 1,
            available: self.bits.len(),
        })?;
        self.pos += 1;
        if self.run_len > 0 && bit == self.run_val {
            self.run_len += 1;
        } else {
            self.run_val = bit;
            self.run_len = 1;
        }
        if self.run_len == STUFF_RUN {
            // The next wire bit is a stuff bit; consume and verify it.
            if let Some(&sbit) = self.bits.get(self.pos) {
                if sbit == self.run_val {
                    return Err(CanError::Stuff { position: self.pos });
                }
                self.pos += 1;
                self.run_val = sbit;
                self.run_len = 1;
            }
        }
        self.crc.push(bit);
        self.emitted += 1;
        Ok(bit)
    }

    fn next_field(&mut self, width: usize) -> Result<u32, CanError> {
        let mut value = 0u32;
        for _ in 0..width {
            value = (value << 1) | u32::from(self.next_bit()?);
        }
        Ok(value)
    }

    /// CRC over everything emitted so far.
    fn crc_value(&self) -> u16 {
        self.crc.value()
    }

    /// Wire position where fixed-form (unstuffed) fields begin.
    fn wire_pos(&self) -> usize {
        self.pos
    }
}

/// Decodes an on-wire bit sequence back into a [`CanFrame`].
///
/// The sequence must start at the SOF bit and contain at least the full
/// frame through EOF, exactly as produced by [`encode_frame`].
///
/// # Errors
///
/// * [`CanError::Truncated`] — sequence shorter than the encoded frame,
/// * [`CanError::Stuff`] — stuffing-rule violation,
/// * [`CanError::Crc`] — frame-check-sequence mismatch,
/// * [`CanError::Form`] — wrong level in SOF, delimiters or EOF.
pub fn decode_frame(bits: &[bool]) -> Result<CanFrame, CanError> {
    let mut d = Destuffer::new(bits);

    if d.next_bit()? {
        return Err(CanError::Form { field: "SOF" });
    }
    let base_id = d.next_field(11)?;
    let rtr_or_srr = d.next_bit()?;
    let ide = d.next_bit()?;

    let (id, remote) = if !ide {
        // Standard frame: r0 follows IDE.
        let _r0 = d.next_bit()?;
        let id = CanId::standard_from_raw(base_id).map_err(CanError::Frame)?;
        (id, rtr_or_srr)
    } else {
        let ext = d.next_field(18)?;
        let rtr = d.next_bit()?;
        let _r1 = d.next_bit()?;
        let _r0 = d.next_bit()?;
        let raw = (base_id << 18) | ext;
        let id = CanId::extended(raw).map_err(CanError::Frame)?;
        (id, rtr)
    };

    // Classic CAN: DLC values 9..15 denote 8 data bytes; `from_wire`
    // applies that clamp and rejects anything wider than the field.
    let dlc = Dlc::from_wire(d.next_field(4)?).map_err(CanError::Frame)?;
    let data_len = dlc.byte_len();

    let mut data = [0u8; 8];
    if !remote {
        for byte in data.iter_mut().take(data_len) {
            *byte = d.next_field(8)? as u8;
        }
    }

    let computed_crc = d.crc_value();
    let received_crc = d.next_field(15)? as u16;
    if received_crc != computed_crc {
        return Err(CanError::Crc {
            expected: received_crc,
            computed: computed_crc,
        });
    }

    // Fixed-form fields, read raw (no stuffing past the CRC sequence).
    let mut pos = d.wire_pos();
    let mut raw_bit = |field: &'static str| -> Result<bool, CanError> {
        let bit = *bits.get(pos).ok_or(CanError::Truncated {
            needed: pos + 1,
            available: bits.len(),
        })?;
        pos += 1;
        let _ = field;
        Ok(bit)
    };

    if !raw_bit("CRC delimiter")? {
        return Err(CanError::Form {
            field: "CRC delimiter",
        });
    }
    let ack_slot = raw_bit("ACK slot")?;
    if ack_slot {
        // Recessive ACK slot: nobody acknowledged.
        return Err(CanError::Ack);
    }
    if !raw_bit("ACK delimiter")? {
        return Err(CanError::Form {
            field: "ACK delimiter",
        });
    }
    for _ in 0..7 {
        if !raw_bit("EOF")? {
            return Err(CanError::Form { field: "EOF" });
        }
    }

    let frame = if remote {
        CanFrame::remote(id, dlc)
    } else {
        CanFrame::new(id, &data[..data_len]).expect("length validated")
    };
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrame, CanId, Dlc};

    fn std_frame(id: u16, payload: &[u8]) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), payload).unwrap()
    }

    #[test]
    fn stuff_inserts_after_five_equal_bits() {
        let stuffed = stuff(&[true; 5]);
        assert_eq!(stuffed, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn stuff_bit_participates_in_next_run() {
        // 5 ones -> stuff 0; then 4 more ones do NOT trigger again
        // (run restarted at the stuff bit).
        let stuffed = stuff(&[true; 9]);
        assert_eq!(stuffed.len(), 10);
        assert!(!stuffed[5]);
    }

    #[test]
    fn destuff_round_trips_random_sequences() {
        let mut state = 0x1234_5678u32;
        for _ in 0..200 {
            let mut raw = Vec::new();
            for _ in 0..97 {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                raw.push(state & 0x8000_0000 != 0);
            }
            let wire = stuff(&raw);
            assert_eq!(destuff(&wire).unwrap(), raw);
        }
    }

    #[test]
    fn destuff_rejects_six_equal_bits() {
        let err = destuff(&[true; 6]).unwrap_err();
        assert_eq!(err, CanError::Stuff { position: 5 });
    }

    #[test]
    fn encode_decode_identity_standard() {
        let f = std_frame(0x2C0, &[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33]);
        let enc = encode_frame(&f);
        assert_eq!(decode_frame(enc.bits()).unwrap(), f);
    }

    #[test]
    fn encode_decode_identity_extended() {
        let f = CanFrame::new(CanId::extended(0x1ABC_DE01).unwrap(), &[1, 2, 3]).unwrap();
        let enc = encode_frame(&f);
        assert_eq!(decode_frame(enc.bits()).unwrap(), f);
    }

    #[test]
    fn encode_decode_identity_remote() {
        let f = CanFrame::remote(CanId::standard(0x111).unwrap(), Dlc::new(5).unwrap());
        let enc = encode_frame(&f);
        assert_eq!(decode_frame(enc.bits()).unwrap(), f);
    }

    #[test]
    fn encode_decode_identity_zero_dlc() {
        let f = std_frame(0x000, &[]);
        let enc = encode_frame(&f);
        assert_eq!(decode_frame(enc.bits()).unwrap(), f);
    }

    #[test]
    fn all_zero_id_frame_has_heavy_stuffing() {
        // The DoS flood frame (ID 0x000, zero payload) maximises dominant
        // runs and therefore stuffing.
        let f = std_frame(0x000, &[0; 8]);
        let enc = encode_frame(&f);
        assert!(enc.stuff_bits() >= 15, "stuff bits = {}", enc.stuff_bits());
    }

    #[test]
    fn frame_length_bounds_standard_8_bytes() {
        // 98 stuffable + 10 fixed = 108 minimum; worst case +24 stuff bits.
        for pattern in [[0u8; 8], [0xFFu8; 8], [0xAAu8; 8], [0x55u8; 8]] {
            let f = std_frame(0x555, &pattern);
            let enc = encode_frame(&f);
            assert!(enc.len() >= 108, "len = {}", enc.len());
            assert!(enc.len() <= 132, "len = {}", enc.len());
        }
    }

    #[test]
    fn corrupted_crc_detected() {
        let f = std_frame(0x3FF, &[0x10, 0x20, 0x30]);
        let enc = encode_frame(&f);
        // Flip a payload bit inside the stuffed region (bit 40 is safely in
        // the data field for this frame and doesn't break stuffing here).
        let mut bits = enc.bits().to_vec();
        bits[30] = !bits[30];
        let err = decode_frame(&bits).unwrap_err();
        assert!(
            matches!(err, CanError::Crc { .. } | CanError::Stuff { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_stream_detected() {
        let f = std_frame(0x123, &[1, 2, 3, 4]);
        let enc = encode_frame(&f);
        let err = decode_frame(&enc.bits()[..enc.len() - 8]).unwrap_err();
        assert!(matches!(
            err,
            CanError::Truncated { .. } | CanError::Form { .. }
        ));
    }

    #[test]
    fn recessive_ack_slot_is_reported() {
        let f = std_frame(0x123, &[7; 8]);
        let enc = encode_frame(&f);
        let mut bits = enc.bits().to_vec();
        // ACK slot sits right after the CRC delimiter.
        let ack_pos = enc.stuffed_region_len() + 1;
        bits[ack_pos] = true;
        assert_eq!(decode_frame(&bits).unwrap_err(), CanError::Ack);
    }

    #[test]
    fn broken_eof_is_a_form_error() {
        let f = std_frame(0x123, &[7; 2]);
        let enc = encode_frame(&f);
        let mut bits = enc.bits().to_vec();
        let last = bits.len() - 1;
        bits[last] = false;
        assert_eq!(
            decode_frame(&bits).unwrap_err(),
            CanError::Form { field: "EOF" }
        );
    }

    #[test]
    fn stuffed_region_len_consistent() {
        let f = std_frame(0x7FF, &[0xFF; 8]);
        let enc = encode_frame(&f);
        assert_eq!(enc.stuffed_region_len() + 10, enc.len());
        assert_eq!(enc.stuffed_region_len() - enc.stuff_bits(), 98);
    }
}
