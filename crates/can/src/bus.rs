//! Event-driven multi-node bus simulator.
//!
//! The simulator advances frame by frame: at every bus-idle point it pulls
//! the highest-priority pending frame from each attached controller,
//! resolves arbitration bitwise, computes the winner's wire duration from
//! the *encoded* bit sequence (stuff bits included) and delivers the frame
//! to every other node at end-of-frame time. Optional Bernoulli bit-error
//! injection exercises error frames, retransmission and the
//! error-confinement counters.

use crate::arbitration::arbitrate;
use crate::error::CanError;
use crate::frame::CanFrame;
use crate::node::CanController;
use crate::time::SimTime;
use crate::timing::{frame_slot_duration, Bitrate};

/// Bits occupied by an active error frame plus delimiter and intermission
/// (6-bit error flag + up to 6 echo bits + 8-bit delimiter + 3-bit IFS).
const ERROR_FRAME_BITS: u64 = 23;

/// A frame source attached to a node: the ECU application behaviour.
///
/// Implementors yield `(release_time, frame)` pairs in non-decreasing time
/// order. The bus queues each frame into the node's controller once
/// simulation time reaches `release_time`; actual wire transmission then
/// depends on arbitration.
pub trait TrafficSource {
    /// The next frame this source wants to transmit, or `None` when the
    /// source is exhausted.
    fn next_frame(&mut self) -> Option<(SimTime, CanFrame)>;
}

impl<I> TrafficSource for I
where
    I: Iterator<Item = (SimTime, CanFrame)>,
{
    fn next_frame(&mut self) -> Option<(SimTime, CanFrame)> {
        self.next()
    }
}

/// Bus-level configuration.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Nominal bitrate of the segment.
    pub bitrate: Bitrate,
    /// Per-frame probability of a bit error (0.0 disables error injection).
    pub error_rate: f64,
    /// Seed for the deterministic error-injection generator.
    pub seed: u64,
    /// Record delivered frames in the event trace.
    pub record_events: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            bitrate: Bitrate::HIGH_SPEED_500K,
            error_rate: 0.0,
            seed: 0xCA5_1D5,
            record_events: true,
        }
    }
}

/// A frame that completed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusEvent {
    /// End-of-frame time.
    pub time: SimTime,
    /// The delivered frame.
    pub frame: CanFrame,
    /// Index of the transmitting node.
    pub sender: usize,
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusStats {
    /// Frames delivered successfully.
    pub frames_delivered: u64,
    /// Error frames observed.
    pub error_frames: u64,
    /// Total wire-busy time.
    pub busy_time: SimTime,
    /// Frames dropped because a controller's TX queue was full at release.
    pub release_drops: u64,
}

impl BusStats {
    /// Bus utilisation in `[0, 1]` over the elapsed simulation time.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.busy_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

struct NodeSlot {
    controller: CanController,
    source: Option<Box<dyn TrafficSource>>,
    /// Next frame peeked from the source but not yet released.
    staged: Option<(SimTime, CanFrame)>,
}

/// The event-driven CAN bus.
///
/// # Example
///
/// ```
/// use canids_can::prelude::*;
///
/// # fn main() -> Result<(), CanError> {
/// let mut bus = Bus::new(BusConfig::default());
/// let tx = bus.add_node(CanController::default());
/// let rx = bus.add_node(CanController::default());
///
/// let frame = CanFrame::new(CanId::standard(0x42)?, &[1, 2, 3])?;
/// let schedule = vec![(SimTime::ZERO, frame)];
/// bus.attach_source(tx, Box::new(schedule.into_iter()));
///
/// bus.run_until(SimTime::from_millis(1));
/// assert_eq!(bus.controller(rx).rx_pending(), 1);
/// # Ok(())
/// # }
/// ```
pub struct Bus {
    config: BusConfig,
    nodes: Vec<NodeSlot>,
    now: SimTime,
    stats: BusStats,
    events: Vec<BusEvent>,
    rng_state: u64,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Bus {
    /// Creates an empty bus.
    pub fn new(config: BusConfig) -> Self {
        let rng_state = config.seed | 1;
        Bus {
            config,
            nodes: Vec::new(),
            now: SimTime::ZERO,
            stats: BusStats::default(),
            events: Vec::new(),
            rng_state,
        }
    }

    /// Attaches a controller as a new node; returns its node index.
    pub fn add_node(&mut self, controller: CanController) -> usize {
        self.nodes.push(NodeSlot {
            controller,
            source: None,
            staged: None,
        });
        self.nodes.len() - 1
    }

    /// Attaches (or replaces) the traffic source of a node.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn attach_source(&mut self, node: usize, mut source: Box<dyn TrafficSource>) {
        let staged = source.next_frame();
        let slot = &mut self.nodes[node];
        slot.source = Some(source);
        slot.staged = staged;
    }

    /// Shared access to a node's controller.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn controller(&self, node: usize) -> &CanController {
        &self.nodes[node].controller
    }

    /// Exclusive access to a node's controller (e.g. to drain its RX FIFO).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn controller_mut(&mut self, node: usize) -> &mut CanController {
        &mut self.nodes[node].controller
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Drains the recorded frame-delivery trace.
    pub fn take_events(&mut self) -> Vec<BusEvent> {
        std::mem::take(&mut self.events)
    }

    fn next_bernoulli(&mut self) -> f64 {
        // xorshift64*; deterministic and cheap.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let mantissa = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        mantissa as f64 / (1u64 << 53) as f64
    }

    /// Releases staged source frames whose time has come into the
    /// corresponding controllers. A full TX queue stalls the source (the
    /// application retries on the next idle point, as a blocked ECU task
    /// would); a bus-off controller drops the frame.
    fn release_staged(&mut self) {
        for slot in &mut self.nodes {
            loop {
                match slot.staged {
                    Some((t, frame)) if t <= self.now => {
                        match slot.controller.queue_tx(frame) {
                            Ok(()) => {
                                slot.staged = slot.source.as_mut().and_then(|s| s.next_frame());
                            }
                            Err(CanError::TxQueueFull) => break, // stall the source
                            Err(CanError::BusOff) => {
                                self.stats.release_drops += 1;
                                slot.staged = slot.source.as_mut().and_then(|s| s.next_frame());
                            }
                            Err(_) => unreachable!("queue_tx returns only queue/bus-off errors"),
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    /// Earliest staged release time across all sources.
    fn next_release(&self) -> Option<SimTime> {
        self.nodes
            .iter()
            .filter_map(|s| s.staged.map(|(t, _)| t))
            .min()
    }

    /// Runs the simulation until `end` (frames starting before `end` run to
    /// completion, so [`Bus::now`] may end slightly past `end`).
    pub fn run_until(&mut self, end: SimTime) {
        while self.now < end {
            self.release_staged();

            // Collect arbitration contenders: head frame per ready node.
            let mut contenders: Vec<(usize, CanFrame)> = Vec::new();
            for (i, slot) in self.nodes.iter().enumerate() {
                if slot.controller.error_state() == crate::node::ErrorState::BusOff {
                    continue;
                }
                if let Some(frame) = slot.controller.peek_tx() {
                    contenders.push((i, *frame));
                }
            }

            if contenders.is_empty() {
                match self.next_release() {
                    Some(t) if t < end => {
                        self.now = t.max(self.now + SimTime::from_nanos(1));
                    }
                    _ => {
                        self.now = end;
                        break;
                    }
                }
                continue;
            }

            let frames: Vec<CanFrame> = contenders.iter().map(|(_, f)| *f).collect();
            let widx = arbitrate(&frames).expect("contenders is non-empty");
            let (winner_node, frame) = contenders[widx];

            for &(node, _) in contenders.iter().filter(|(n, _)| *n != winner_node) {
                self.nodes[node].controller.on_arbitration_loss();
            }

            let slot_dur = frame_slot_duration(&frame, self.config.bitrate);
            let inject_error =
                self.config.error_rate > 0.0 && self.next_bernoulli() < self.config.error_rate;

            if inject_error {
                // Error frame: wire occupied for a partial frame plus the
                // error flag/delimiter; the frame stays queued for retry.
                let error_dur = slot_dur + self.config.bitrate.bit_time().mul_u64(ERROR_FRAME_BITS);
                self.stats.error_frames += 1;
                self.stats.busy_time += error_dur;
                self.nodes[winner_node].controller.on_tx_error();
                for (i, slot) in self.nodes.iter_mut().enumerate() {
                    if i != winner_node {
                        slot.controller.on_rx_error();
                    }
                }
                self.now += error_dur;
                continue;
            }

            let eof_time = self.now + slot_dur;
            let sent = self.nodes[winner_node]
                .controller
                .pop_tx()
                .expect("winner had a pending frame");
            debug_assert_eq!(sent, frame);
            self.nodes[winner_node].controller.on_tx_success();

            let self_reception = self.nodes[winner_node].controller.config().self_reception;
            for (i, slot) in self.nodes.iter_mut().enumerate() {
                if i != winner_node || self_reception {
                    slot.controller.on_rx(eof_time, frame);
                }
            }

            self.stats.frames_delivered += 1;
            self.stats.busy_time += slot_dur;
            if self.config.record_events {
                self.events.push(BusEvent {
                    time: eof_time,
                    frame,
                    sender: winner_node,
                });
            }
            self.now = eof_time;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrame, CanId};
    use crate::node::{ControllerConfig, ErrorState};

    fn sf(id: u16, payload: &[u8]) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), payload).unwrap()
    }

    fn periodic(id: u16, period_us: u64, count: usize) -> Box<dyn TrafficSource> {
        let frames: Vec<(SimTime, CanFrame)> = (0..count)
            .map(|i| {
                (
                    SimTime::from_micros(period_us * i as u64),
                    sf(id, &[i.to_le_bytes()[0]]),
                )
            })
            .collect();
        Box::new(frames.into_iter())
    }

    #[test]
    fn single_sender_delivers_to_all_receivers() {
        let mut bus = Bus::new(BusConfig::default());
        let tx = bus.add_node(CanController::default());
        let rx1 = bus.add_node(CanController::default());
        let rx2 = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x100, 1_000, 5));
        bus.run_until(SimTime::from_millis(10));
        assert_eq!(bus.controller(rx1).rx_pending(), 5);
        assert_eq!(bus.controller(rx2).rx_pending(), 5);
        assert_eq!(bus.controller(tx).rx_pending(), 0, "no self reception");
        assert_eq!(bus.stats().frames_delivered, 5);
    }

    #[test]
    fn events_are_timestamped_in_order() {
        let mut bus = Bus::new(BusConfig::default());
        let tx = bus.add_node(CanController::default());
        let _rx = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x200, 500, 20));
        bus.run_until(SimTime::from_millis(50));
        let events = bus.take_events();
        assert_eq!(events.len(), 20);
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn arbitration_favours_lower_id_under_contention() {
        // Two nodes release at the same instant; the lower ID must always
        // win the first slot.
        let mut bus = Bus::new(BusConfig::default());
        let hi = bus.add_node(CanController::default());
        let lo = bus.add_node(CanController::default());
        let _rx = bus.add_node(CanController::default());
        bus.attach_source(hi, periodic(0x700, 0, 1));
        bus.attach_source(lo, periodic(0x001, 0, 1));
        bus.run_until(SimTime::from_millis(2));
        let events = bus.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].frame.id().raw(), 0x001);
        assert_eq!(events[0].sender, lo);
        assert!(bus.controller(hi).stats().arbitration_losses >= 1);
    }

    #[test]
    fn dos_flood_starves_normal_traffic() {
        // A malicious node flooding ID 0x000 with zero inter-frame gap
        // monopolises the bus; normal traffic backlog grows.
        let mut bus = Bus::new(BusConfig {
            bitrate: Bitrate::HIGH_SPEED_500K,
            ..BusConfig::default()
        });
        let normal = bus.add_node(CanController::default());
        let attacker = bus.add_node(CanController::default());
        let _obs = bus.add_node(CanController::default());
        bus.attach_source(normal, periodic(0x0F0, 250, 200));
        bus.attach_source(attacker, periodic(0x000, 0, 10_000));
        bus.run_until(SimTime::from_millis(20));
        let events = bus.take_events();
        let dos = events.iter().filter(|e| e.frame.id().raw() == 0).count();
        let norm = events.len() - dos;
        assert!(dos > 10 * norm.max(1), "dos={dos} normal={norm}");
    }

    #[test]
    fn bus_utilization_bounded() {
        let mut bus = Bus::new(BusConfig::default());
        let tx = bus.add_node(CanController::default());
        let _rx = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x111, 0, 1_000));
        let horizon = SimTime::from_millis(20);
        bus.run_until(horizon);
        let u = bus.stats().utilization(bus.now());
        assert!(u > 0.95 && u <= 1.0, "u = {u}");
    }

    #[test]
    fn error_injection_triggers_retransmission() {
        // 5 % frame-error rate: the TEC random walk (+8 on error, -1 on
        // success) has negative drift, so the node stays error-active and
        // every frame is eventually delivered via retransmission.
        let mut bus = Bus::new(BusConfig {
            error_rate: 0.05,
            seed: 7,
            ..BusConfig::default()
        });
        let tx = bus.add_node(CanController::default());
        let rx = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x123, 1_000, 200));
        bus.run_until(SimTime::from_millis(500));
        assert_eq!(bus.stats().frames_delivered, 200);
        let rx_stats = bus.controller(rx).stats();
        assert_eq!(rx_stats.rx_frames + rx_stats.rx_overflows, 200);
        assert!(bus.stats().error_frames > 0);
        assert!(bus.controller(tx).stats().tx_errors > 0);
    }

    #[test]
    fn persistent_errors_drive_transmitter_bus_off() {
        let mut bus = Bus::new(BusConfig {
            error_rate: 1.0,
            ..BusConfig::default()
        });
        let tx = bus.add_node(CanController::default());
        let _rx = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x123, 0, 100));
        bus.run_until(SimTime::from_millis(100));
        assert_eq!(bus.controller(tx).error_state(), ErrorState::BusOff);
        assert_eq!(bus.stats().frames_delivered, 0);
    }

    #[test]
    fn idle_bus_advances_to_end() {
        let mut bus = Bus::new(BusConfig::default());
        let _n = bus.add_node(CanController::default());
        bus.run_until(SimTime::from_millis(5));
        assert_eq!(bus.now(), SimTime::from_millis(5));
        assert_eq!(bus.stats().frames_delivered, 0);
    }

    #[test]
    fn rx_fifo_overflow_counted_when_app_never_drains() {
        let mut bus = Bus::new(BusConfig::default());
        let tx = bus.add_node(CanController::default());
        let rx = bus.add_node(CanController::new(ControllerConfig {
            rx_fifo_depth: 4,
            ..ControllerConfig::default()
        }));
        bus.attach_source(tx, periodic(0x50, 0, 100));
        bus.run_until(SimTime::from_millis(50));
        let stats = bus.controller(rx).stats();
        assert_eq!(stats.rx_frames, 4);
        assert_eq!(stats.rx_overflows, 96);
    }

    #[test]
    fn take_events_drains() {
        let mut bus = Bus::new(BusConfig::default());
        let tx = bus.add_node(CanController::default());
        bus.attach_source(tx, periodic(0x1, 0, 3));
        bus.run_until(SimTime::from_millis(5));
        assert_eq!(bus.take_events().len(), 3);
        assert!(bus.take_events().is_empty());
    }
}
