//! Simulation time base.
//!
//! All simulators in the workspace (CAN bus, SoC, dataflow accelerator)
//! share one nanosecond-resolution monotonic time type. A `u64` nanosecond
//! counter overflows after ~584 years of simulated time, far beyond any
//! experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or span of) simulated time with nanosecond resolution.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it as a plain nanosecond count, which keeps
/// the event-driven simulators free of unit-conversion noise.
///
/// # Example
///
/// ```
/// use canids_can::time::SimTime;
///
/// let t = SimTime::from_micros(100) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 100_500);
/// assert!((t.as_micros_f64() - 100.5).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero timestamp (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time value from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time value from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time value from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time value from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the
    /// nearest nanosecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, or zero when `other > self`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// Multiplies a duration by an integer count (e.g. `bit_time * bits`).
    pub fn mul_u64(self, count: u64) -> SimTime {
        SimTime(self.0 * count)
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for SimTime {
    fn from(ns: u64) -> Self {
        SimTime(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_nanos(1).as_nanos(), 1);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimTime::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimTime::from_secs_f64(-1.0).as_nanos(), 0);
        assert_eq!(SimTime::from_secs_f64(0.000_001).as_nanos(), 1_000);
    }

    #[test]
    fn arithmetic_behaves_like_nanosecond_counts() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(1);
        assert_eq!((a + b).as_nanos(), 4_000);
        assert_eq!((a - b).as_nanos(), 2_000);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 4_000);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 4);
    }

    #[test]
    fn min_max_order() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn mul_u64_scales_durations() {
        let bit = SimTime::from_nanos(1_000);
        assert_eq!(bit.mul_u64(111).as_nanos(), 111_000);
    }
}
