//! CSMA/CR identifier arbitration.
//!
//! When several controllers start transmitting in the same bit slot, the
//! bus resolves the collision bitwise: a dominant (0) bit overwrites a
//! recessive (1) bit, so the frame whose arbitration field has the first
//! dominant bit where others are recessive wins, without destroying it.
//!
//! The arbitration field covers the identifier plus the RTR/SRR/IDE bits,
//! which gives the full ordering: lower identifier wins; for an equal
//! 11-bit prefix a standard data frame beats the standard remote frame and
//! both beat extended frames; extended data beats extended remote.

use crate::frame::{CanFrame, CanId};

/// The on-wire arbitration field of a frame, as a comparable bit sequence.
///
/// Ordering matches bus priority: the `Ord::cmp` minimum is the arbitration
/// winner.
///
/// # Example
///
/// ```
/// use canids_can::arbitration::ArbitrationField;
/// use canids_can::frame::{CanFrame, CanId};
///
/// let hi = CanFrame::new(CanId::standard(0x000)?, &[])?;
/// let lo = CanFrame::new(CanId::standard(0x001)?, &[])?;
/// assert!(ArbitrationField::of(&hi) < ArbitrationField::of(&lo));
/// # Ok::<(), canids_can::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArbitrationField {
    bits: Vec<bool>,
}

impl ArbitrationField {
    /// Extracts the arbitration bit sequence of a frame.
    pub fn of(frame: &CanFrame) -> Self {
        let mut bits = Vec::with_capacity(32);
        match frame.id() {
            CanId::Standard(id) => {
                for i in (0..11).rev() {
                    bits.push((id >> i) & 1 == 1);
                }
                bits.push(frame.is_remote()); // RTR
                bits.push(false); // IDE = 0
            }
            CanId::Extended(id) => {
                let base = (id >> 18) & 0x7FF;
                for i in (0..11).rev() {
                    bits.push((base >> i) & 1 == 1);
                }
                bits.push(true); // SRR (recessive)
                bits.push(true); // IDE = 1
                for i in (0..18).rev() {
                    bits.push((id >> i) & 1 == 1);
                }
                bits.push(frame.is_remote()); // RTR
            }
        }
        ArbitrationField { bits }
    }

    /// The raw arbitration bits (dominant = `false`).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

/// Returns the index of the frame that wins arbitration among `contenders`.
///
/// Returns `None` for an empty slice. Ties (identical arbitration fields)
/// resolve to the lowest index; on a real bus two nodes transmitting the
/// same identifier simultaneously would cause a bit error — the simulator's
/// [`crate::bus::Bus`] counts this case separately.
///
/// # Example
///
/// ```
/// use canids_can::arbitration::arbitrate;
/// use canids_can::frame::{CanFrame, CanId};
///
/// let a = CanFrame::new(CanId::standard(0x3A0)?, &[])?;
/// let dos = CanFrame::new(CanId::standard(0x000)?, &[])?; // flood frame
/// assert_eq!(arbitrate(&[a, dos]), Some(1));
/// # Ok::<(), canids_can::FrameError>(())
/// ```
pub fn arbitrate(contenders: &[CanFrame]) -> Option<usize> {
    contenders
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| ArbitrationField::of(a).cmp(&ArbitrationField::of(b)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CanFrame, CanId, Dlc};

    fn sf(id: u16) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[]).unwrap()
    }

    fn ef(id: u32) -> CanFrame {
        CanFrame::new(CanId::extended(id).unwrap(), &[]).unwrap()
    }

    #[test]
    fn lower_id_wins() {
        assert_eq!(arbitrate(&[sf(0x100), sf(0x0FF), sf(0x700)]), Some(1));
    }

    #[test]
    fn zero_id_always_wins() {
        // The DoS attack exploits exactly this property.
        let frames = [sf(0x001), sf(0x7FF), sf(0x000), sf(0x100)];
        assert_eq!(arbitrate(&frames), Some(2));
    }

    #[test]
    fn data_frame_beats_remote_frame_same_id() {
        let data = sf(0x123);
        let remote = CanFrame::remote(CanId::standard(0x123).unwrap(), Dlc::new(0).unwrap());
        assert_eq!(arbitrate(&[remote, data]), Some(1));
    }

    #[test]
    fn standard_beats_extended_with_same_base() {
        // Same 11-bit prefix: the standard frame's IDE bit is dominant.
        let s = sf(0x123);
        let e = ef(0x123 << 18);
        assert_eq!(arbitrate(&[e, s]), Some(1));
    }

    #[test]
    fn extended_ordering_uses_extension_bits() {
        let a = ef((0x100 << 18) | 5);
        let b = ef((0x100 << 18) | 9);
        assert_eq!(arbitrate(&[b, a]), Some(1));
    }

    #[test]
    fn empty_slice_has_no_winner() {
        assert_eq!(arbitrate(&[]), None);
    }

    #[test]
    fn tie_resolves_to_first() {
        assert_eq!(arbitrate(&[sf(0x42), sf(0x42)]), Some(0));
    }

    #[test]
    fn winner_is_global_minimum() {
        let mut frames = Vec::new();
        for i in 0..32u16 {
            frames.push(sf((i * 37 + 11) & 0x7FF));
        }
        let w = arbitrate(&frames).unwrap();
        let min_id = frames.iter().map(|f| f.id().raw()).min().unwrap();
        assert_eq!(frames[w].id().raw(), min_id);
    }
}
