//! CAN gateway: frame forwarding between bus segments.
//!
//! Figure 1 of the paper shows a central gateway joining the high-speed
//! (powertrain/chassis) and low-speed (body/comfort) CAN segments. The
//! gateway forwards selected identifiers between segments, re-queuing
//! them for arbitration on the far side — which is also why an IDS on
//! one segment sees traffic that originated on the other.

use crate::bus::{Bus, BusEvent};
use crate::filter::FilterBank;
use crate::frame::CanFrame;
use crate::node::CanController;
use crate::time::SimTime;
use crate::timing::{frame_duration, frame_slot_duration, Bitrate};

/// Forwarding rule set between two segments.
#[derive(Debug, Clone, Default)]
pub struct GatewayConfig {
    /// Frames accepted from segment A towards segment B
    /// (empty bank = forward everything).
    pub a_to_b: FilterBank,
    /// Frames accepted from segment B towards segment A.
    pub b_to_a: FilterBank,
    /// Store-and-forward processing delay per frame.
    pub forward_delay: SimTime,
}

/// Forwarding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames forwarded from A to B.
    pub a_to_b: u64,
    /// Frames forwarded from B to A.
    pub b_to_a: u64,
    /// Frames dropped by the filters.
    pub filtered: u64,
}

/// A two-port store-and-forward gateway between two [`Bus`] instances.
///
/// The gateway owns a node on each segment. Driving it is cooperative:
/// run both buses for a slice of time, then call
/// [`Gateway::pump`] with the slice's events to transfer frames, and
/// repeat. (The buses advance independently; the pump granularity bounds
/// the forwarding skew, which the `forward_delay` dominates in practice.)
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    node_a: usize,
    node_b: usize,
    stats: GatewayStats,
}

impl Gateway {
    /// Attaches gateway nodes to both segments.
    pub fn attach(bus_a: &mut Bus, bus_b: &mut Bus, config: GatewayConfig) -> Self {
        let node_a = bus_a.add_node(CanController::default());
        let node_b = bus_b.add_node(CanController::default());
        Gateway {
            config,
            node_a,
            node_b,
            stats: GatewayStats::default(),
        }
    }

    /// The gateway's node index on segment A.
    pub fn node_a(&self) -> usize {
        self.node_a
    }

    /// The gateway's node index on segment B.
    pub fn node_b(&self) -> usize {
        self.node_b
    }

    /// Forwarding statistics so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Transfers one time slice of traffic: events observed on each
    /// segment are filtered and queued for transmission on the other.
    ///
    /// Frames the gateway itself transmitted are not re-forwarded
    /// (split-horizon), so loops cannot form.
    pub fn pump(
        &mut self,
        bus_a: &mut Bus,
        bus_b: &mut Bus,
        events_a: &[BusEvent],
        events_b: &[BusEvent],
    ) {
        let forward = |events: &[BusEvent],
                       own_node: usize,
                       filters: &FilterBank,
                       dst: &mut Bus,
                       dst_node: usize,
                       count: &mut u64,
                       filtered: &mut u64,
                       delay: SimTime| {
            let frames: Vec<(SimTime, CanFrame)> = events
                .iter()
                .filter(|e| e.sender != own_node)
                .filter(|e| {
                    let ok = filters.accepts(&e.frame);
                    if !ok {
                        *filtered += 1;
                    }
                    ok
                })
                .map(|e| (e.time + delay, e.frame))
                .collect();
            *count += frames.len() as u64;
            if !frames.is_empty() {
                dst.attach_source(dst_node, Box::new(frames.into_iter()));
            }
        };
        let mut filtered = self.stats.filtered;
        let delay = self.config.forward_delay;
        forward(
            events_a,
            self.node_a,
            &self.config.a_to_b,
            bus_b,
            self.node_b,
            &mut self.stats.a_to_b,
            &mut filtered,
            delay,
        );
        forward(
            events_b,
            self.node_b,
            &self.config.b_to_a,
            bus_a,
            self.node_a,
            &mut self.stats.b_to_a,
            &mut filtered,
            delay,
        );
        self.stats.filtered = filtered;
    }
}

/// Analytic store-and-forward latency model of one gateway port: when a
/// frame observed complete on the source segment becomes visible on a
/// destination segment.
///
/// The full [`Gateway`] + [`Bus`] pair simulates forwarding with real
/// arbitration; replay harnesses that pace thousands of frames per
/// second (the cross-ECU fleet serving backend) need the same
/// first-order facts — the store-and-forward processing delay and the
/// destination segment's serialisation — without running a second
/// event-driven bus per board. This forwarder keeps exactly that state:
/// a frame released at `arrival + delay` waits for the destination wire
/// to go idle, then occupies it for its own duration plus the
/// interframe space, so a gateway feeding a slower (or busy) segment
/// builds real queueing delay instead of broadcasting frames for free.
///
/// # Example
///
/// ```
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::gateway::SegmentForwarder;
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut fwd = SegmentForwarder::new(Bitrate::HIGH_SPEED_1M, SimTime::from_micros(20));
/// let f = CanFrame::new(CanId::standard(0x316)?, &[0u8; 8])?;
/// let delivered = fwd.forward(SimTime::from_micros(100), &f);
/// // Processing delay plus the frame's own wire time on the far side.
/// assert!(delivered >= SimTime::from_micros(120));
/// # Ok::<(), canids_can::error::FrameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SegmentForwarder {
    bitrate: Bitrate,
    delay: SimTime,
    busy_until: SimTime,
    forwarded: u64,
}

impl SegmentForwarder {
    /// A forwarder onto a destination segment running at `bitrate`, with
    /// a per-frame store-and-forward processing `delay`.
    pub fn new(bitrate: Bitrate, delay: SimTime) -> Self {
        SegmentForwarder {
            bitrate,
            delay,
            busy_until: SimTime::ZERO,
            forwarded: 0,
        }
    }

    /// Destination segment bitrate.
    pub fn bitrate(&self) -> Bitrate {
        self.bitrate
    }

    /// Frames forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Forwards a frame observed complete on the source segment at
    /// `arrival`; returns its end-of-frame time on the destination
    /// segment.
    ///
    /// Successive deliveries are strictly increasing (the destination
    /// wire serialises frames), so the output order matches the input
    /// order even when the processing delay varies upstream.
    pub fn forward(&mut self, arrival: SimTime, frame: &CanFrame) -> SimTime {
        let release = arrival + self.delay;
        let start = release.max(self.busy_until);
        let delivered = start + frame_duration(frame, self.bitrate);
        self.busy_until = start + frame_slot_duration(frame, self.bitrate);
        self.forwarded += 1;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;
    use crate::filter::AcceptanceFilter;
    use crate::frame::CanId;
    use crate::timing::Bitrate;

    fn frame(id: u16) -> CanFrame {
        let cid = CanId::standard(id).unwrap();
        CanFrame::new(cid, &[cid.low_byte()]).unwrap()
    }

    fn two_segments() -> (Bus, Bus) {
        (
            Bus::new(BusConfig {
                bitrate: Bitrate::HIGH_SPEED_500K,
                ..BusConfig::default()
            }),
            Bus::new(BusConfig {
                bitrate: Bitrate::LOW_SPEED_125K,
                ..BusConfig::default()
            }),
        )
    }

    #[test]
    fn forwards_frames_across_segments() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut gw = Gateway::attach(&mut a, &mut b, GatewayConfig::default());

        let frames = vec![
            (SimTime::ZERO, frame(0x123)),
            (SimTime::from_micros(500), frame(0x456)),
        ];
        a.attach_source(src, Box::new(frames.into_iter()));
        a.run_until(SimTime::from_millis(2));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(10));

        assert_eq!(b.controller(sink).rx_pending(), 2);
        assert_eq!(gw.stats().a_to_b, 2);
        assert_eq!(gw.stats().b_to_a, 0);
    }

    #[test]
    fn filters_restrict_forwarding() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut filters = FilterBank::new();
        filters.add(AcceptanceFilter::standard(0x7FF, 0x123));
        let mut gw = Gateway::attach(
            &mut a,
            &mut b,
            GatewayConfig {
                a_to_b: filters,
                ..GatewayConfig::default()
            },
        );

        let frames = vec![
            (SimTime::ZERO, frame(0x123)),
            (SimTime::from_micros(400), frame(0x456)),
        ];
        a.attach_source(src, Box::new(frames.into_iter()));
        a.run_until(SimTime::from_millis(2));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(10));

        assert_eq!(b.controller(sink).rx_pending(), 1);
        assert_eq!(gw.stats().a_to_b, 1);
        assert_eq!(gw.stats().filtered, 1);
    }

    #[test]
    fn split_horizon_prevents_loops() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let _sink_b = b.add_node(CanController::default());
        let mut gw = Gateway::attach(&mut a, &mut b, GatewayConfig::default());

        a.attach_source(
            src,
            Box::new(vec![(SimTime::ZERO, frame(0x100))].into_iter()),
        );
        a.run_until(SimTime::from_millis(1));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(5));
        let ev_b = b.take_events();
        // The only frame on B was sent by the gateway itself: it must not
        // bounce back to A.
        gw.pump(&mut a, &mut b, &[], &ev_b);
        assert_eq!(gw.stats().b_to_a, 0);
        a.run_until(SimTime::from_millis(10));
        assert_eq!(gw.stats().a_to_b, 1);
    }

    #[test]
    fn segment_forwarder_adds_delay_and_wire_time() {
        let mut fwd = SegmentForwarder::new(Bitrate::HIGH_SPEED_1M, SimTime::from_micros(20));
        let f = frame(0x316);
        let t0 = SimTime::from_millis(1);
        let delivered = fwd.forward(t0, &f);
        let wire = crate::timing::frame_duration(&f, Bitrate::HIGH_SPEED_1M);
        assert_eq!(delivered, t0 + SimTime::from_micros(20) + wire);
        assert_eq!(fwd.forwarded(), 1);
    }

    #[test]
    fn segment_forwarder_serialises_bursts() {
        // Two frames arriving simultaneously cannot share the far wire:
        // the second queues behind the first's full slot.
        let mut fwd = SegmentForwarder::new(Bitrate::HIGH_SPEED_500K, SimTime::ZERO);
        let f = frame(0x100);
        let t0 = SimTime::from_micros(50);
        let first = fwd.forward(t0, &f);
        let second = fwd.forward(t0, &f);
        let slot = crate::timing::frame_slot_duration(&f, Bitrate::HIGH_SPEED_500K);
        assert_eq!(second, first + slot);
        // Strictly increasing delivery order.
        let third = fwd.forward(t0, &f);
        assert!(third > second);
    }

    #[test]
    fn segment_forwarder_matches_full_gateway_simulation() {
        // The analytic model must not undercut the event-driven gateway:
        // a frame through Gateway+Bus arrives no earlier than the
        // forwarder's first-order prediction (the full simulation adds
        // arbitration and pump-granularity skew on top).
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let delay = SimTime::from_millis(1);
        let mut gw = Gateway::attach(
            &mut a,
            &mut b,
            GatewayConfig {
                forward_delay: delay,
                ..GatewayConfig::default()
            },
        );
        a.attach_source(
            src,
            Box::new(vec![(SimTime::ZERO, frame(0x42))].into_iter()),
        );
        a.run_until(SimTime::from_millis(1));
        let ev_a = a.take_events();
        let arrival_on_a = ev_a[0].time;
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(20));
        let rx = b.controller_mut(sink).pop_rx().unwrap();

        let mut fwd = SegmentForwarder::new(Bitrate::LOW_SPEED_125K, delay);
        let predicted = fwd.forward(arrival_on_a, &frame(0x42));
        assert!(
            rx.timestamp >= predicted,
            "full sim {} earlier than analytic {predicted}",
            rx.timestamp
        );
        // And within one frame slot of it (no hidden extra latency).
        let slot = crate::timing::frame_slot_duration(&frame(0x42), Bitrate::LOW_SPEED_125K);
        assert!(rx.timestamp <= predicted + slot + slot);
    }

    #[test]
    fn forward_delay_shifts_release_times() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut gw = Gateway::attach(
            &mut a,
            &mut b,
            GatewayConfig {
                forward_delay: SimTime::from_millis(3),
                ..GatewayConfig::default()
            },
        );
        a.attach_source(
            src,
            Box::new(vec![(SimTime::ZERO, frame(0x42))].into_iter()),
        );
        a.run_until(SimTime::from_millis(1));
        let ev_a = a.take_events();
        let arrival_on_a = ev_a[0].time;
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(20));
        let rx = b.controller_mut(sink).pop_rx().unwrap();
        assert!(rx.timestamp >= arrival_on_a + SimTime::from_millis(3));
    }
}
