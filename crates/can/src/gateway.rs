//! CAN gateway: frame forwarding between bus segments.
//!
//! Figure 1 of the paper shows a central gateway joining the high-speed
//! (powertrain/chassis) and low-speed (body/comfort) CAN segments. The
//! gateway forwards selected identifiers between segments, re-queuing
//! them for arbitration on the far side — which is also why an IDS on
//! one segment sees traffic that originated on the other.

use crate::bus::{Bus, BusEvent};
use crate::filter::FilterBank;
use crate::frame::CanFrame;
use crate::node::CanController;
use crate::time::SimTime;

/// Forwarding rule set between two segments.
#[derive(Debug, Clone, Default)]
pub struct GatewayConfig {
    /// Frames accepted from segment A towards segment B
    /// (empty bank = forward everything).
    pub a_to_b: FilterBank,
    /// Frames accepted from segment B towards segment A.
    pub b_to_a: FilterBank,
    /// Store-and-forward processing delay per frame.
    pub forward_delay: SimTime,
}

/// Forwarding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames forwarded from A to B.
    pub a_to_b: u64,
    /// Frames forwarded from B to A.
    pub b_to_a: u64,
    /// Frames dropped by the filters.
    pub filtered: u64,
}

/// A two-port store-and-forward gateway between two [`Bus`] instances.
///
/// The gateway owns a node on each segment. Driving it is cooperative:
/// run both buses for a slice of time, then call
/// [`Gateway::pump`] with the slice's events to transfer frames, and
/// repeat. (The buses advance independently; the pump granularity bounds
/// the forwarding skew, which the `forward_delay` dominates in practice.)
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    node_a: usize,
    node_b: usize,
    stats: GatewayStats,
}

impl Gateway {
    /// Attaches gateway nodes to both segments.
    pub fn attach(bus_a: &mut Bus, bus_b: &mut Bus, config: GatewayConfig) -> Self {
        let node_a = bus_a.add_node(CanController::default());
        let node_b = bus_b.add_node(CanController::default());
        Gateway {
            config,
            node_a,
            node_b,
            stats: GatewayStats::default(),
        }
    }

    /// The gateway's node index on segment A.
    pub fn node_a(&self) -> usize {
        self.node_a
    }

    /// The gateway's node index on segment B.
    pub fn node_b(&self) -> usize {
        self.node_b
    }

    /// Forwarding statistics so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Transfers one time slice of traffic: events observed on each
    /// segment are filtered and queued for transmission on the other.
    ///
    /// Frames the gateway itself transmitted are not re-forwarded
    /// (split-horizon), so loops cannot form.
    pub fn pump(
        &mut self,
        bus_a: &mut Bus,
        bus_b: &mut Bus,
        events_a: &[BusEvent],
        events_b: &[BusEvent],
    ) {
        let forward = |events: &[BusEvent],
                       own_node: usize,
                       filters: &FilterBank,
                       dst: &mut Bus,
                       dst_node: usize,
                       count: &mut u64,
                       filtered: &mut u64,
                       delay: SimTime| {
            let frames: Vec<(SimTime, CanFrame)> = events
                .iter()
                .filter(|e| e.sender != own_node)
                .filter(|e| {
                    let ok = filters.accepts(&e.frame);
                    if !ok {
                        *filtered += 1;
                    }
                    ok
                })
                .map(|e| (e.time + delay, e.frame))
                .collect();
            *count += frames.len() as u64;
            if !frames.is_empty() {
                dst.attach_source(dst_node, Box::new(frames.into_iter()));
            }
        };
        let mut filtered = self.stats.filtered;
        let delay = self.config.forward_delay;
        forward(
            events_a,
            self.node_a,
            &self.config.a_to_b,
            bus_b,
            self.node_b,
            &mut self.stats.a_to_b,
            &mut filtered,
            delay,
        );
        forward(
            events_b,
            self.node_b,
            &self.config.b_to_a,
            bus_a,
            self.node_a,
            &mut self.stats.b_to_a,
            &mut filtered,
            delay,
        );
        self.stats.filtered = filtered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;
    use crate::filter::AcceptanceFilter;
    use crate::frame::CanId;
    use crate::timing::Bitrate;

    fn frame(id: u16) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[id as u8]).unwrap()
    }

    fn two_segments() -> (Bus, Bus) {
        (
            Bus::new(BusConfig {
                bitrate: Bitrate::HIGH_SPEED_500K,
                ..BusConfig::default()
            }),
            Bus::new(BusConfig {
                bitrate: Bitrate::LOW_SPEED_125K,
                ..BusConfig::default()
            }),
        )
    }

    #[test]
    fn forwards_frames_across_segments() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut gw = Gateway::attach(&mut a, &mut b, GatewayConfig::default());

        let frames = vec![
            (SimTime::ZERO, frame(0x123)),
            (SimTime::from_micros(500), frame(0x456)),
        ];
        a.attach_source(src, Box::new(frames.into_iter()));
        a.run_until(SimTime::from_millis(2));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(10));

        assert_eq!(b.controller(sink).rx_pending(), 2);
        assert_eq!(gw.stats().a_to_b, 2);
        assert_eq!(gw.stats().b_to_a, 0);
    }

    #[test]
    fn filters_restrict_forwarding() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut filters = FilterBank::new();
        filters.add(AcceptanceFilter::standard(0x7FF, 0x123));
        let mut gw = Gateway::attach(
            &mut a,
            &mut b,
            GatewayConfig {
                a_to_b: filters,
                ..GatewayConfig::default()
            },
        );

        let frames = vec![
            (SimTime::ZERO, frame(0x123)),
            (SimTime::from_micros(400), frame(0x456)),
        ];
        a.attach_source(src, Box::new(frames.into_iter()));
        a.run_until(SimTime::from_millis(2));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(10));

        assert_eq!(b.controller(sink).rx_pending(), 1);
        assert_eq!(gw.stats().a_to_b, 1);
        assert_eq!(gw.stats().filtered, 1);
    }

    #[test]
    fn split_horizon_prevents_loops() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let _sink_b = b.add_node(CanController::default());
        let mut gw = Gateway::attach(&mut a, &mut b, GatewayConfig::default());

        a.attach_source(
            src,
            Box::new(vec![(SimTime::ZERO, frame(0x100))].into_iter()),
        );
        a.run_until(SimTime::from_millis(1));
        let ev_a = a.take_events();
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(5));
        let ev_b = b.take_events();
        // The only frame on B was sent by the gateway itself: it must not
        // bounce back to A.
        gw.pump(&mut a, &mut b, &[], &ev_b);
        assert_eq!(gw.stats().b_to_a, 0);
        a.run_until(SimTime::from_millis(10));
        assert_eq!(gw.stats().a_to_b, 1);
    }

    #[test]
    fn forward_delay_shifts_release_times() {
        let (mut a, mut b) = two_segments();
        let src = a.add_node(CanController::default());
        let sink = b.add_node(CanController::default());
        let mut gw = Gateway::attach(
            &mut a,
            &mut b,
            GatewayConfig {
                forward_delay: SimTime::from_millis(3),
                ..GatewayConfig::default()
            },
        );
        a.attach_source(
            src,
            Box::new(vec![(SimTime::ZERO, frame(0x42))].into_iter()),
        );
        a.run_until(SimTime::from_millis(1));
        let ev_a = a.take_events();
        let arrival_on_a = ev_a[0].time;
        gw.pump(&mut a, &mut b, &ev_a, &[]);
        b.run_until(SimTime::from_millis(20));
        let rx = b.controller_mut(sink).pop_rx().unwrap();
        assert!(rx.timestamp >= arrival_on_a + SimTime::from_millis(3));
    }
}
