//! CAN controller model: TX priority queue, RX FIFO, acceptance filtering
//! and the ISO 11898-1 error-confinement state machine.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::arbitration::ArbitrationField;
use crate::error::CanError;
use crate::filter::FilterBank;
use crate::frame::CanFrame;
use crate::time::SimTime;

/// Error-confinement state (ISO 11898-1 §12.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorState {
    /// Normal operation; sends active (dominant) error flags.
    ErrorActive,
    /// TEC or REC exceeded 127; sends passive error flags.
    ErrorPassive,
    /// TEC exceeded 255; the controller has disconnected from the bus.
    BusOff,
}

/// Static controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hardware receive FIFO depth in frames (Xilinx CANPS: 64).
    pub rx_fifo_depth: usize,
    /// Transmit queue depth in frames.
    pub tx_queue_depth: usize,
    /// Acceptance filters (empty bank = accept everything).
    pub filters: FilterBank,
    /// When `true` the controller receives its own transmissions
    /// (loopback/snoop mode — not used by normal ECUs).
    pub self_reception: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            rx_fifo_depth: 64,
            tx_queue_depth: 16,
            filters: FilterBank::new(),
            self_reception: false,
        }
    }
}

/// Running counters exposed for diagnostics and the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Frames successfully transmitted.
    pub tx_frames: u64,
    /// Frames accepted into the RX FIFO.
    pub rx_frames: u64,
    /// Frames rejected by the acceptance filters.
    pub rx_filtered: u64,
    /// Frames lost to RX FIFO overflow.
    pub rx_overflows: u64,
    /// Transmission attempts that lost arbitration.
    pub arbitration_losses: u64,
    /// Transmit errors (bit/ack errors on the wire).
    pub tx_errors: u64,
    /// Receive errors observed.
    pub rx_errors: u64,
    /// Frames refused because the TX queue was full.
    pub tx_drops: u64,
}

/// A timestamped received frame, as popped from the RX FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxFrame {
    /// Bus time at which the frame completed (end of EOF).
    pub timestamp: SimTime,
    /// The received frame.
    pub frame: CanFrame,
}

/// A CAN protocol controller attached to one bus node.
///
/// The controller is driven by [`crate::bus::Bus`]: the bus pulls the
/// highest-priority pending frame for arbitration and pushes received
/// frames in. Application code interacts through [`queue_tx`] and
/// [`pop_rx`].
///
/// [`queue_tx`]: CanController::queue_tx
/// [`pop_rx`]: CanController::pop_rx
///
/// # Example
///
/// ```
/// use canids_can::node::{CanController, ControllerConfig};
/// use canids_can::frame::{CanFrame, CanId};
///
/// let mut ctrl = CanController::new(ControllerConfig::default());
/// ctrl.queue_tx(CanFrame::new(CanId::standard(0x316)?, &[1, 2])?)?;
/// assert!(ctrl.peek_tx().is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CanController {
    config: ControllerConfig,
    tx_queue: Vec<CanFrame>,
    rx_fifo: VecDeque<RxFrame>,
    tec: u32,
    rec: u32,
    stats: ControllerStats,
}

impl CanController {
    /// Creates a controller in the error-active state.
    pub fn new(config: ControllerConfig) -> Self {
        CanController {
            config,
            tx_queue: Vec::new(),
            rx_fifo: VecDeque::new(),
            tec: 0,
            rec: 0,
            stats: ControllerStats::default(),
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Current error-confinement state derived from TEC/REC.
    pub fn error_state(&self) -> ErrorState {
        if self.tec > 255 {
            ErrorState::BusOff
        } else if self.tec > 127 || self.rec > 127 {
            ErrorState::ErrorPassive
        } else {
            ErrorState::ErrorActive
        }
    }

    /// Transmit error counter.
    pub fn tec(&self) -> u32 {
        self.tec
    }

    /// Receive error counter.
    pub fn rec(&self) -> u32 {
        self.rec
    }

    /// Statistics counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Queues a frame for transmission.
    ///
    /// # Errors
    ///
    /// * [`CanError::BusOff`] when the controller is bus-off,
    /// * [`CanError::TxQueueFull`] when the TX queue is at capacity (the
    ///   drop is also counted in [`ControllerStats::tx_drops`]).
    pub fn queue_tx(&mut self, frame: CanFrame) -> Result<(), CanError> {
        if self.error_state() == ErrorState::BusOff {
            return Err(CanError::BusOff);
        }
        if self.tx_queue.len() >= self.config.tx_queue_depth {
            self.stats.tx_drops += 1;
            return Err(CanError::TxQueueFull);
        }
        self.tx_queue.push(frame);
        Ok(())
    }

    /// The highest-priority frame waiting for transmission, if any.
    pub fn peek_tx(&self) -> Option<&CanFrame> {
        self.tx_queue
            .iter()
            .min_by(|a, b| ArbitrationField::of(a).cmp(&ArbitrationField::of(b)))
    }

    /// Removes and returns the highest-priority pending frame.
    pub fn pop_tx(&mut self) -> Option<CanFrame> {
        let idx = self
            .tx_queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| ArbitrationField::of(a).cmp(&ArbitrationField::of(b)))
            .map(|(i, _)| i)?;
        Some(self.tx_queue.swap_remove(idx))
    }

    /// Number of frames waiting for transmission.
    pub fn tx_pending(&self) -> usize {
        self.tx_queue.len()
    }

    /// Called by the bus when this node's frame completed successfully.
    pub fn on_tx_success(&mut self) {
        self.tec = self.tec.saturating_sub(1);
        self.stats.tx_frames += 1;
    }

    /// Called by the bus when this node's transmission hit an error
    /// (bit error / no acknowledgement). TEC increases by 8 per the spec.
    pub fn on_tx_error(&mut self) {
        self.tec += 8;
        self.stats.tx_errors += 1;
    }

    /// Called by the bus when this node lost arbitration this slot.
    pub fn on_arbitration_loss(&mut self) {
        self.stats.arbitration_losses += 1;
    }

    /// Called by the bus to deliver a frame that completed at `timestamp`.
    /// Applies acceptance filtering and FIFO overflow policy (newest frame
    /// dropped on overflow, like the CANPS hardware FIFO).
    pub fn on_rx(&mut self, timestamp: SimTime, frame: CanFrame) {
        if !self.config.filters.accepts(&frame) {
            self.stats.rx_filtered += 1;
            return;
        }
        if self.rx_fifo.len() >= self.config.rx_fifo_depth {
            self.stats.rx_overflows += 1;
            return;
        }
        self.rec = self.rec.saturating_sub(1);
        self.rx_fifo.push_back(RxFrame { timestamp, frame });
        self.stats.rx_frames += 1;
    }

    /// Called by the bus when this node observed a receive error.
    pub fn on_rx_error(&mut self) {
        self.rec += 1;
        self.stats.rx_errors += 1;
    }

    /// Pops the oldest received frame, if any.
    pub fn pop_rx(&mut self) -> Option<RxFrame> {
        self.rx_fifo.pop_front()
    }

    /// Number of frames waiting in the RX FIFO.
    pub fn rx_pending(&self) -> usize {
        self.rx_fifo.len()
    }

    /// Bus-off recovery: re-initialises the error counters after the
    /// mandated 128 × 11 recessive bit sequence (timed by the caller).
    pub fn recover_from_bus_off(&mut self) {
        self.tec = 0;
        self.rec = 0;
    }
}

impl Default for CanController {
    fn default() -> Self {
        CanController::new(ControllerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::AcceptanceFilter;
    use crate::frame::{CanFrame, CanId};

    fn sf(id: u16) -> CanFrame {
        CanFrame::new(CanId::standard(id).unwrap(), &[0xAA]).unwrap()
    }

    #[test]
    fn pop_tx_returns_highest_priority() {
        let mut c = CanController::default();
        c.queue_tx(sf(0x300)).unwrap();
        c.queue_tx(sf(0x100)).unwrap();
        c.queue_tx(sf(0x200)).unwrap();
        assert_eq!(c.pop_tx().unwrap().id().raw(), 0x100);
        assert_eq!(c.pop_tx().unwrap().id().raw(), 0x200);
        assert_eq!(c.pop_tx().unwrap().id().raw(), 0x300);
        assert!(c.pop_tx().is_none());
    }

    #[test]
    fn tx_queue_depth_enforced() {
        let mut c = CanController::new(ControllerConfig {
            tx_queue_depth: 2,
            ..ControllerConfig::default()
        });
        c.queue_tx(sf(1)).unwrap();
        c.queue_tx(sf(2)).unwrap();
        assert_eq!(c.queue_tx(sf(3)).unwrap_err(), CanError::TxQueueFull);
        assert_eq!(c.stats().tx_drops, 1);
    }

    #[test]
    fn rx_fifo_overflow_drops_newest() {
        let mut c = CanController::new(ControllerConfig {
            rx_fifo_depth: 2,
            ..ControllerConfig::default()
        });
        c.on_rx(SimTime::from_micros(1), sf(0x10));
        c.on_rx(SimTime::from_micros(2), sf(0x20));
        c.on_rx(SimTime::from_micros(3), sf(0x30));
        assert_eq!(c.stats().rx_overflows, 1);
        assert_eq!(c.pop_rx().unwrap().frame.id().raw(), 0x10);
        assert_eq!(c.pop_rx().unwrap().frame.id().raw(), 0x20);
        assert!(c.pop_rx().is_none());
    }

    #[test]
    fn filters_reject_before_fifo() {
        let mut filters = FilterBank::new();
        filters.add(AcceptanceFilter::standard(0x7FF, 0x100));
        let mut c = CanController::new(ControllerConfig {
            filters,
            ..ControllerConfig::default()
        });
        c.on_rx(SimTime::ZERO, sf(0x100));
        c.on_rx(SimTime::ZERO, sf(0x200));
        assert_eq!(c.rx_pending(), 1);
        assert_eq!(c.stats().rx_filtered, 1);
    }

    #[test]
    fn error_state_transitions() {
        let mut c = CanController::default();
        assert_eq!(c.error_state(), ErrorState::ErrorActive);
        for _ in 0..16 {
            c.on_tx_error(); // +8 each
        }
        assert_eq!(c.tec(), 128);
        assert_eq!(c.error_state(), ErrorState::ErrorPassive);
        for _ in 0..16 {
            c.on_tx_error();
        }
        assert_eq!(c.error_state(), ErrorState::BusOff);
        assert_eq!(c.queue_tx(sf(1)).unwrap_err(), CanError::BusOff);
        c.recover_from_bus_off();
        assert_eq!(c.error_state(), ErrorState::ErrorActive);
        assert!(c.queue_tx(sf(1)).is_ok());
    }

    #[test]
    fn successful_tx_decrements_tec() {
        let mut c = CanController::default();
        c.on_tx_error();
        assert_eq!(c.tec(), 8);
        c.on_tx_success();
        assert_eq!(c.tec(), 7);
    }

    #[test]
    fn rx_success_decrements_rec() {
        let mut c = CanController::default();
        c.on_rx_error();
        c.on_rx_error();
        assert_eq!(c.rec(), 2);
        c.on_rx(SimTime::ZERO, sf(0x1));
        assert_eq!(c.rec(), 1);
    }

    #[test]
    fn rx_frames_carry_timestamps() {
        let mut c = CanController::default();
        let t = SimTime::from_micros(123);
        c.on_rx(t, sf(0x42));
        let rx = c.pop_rx().unwrap();
        assert_eq!(rx.timestamp, t);
        assert_eq!(rx.frame.id().raw(), 0x42);
    }
}
