//! Property-based tests of the CAN bit codec: the encode/decode identity
//! and the stuffing round-trip must hold for *every* representable frame.

use canids_can::bits::{decode_frame, destuff, encode_frame, stuff};
use canids_can::crc::crc15;
use canids_can::frame::{CanFrame, CanId, Dlc};
use canids_can::timing::{frame_bit_count, worst_case_stuff_bits};
use proptest::prelude::*;

fn arb_standard_frame() -> impl Strategy<Value = CanFrame> {
    (0u16..=0x7FF, proptest::collection::vec(any::<u8>(), 0..=8)).prop_map(|(id, payload)| {
        CanFrame::new(CanId::standard(id).expect("masked"), &payload).expect("len <= 8")
    })
}

fn arb_extended_frame() -> impl Strategy<Value = CanFrame> {
    (
        0u32..=0x1FFF_FFFF,
        proptest::collection::vec(any::<u8>(), 0..=8),
    )
        .prop_map(|(id, payload)| {
            CanFrame::new(CanId::extended(id).expect("masked"), &payload).expect("len <= 8")
        })
}

fn arb_remote_frame() -> impl Strategy<Value = CanFrame> {
    (0u16..=0x7FF, 0u8..=8).prop_map(|(id, dlc)| {
        CanFrame::remote(
            CanId::standard(id).expect("masked"),
            Dlc::new(dlc).expect("<= 8"),
        )
    })
}

proptest! {
    #[test]
    fn encode_decode_identity_standard(frame in arb_standard_frame()) {
        let enc = encode_frame(&frame);
        prop_assert_eq!(decode_frame(enc.bits()).unwrap(), frame);
    }

    #[test]
    fn encode_decode_identity_extended(frame in arb_extended_frame()) {
        let enc = encode_frame(&frame);
        prop_assert_eq!(decode_frame(enc.bits()).unwrap(), frame);
    }

    #[test]
    fn encode_decode_identity_remote(frame in arb_remote_frame()) {
        let enc = encode_frame(&frame);
        prop_assert_eq!(decode_frame(enc.bits()).unwrap(), frame);
    }

    #[test]
    fn stuffing_round_trips(raw in proptest::collection::vec(any::<bool>(), 0..256)) {
        let wire = stuff(&raw);
        prop_assert_eq!(destuff(&wire).unwrap(), raw);
    }

    #[test]
    fn stuffed_stream_never_has_six_equal_bits(
        raw in proptest::collection::vec(any::<bool>(), 0..256)
    ) {
        let wire = stuff(&raw);
        for w in wire.windows(6) {
            prop_assert!(!w.iter().all(|&b| b) && !w.iter().all(|&b| !b),
                "six equal bits survived stuffing");
        }
    }

    #[test]
    fn frame_length_within_worst_case(frame in arb_standard_frame()) {
        let enc = encode_frame(&frame);
        let stuffable = 1 + 11 + 1 + 1 + 1 + 4 + 8 * frame.dlc().byte_len() + 15;
        let max = stuffable + worst_case_stuff_bits(stuffable) + 10;
        prop_assert!(enc.len() >= stuffable + 10);
        prop_assert!(enc.len() <= max, "{} > {max}", enc.len());
        prop_assert_eq!(frame_bit_count(&frame), enc.len());
    }

    #[test]
    fn crc_is_linear_over_xor(
        a in proptest::collection::vec(any::<bool>(), 64),
        b in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let x: Vec<bool> = a.iter().zip(&b).map(|(&p, &q)| p ^ q).collect();
        prop_assert_eq!(crc15(&x), crc15(&a) ^ crc15(&b));
    }

    #[test]
    fn single_bit_corruption_never_decodes_to_the_same_frame(
        frame in arb_standard_frame(),
        flip in 0usize..98,
    ) {
        let enc = encode_frame(&frame);
        // Flip inside the stuffed region only (delimiters would be form
        // errors by construction).
        let pos = flip % enc.stuffed_region_len();
        let mut bits = enc.bits().to_vec();
        bits[pos] = !bits[pos];
        match decode_frame(&bits) {
            // Either detected (stuff/CRC/form) ...
            Err(_) => {}
            // ... or decoded to a *different* frame only if CRC collided —
            // which cannot happen for single-bit errors (Hamming distance
            // of CRC-15 is >= 2 over these lengths).
            Ok(decoded) => prop_assert_eq!(decoded, frame,
                "single-bit flip silently changed the frame"),
        }
    }
}
