pub fn mean(xs: &[f32]) -> f32 {
    // lint:allow(float-reassociation): left-to-right iterator sum, order pinned by the slice
    let total: f32 = xs.iter().sum();
    total / xs.len() as f32
}
