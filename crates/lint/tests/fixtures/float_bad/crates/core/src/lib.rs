pub fn mean(xs: &[f32]) -> f32 {
    let total: f32 = xs.iter().sum();
    total / xs.len() as f32
}
