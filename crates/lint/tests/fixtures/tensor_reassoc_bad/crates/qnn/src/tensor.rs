pub fn pinned_sum_f32(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}

pub fn dot_lanes(x: &[f32], w: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 4];
    let mut k = 0;
    while k + 4 <= x.len() {
        for l in 0..4 {
            lanes[l] += x[k + l] * w[k + l];
        }
        k += 4;
    }
    let mut tail = 0.0f32;
    while k < x.len() {
        tail += x[k] * w[k];
        k += 1;
    }
    ((lanes[0] + lanes[2]) + (lanes[1] + lanes[3])) + tail
}
