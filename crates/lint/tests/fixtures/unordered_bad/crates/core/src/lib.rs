pub fn histogram(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut m = std::collections::HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0usize) += 1;
    }
    m.into_iter().collect()
}
