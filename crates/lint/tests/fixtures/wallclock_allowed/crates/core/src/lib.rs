use std::time::Instant;

pub fn measure() -> u128 {
    // lint:allow(wallclock-in-sim): fixture exercises an audited wall-clock read
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}
