pub fn distinct(xs: &[u32]) -> usize {
    // lint:allow(unordered-iteration): membership-only set, never iterated
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}
