pub fn head(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}
