use std::time::Instant;

pub fn measure() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}
