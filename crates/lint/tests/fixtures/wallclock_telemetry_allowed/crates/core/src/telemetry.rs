// The audited shape: the telemetry shim's single wall-clock read
// carries the workspace's one wallclock-in-sim allow.
pub struct WallClock;

impl WallClock {
    pub fn start_nanos() -> u128 {
        // lint:allow(wallclock-in-sim): the single audited wall-time gate for measured paths
        let t0 = std::time::Instant::now();
        t0.elapsed().as_nanos()
    }
}
