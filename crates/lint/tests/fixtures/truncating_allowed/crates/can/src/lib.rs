pub fn wire_id(raw_id: u32) -> u16 {
    let masked_id = raw_id & 0x7FF;
    // lint:allow(truncating-cast): masked to 11 bits on the line above
    masked_id as u16
}
