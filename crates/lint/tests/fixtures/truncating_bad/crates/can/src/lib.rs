pub fn wire_id(raw_id: u32) -> u16 {
    raw_id as u16
}
