pub fn head(xs: &[u8]) -> u8 {
    // lint:allow(panic-in-lib): caller contract guarantees a non-empty slice
    *xs.first().unwrap()
}
