// A telemetry module gets no blanket exemption: a raw wall-clock read
// outside the audited WallClock shim is still a finding.
pub struct WallClock;

impl WallClock {
    pub fn start_nanos() -> u128 {
        let t0 = std::time::Instant::now();
        t0.elapsed().as_nanos()
    }
}
