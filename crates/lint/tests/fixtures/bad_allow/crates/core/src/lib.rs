pub fn head(xs: &[u8]) -> u8 {
    // lint:allow(panic-in-lib)
    *xs.first().unwrap()
}

pub fn tail(xs: &[u8]) -> u8 {
    // lint:allow(no-such-rule): reason present but the rule id is unknown
    *xs.last().unwrap()
}
