pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn adds() {
        assert_eq!(super::add(2, 3), 5);
    }
}
