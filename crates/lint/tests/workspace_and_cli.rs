//! The self-check that makes the auditor a gate: the workspace at HEAD
//! is clean, every suppression in it is used and reasoned, and the
//! `canids_lint` binary maps findings to exit codes the CI step can
//! key on.

use canids_lint::audit_workspace;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_at_head() {
    let report = audit_workspace(&repo_root()).unwrap();
    assert!(
        report.clean(),
        "the workspace must audit clean:\n{}",
        report.render_text()
    );
    // Every committed suppression pulls its weight: it names a real
    // rule, carries a reason, and actually masks a finding. A stale
    // allow (whose finding was since fixed) fails here so it gets
    // removed rather than rotting.
    assert!(!report.allows.is_empty(), "HEAD carries audited allows");
    for allow in &report.allows {
        assert!(
            !allow.reason.is_empty(),
            "allow without reason at {}:{}",
            allow.file,
            allow.line
        );
        assert!(
            allow.used,
            "stale allow ({}) at {}:{} suppresses nothing — remove it",
            allow.rule.id(),
            allow.file,
            allow.line
        );
    }
}

fn run_lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_canids_lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("canids_lint runs")
}

#[test]
fn cli_exit_codes_gate_ci() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");

    // Findings -> exit 1, for every true-positive fixture.
    for bad in [
        "wallclock_bad",
        "unordered_bad",
        "truncating_bad",
        "float_bad",
        "tensor_reassoc_bad",
        "panic_bad",
        "bad_allow",
    ] {
        let out = run_lint(&fixtures.join(bad), &["--quiet"]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{bad} must fail the build: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    // Audited suppressions and clean trees -> exit 0.
    for good in [
        "wallclock_allowed",
        "unordered_allowed",
        "truncating_allowed",
        "float_allowed",
        "tensor_reassoc_allowed",
        "panic_allowed",
        "clean",
    ] {
        let out = run_lint(&fixtures.join(good), &["--quiet"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{good} must pass: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    // The workspace itself passes — the exact invocation CI runs.
    let out = run_lint(&repo_root(), &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A missing root is a usage error, distinct from findings.
    let out = run_lint(&fixtures.join("no_such_dir"), &["--quiet"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_json_report_enumerates_allows() {
    let json_path = std::env::temp_dir().join("canids_lint_fixture_report.json");
    let out = run_lint(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/panic_allowed"),
        &["--quiet", "--json", json_path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(&json_path).unwrap();
    std::fs::remove_file(&json_path).ok();
    // Hand-rolled JSON: spot-check the schema rather than parse it.
    assert!(json.contains("\"findings\": []"), "{json}");
    assert!(json.contains("\"rule\": \"panic-in-lib\""), "{json}");
    assert!(
        json.contains("caller contract guarantees a non-empty slice"),
        "{json}"
    );
    assert!(json.contains("\"used\": true"), "{json}");
}
