//! The fixture corpus: one true-positive and one audited-suppression
//! mini-workspace per rule, plus a malformed-suppression case and a
//! clean tree. Each fixture is a directory shaped like a real
//! workspace (`crates/<name>/src/lib.rs`) so path-based rule scoping
//! applies exactly as it does at the repository root.

use canids_lint::{audit_workspace, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The bad fixture trips exactly this rule; the allowed twin is clean
/// and records one used suppression for it.
fn check_pair(rule: Rule, bad: &str, allowed: &str) {
    let report = audit_workspace(&fixture(bad)).unwrap();
    assert!(
        report.findings.iter().any(|f| f.rule == rule),
        "{bad} must trip {}: {:?}",
        rule.id(),
        report.findings
    );
    assert!(
        report.findings.iter().all(|f| f.rule == rule),
        "{bad} must trip only {}: {:?}",
        rule.id(),
        report.findings
    );

    let report = audit_workspace(&fixture(allowed)).unwrap();
    assert!(
        report.clean(),
        "{allowed} must be clean: {:?}",
        report.findings
    );
    let used: Vec<_> = report.allows.iter().filter(|a| a.used).collect();
    assert_eq!(used.len(), 1, "{allowed} has one used allow");
    assert_eq!(used[0].rule, rule);
    assert!(!used[0].reason.is_empty(), "allows always carry a reason");
}

#[test]
fn wallclock_in_sim_pair() {
    check_pair(Rule::WallclockInSim, "wallclock_bad", "wallclock_allowed");
}

/// The telemetry module is where the real workspace's single audited
/// wall-clock gate lives — and it gets no blanket exemption: a raw
/// `Instant::now` inside `crates/core/src/telemetry.rs` is still a
/// finding, and only the explicit shim allow suppresses it.
#[test]
fn wallclock_in_telemetry_shim_pair() {
    check_pair(
        Rule::WallclockInSim,
        "wallclock_telemetry",
        "wallclock_telemetry_allowed",
    );
}

#[test]
fn unordered_iteration_pair() {
    check_pair(
        Rule::UnorderedIteration,
        "unordered_bad",
        "unordered_allowed",
    );
}

#[test]
fn truncating_cast_pair() {
    check_pair(Rule::TruncatingCast, "truncating_bad", "truncating_allowed");
}

#[test]
fn float_reassociation_pair() {
    check_pair(Rule::FloatReassociation, "float_bad", "float_allowed");
}

#[test]
fn panic_in_lib_pair() {
    check_pair(Rule::PanicInLib, "panic_bad", "panic_allowed");
}

#[test]
fn tensor_reassociation_pair() {
    check_pair(
        Rule::FloatReassociation,
        "tensor_reassoc_bad",
        "tensor_reassoc_allowed",
    );
}

/// Inside `qnn::tensor` the rule works per function: the pinned-order
/// helpers accumulate freely, while a reassociated kernel is exactly
/// one finding anchored at its `fn` line (one allow per kernel, not
/// one per accumulator lane).
#[test]
fn tensor_blessing_is_function_scoped() {
    let report = audit_workspace(&fixture("tensor_reassoc_bad")).unwrap();
    assert_eq!(
        report.findings.len(),
        1,
        "one finding per unblessed kernel: {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::FloatReassociation);
    assert!(
        f.message.contains("dot_lanes"),
        "finding names the kernel: {}",
        f.message
    );
    // `pinned_sum_f32` accumulates on line 4 of the fixture; the only
    // finding must anchor at the unblessed kernel's `fn` line instead.
    assert_eq!(f.line, 9, "anchored at `pub fn dot_lanes`: {f:?}");
}

#[test]
fn malformed_suppressions_are_findings() {
    let report = audit_workspace(&fixture("bad_allow")).unwrap();
    let bad: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::BadAllow)
        .collect();
    assert_eq!(
        bad.len(),
        2,
        "missing reason and unknown rule are both findings: {:?}",
        report.findings
    );
    // A malformed allow suppresses nothing: the unwraps still surface.
    assert!(report.findings.iter().any(|f| f.rule == Rule::PanicInLib));
}

#[test]
fn clean_tree_is_clean() {
    let report = audit_workspace(&fixture("clean")).unwrap();
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.allows.is_empty());
    assert_eq!(report.files.len(), 1);
}
