//! File walking, rule scoping and suppression handling.
//!
//! The engine walks `crates/`, `examples/` and `tests/` under a
//! workspace root (skipping `vendor/`, `target/` and fixture trees),
//! lexes every `.rs` file, classifies it by path, marks `#[cfg(test)]`
//! / `#[test]` spans, runs the rules and applies
//! `// lint:allow(<rule>): <reason>` suppressions.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Lexed, Tok};
use crate::report::{Allow, Finding, Report};
use crate::rules::{run_rules, Rule};

/// What kind of target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    /// Library source (`crates/<c>/src/**`, outside `src/bin`).
    Lib,
    /// Binary source (`crates/<c>/src/bin/**` or `src/main.rs`).
    Bin,
    /// Example (`examples/**`).
    Example,
    /// Integration or unit test tree (`tests/**`, `crates/<c>/tests/**`).
    Test,
    /// Criterion bench (`crates/<c>/benches/**`).
    Bench,
}

/// A lexed file plus everything the rules need to scope themselves.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Target classification.
    pub context: Context,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Inclusive line ranges inside `#[cfg(test)]` modules and
    /// `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// `true` when `line` sits inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> Context {
    if rel_path.starts_with("examples/") {
        Context::Example
    } else if rel_path.starts_with("tests/") || rel_path.contains("/tests/") {
        Context::Test
    } else if rel_path.contains("/benches/") {
        Context::Bench
    } else if rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs") {
        Context::Bin
    } else {
        Context::Lib
    }
}

/// Marks the line spans of `#[cfg(test)] mod … { … }` and
/// `#[test] fn … { … }` items, so rules scoped to non-test code can
/// skip them. `#[cfg(not(test))]` does not count.
fn test_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let (attr, after) = attr_tokens(tokens, i + 1);
        let names: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
        let is_cfg_test =
            names.first() == Some(&"cfg") && names.contains(&"test") && !names.contains(&"not");
        let is_test_attr = names == ["test"] || names.first() == Some(&"bench");
        if !(is_cfg_test || is_test_attr) {
            i = after;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = after;
        while tokens.get(k).map(|t| t.text.as_str()) == Some("#")
            && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[")
        {
            k = attr_tokens(tokens, k + 1).1;
        }
        // Find the item's opening brace (a `;` first means no body).
        let mut b = k;
        while b < tokens.len() && tokens[b].text != "{" && tokens[b].text != ";" {
            b += 1;
        }
        if b < tokens.len() && tokens[b].text == "{" {
            let mut depth = 1usize;
            let mut e = b + 1;
            while e < tokens.len() && depth > 0 {
                match tokens[e].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
                e += 1;
            }
            spans.push((tokens[i].line, tokens[e.saturating_sub(1)].line));
        }
        i = after;
    }
    spans
}

/// Returns the tokens inside `#[...]` (given `open` pointing at `[`)
/// and the index just past the closing `]`.
fn attr_tokens(tokens: &[Tok], open: usize) -> (&[Tok], usize) {
    let mut depth = 1usize;
    let mut j = open + 1;
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    (&tokens[open + 1..j.saturating_sub(1)], j)
}

/// A parsed suppression comment.
struct ParsedAllow {
    line: usize,
    rule: Result<Rule, String>,
    reason: String,
}

/// Extracts `lint:allow(<rule>): <reason>` from line comments. The
/// directive must start the comment (`// lint:allow(...)`): prose or
/// doc text that merely *mentions* the syntax mid-sentence is not a
/// suppression.
fn parse_allows(comments: &[Comment]) -> Vec<ParsedAllow> {
    let mut out = Vec::new();
    for c in comments {
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with("lint:allow(") {
            continue;
        }
        let rest = &trimmed["lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(ParsedAllow {
                line: c.line,
                rule: Err("unclosed rule id".to_string()),
                reason: String::new(),
            });
            continue;
        };
        let id = rest[..close].trim().to_string();
        let tail = &rest[close + 1..];
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        let rule = Rule::from_id(&id).ok_or(format!("unknown rule `{id}`"));
        let rule = if reason.is_empty() {
            rule.and(Err("missing `: <reason>` justification".to_string()))
        } else {
            rule
        };
        out.push(ParsedAllow {
            line: c.line,
            rule,
            reason: reason.to_string(),
        });
    }
    out
}

/// Audits one source file. `rel_path` drives rule scoping; the path
/// does not need to exist on disk (fixtures use virtual paths).
pub fn audit_source(rel_path: &str, src: &str, report: &mut Report) {
    let lexed = lex(src);
    let spans = test_spans(&lexed.tokens);
    let file = SourceFile {
        rel_path: rel_path.to_string(),
        context: classify(rel_path),
        lexed,
        test_spans: spans,
    };
    let findings = run_rules(&file);
    let parsed = parse_allows(&file.lexed.comments);

    let mut allows: Vec<Allow> = Vec::new();
    for p in &parsed {
        match &p.rule {
            Ok(rule) => allows.push(Allow {
                rule: *rule,
                file: rel_path.to_string(),
                line: p.line,
                reason: p.reason.clone(),
                used: false,
            }),
            Err(msg) => report.findings.push(Finding {
                rule: Rule::BadAllow,
                file: rel_path.to_string(),
                line: p.line,
                col: 1,
                message: format!("{msg}: {}", Rule::BadAllow.explanation()),
            }),
        }
    }

    // An allow suppresses findings of its rule on its own line
    // (trailing form) or on the next line (comment-above form).
    for f in findings {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            report.findings.push(f);
        }
    }
    report.allows.extend(allows);
    report.files.push(rel_path.to_string());
}

/// Directory names never descended into: external code, build output,
/// and lint fixture corpora (which contain deliberate violations).
const SKIP_DIRS: [&str; 4] = ["vendor", "target", "fixtures", ".git"];

/// The root directories audited, relative to the workspace root.
const SCAN_ROOTS: [&str; 3] = ["crates", "examples", "tests"];

/// Collects every `.rs` file under the scan roots, sorted, as paths
/// relative to `root`.
fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rels: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audits the whole workspace under `root`: walks the scan roots and
/// runs every rule over every file.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading a file.
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut report = Report::default();
    for rel in collect_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        audit_source(&rel_str, &src, &mut report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_path() {
        assert_eq!(classify("crates/core/src/serve.rs"), Context::Lib);
        assert_eq!(
            classify("crates/bench/src/bin/bench_summary.rs"),
            Context::Bin
        );
        assert_eq!(classify("examples/quickstart.rs"), Context::Example);
        assert_eq!(classify("tests/serving_api.rs"), Context::Test);
        assert_eq!(
            classify("crates/can/tests/proptest_codec.rs"),
            Context::Test
        );
        assert_eq!(
            classify("crates/bench/benches/substrates.rs"),
            Context::Bench
        );
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn t() {}\n}\n";
        let lexed = lex(src);
        assert!(test_spans(&lexed.tokens).is_empty());
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "fn lib() {}\n#[test]\nfn check() {\n    assert!(true);\n}\n";
        let lexed = lex(src);
        assert_eq!(test_spans(&lexed.tokens), vec![(2, 5)]);
    }

    #[test]
    fn allow_requires_known_rule_and_reason() {
        let mut report = Report::default();
        audit_source(
            "crates/core/src/x.rs",
            "// lint:allow(panic-in-lib) missing colon\nfn f() {}\n\
             // lint:allow(nonsense-rule): reason\nfn g() {}\n",
            &mut report,
        );
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings.iter().all(|f| f.rule == Rule::BadAllow));
    }

    #[test]
    fn trailing_and_above_allow_forms_suppress() {
        let mut report = Report::default();
        audit_source(
            "crates/x/src/a.rs",
            "use std::collections::HashMap; // lint:allow(unordered-iteration): keyed lookup only\n\
             // lint:allow(unordered-iteration): keyed lookup only\n\
             type M = HashMap<u32, u32>;\n",
            &mut report,
        );
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.allows.len(), 2);
        assert!(report.allows.iter().all(|a| a.used));
    }
}
