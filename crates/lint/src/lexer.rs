//! A hand-rolled Rust lexer, sufficient for line/token rule matching.
//!
//! This is not a full parser: it tokenises identifiers, literals and
//! punctuation with line/column spans, skips (but records) comments, and
//! never allocates an AST. Every determinism rule in [`crate::rules`]
//! works over this stream plus the file path, which keeps the auditor
//! dependency-free — `syn` and friends are unreachable in the hermetic
//! build environment, and a token stream is all the five rules need.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `let`, `HashMap`, …).
    Ident,
    /// Integer literal, suffix included (`12`, `0x7FF`, `1_000u64`).
    Int,
    /// Float literal, suffix included (`0.0`, `1e-3`, `2.5f32`).
    Float,
    /// String, raw-string or byte-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-character operators arrive as one token
    /// (`::`, `+=`, `=>`, …).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// A `//` line comment (doc comments included), with its source line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: usize,
    /// Comment text, `//` prefix stripped.
    pub text: String,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so maximal munch wins.
const MULTI_PUNCT: [&str; 18] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "..", "&&", "||",
];

/// Tokenises `src`. Unterminated literals are tolerated (the remainder
/// of the file is consumed as one token): the auditor must never panic
/// on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advances past `n` characters, tracking line/column.
    macro_rules! advance {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Line comments (incl. `///` and `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                advance!(1);
            }
            let text: String = chars[start + 2..i].iter().collect();
            out.comments.push(Comment { line: tline, text });
            continue;
        }

        // Block comments, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            advance!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&chars, i) {
            let start = i;
            // Skip the prefix letters.
            while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
                advance!(1);
            }
            let mut hashes = 0usize;
            while chars.get(i) == Some(&'#') {
                hashes += 1;
                advance!(1);
            }
            advance!(1); // opening quote
            let raw = hashes > 0
                || chars.get(start).map(|&p| p == 'r') == Some(true)
                || chars.get(start + 1) == Some(&'r');
            loop {
                match chars.get(i) {
                    None => break,
                    Some('\\') if !raw => advance!(2),
                    Some('"') => {
                        advance!(1);
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(i) == Some(&'#') {
                            seen += 1;
                            advance!(1);
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                    Some(_) => advance!(1),
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Plain strings.
        if c == '"' {
            let start = i;
            advance!(1);
            while i < chars.len() {
                match chars[i] {
                    '\\' => advance!(2),
                    '"' => {
                        advance!(1);
                        break;
                    }
                    _ => advance!(1),
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Lifetimes vs character literals.
        if c == '\'' {
            let start = i;
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(n) if n == '_' || n.is_alphabetic()) && after != Some('\'');
            if is_lifetime {
                advance!(1);
                while matches!(chars.get(i), Some(&n) if n == '_' || n.is_alphanumeric()) {
                    advance!(1);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                advance!(1);
                if chars.get(i) == Some(&'\\') {
                    advance!(2);
                } else {
                    advance!(1);
                }
                if chars.get(i) == Some(&'\'') {
                    advance!(1);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numbers (int or float, suffix consumed into the token).
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            let radix_prefix = c == '0'
                && matches!(
                    chars.get(i + 1),
                    Some(&'x') | Some(&'o') | Some(&'b') | Some(&'X')
                );
            advance!(1);
            if radix_prefix {
                advance!(1);
                while matches!(chars.get(i), Some(&n) if n.is_ascii_alphanumeric() || n == '_') {
                    advance!(1);
                }
            } else {
                while matches!(chars.get(i), Some(&n) if n.is_ascii_digit() || n == '_') {
                    advance!(1);
                }
                // Fractional part: a dot followed by a digit.
                if chars.get(i) == Some(&'.')
                    && matches!(chars.get(i + 1), Some(n) if n.is_ascii_digit())
                {
                    is_float = true;
                    advance!(1);
                    while matches!(chars.get(i), Some(&n) if n.is_ascii_digit() || n == '_') {
                        advance!(1);
                    }
                }
                // Exponent.
                if matches!(chars.get(i), Some(&'e') | Some(&'E'))
                    && matches!(
                        chars.get(i + 1),
                        Some(n) if n.is_ascii_digit() || *n == '+' || *n == '-'
                    )
                {
                    is_float = true;
                    advance!(2);
                    while matches!(chars.get(i), Some(&n) if n.is_ascii_digit() || n == '_') {
                        advance!(1);
                    }
                }
                // Type suffix (`u64`, `f32`, …).
                let suffix_start = i;
                while matches!(chars.get(i), Some(&n) if n.is_alphanumeric() || n == '_') {
                    advance!(1);
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix.starts_with('f') {
                    is_float = true;
                }
            }
            out.tokens.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifiers and keywords.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while matches!(chars.get(i), Some(&n) if n == '_' || n.is_alphanumeric()) {
                advance!(1);
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Punctuation, multi-character operators first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let len = op.chars().count();
            if i + len <= chars.len() && chars[i..i + len].iter().collect::<String>() == op {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: op.to_string(),
                    line: tline,
                    col: tcol,
                });
                advance!(len);
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        advance!(1);
    }

    out
}

/// `true` when position `i` starts a raw/byte string prefix
/// (`r"`, `r#`, `b"`, `br`, `rb` forms), not a plain identifier.
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut prefix = 0usize;
    while prefix < 2 && matches!(chars.get(j), Some(&'r') | Some(&'b')) {
        j += 1;
        prefix += 1;
    }
    if prefix == 0 {
        return false;
    }
    match chars.get(j) {
        Some(&'"') => true,
        Some(&'#') => {
            // Raw-string hashes must end in a quote.
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            chars.get(j) == Some(&'"')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_skipped_but_recorded() {
        let l = lex("let x = 1; // lint:allow(rule): reason\n/* HashMap */ let y = 2;");
        assert!(!idents("let x = 1; // HashMap").contains(&"HashMap".to_string()));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("lint:allow"));
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        for src in [
            r#"let s = "HashMap::new()";"#,
            r##"let s = r#"Instant::now"#;"##,
            r#"let b = b"SystemTime";"#,
        ] {
            let ids = idents(src);
            assert!(
                !ids.iter()
                    .any(|t| t == "HashMap" || t == "Instant" || t == "SystemTime"),
                "{src} leaked {ids:?}"
            );
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let l = lex("0x7FF 1_000u64 0.0 2.5f32 1e-3 3f64 0..8");
        let kinds: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(kinds[0], ("0x7FF".into(), TokKind::Int));
        assert_eq!(kinds[1], ("1_000u64".into(), TokKind::Int));
        assert_eq!(kinds[2], ("0.0".into(), TokKind::Float));
        assert_eq!(kinds[3], ("2.5f32".into(), TokKind::Float));
        assert_eq!(kinds[4], ("1e-3".into(), TokKind::Float));
        assert_eq!(kinds[5], ("3f64".into(), TokKind::Float));
        // `0..8` must stay integer, integer — not a malformed float.
        assert_eq!(kinds[6], ("0".into(), TokKind::Int));
        assert_eq!(kinds[7], ("8".into(), TokKind::Int));
    }

    #[test]
    fn multi_char_punct_is_one_token() {
        let l = lex("a += b; c::d(); e => f; g..=h");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn positions_are_one_based_lines() {
        let l = lex("let a = 1;\nlet b = 2;");
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 2);
        assert_eq!(b.col, 5);
    }
}
