//! # `canids-lint` — the workspace determinism auditor
//!
//! Every headline guarantee in this repro rests on bit-for-bit
//! determinism: the event-driven transport is pinned to the analytic
//! gateway path via `f64::to_bits`, the event-skip simulator and the
//! harness unification were accepted only because reports matched digit
//! for digit, and the reassociated SIMD `linear_forward` is gated on
//! being able to say which paths may reorder float sums. This crate is
//! the static enforcement of those invariants: a dependency-free,
//! token-level analysis pass (hand-rolled lexer, no `syn` — crates.io
//! is unreachable here) with five rules, an explicit audited
//! suppression syntax, and a JSON report CI can trend.
//!
//! ## Rules
//!
//! | id | guards against |
//! |----|----------------|
//! | `wallclock-in-sim` | `Instant::now`/`SystemTime` in simulated or report paths |
//! | `unordered-iteration` | `HashMap`/`HashSet` (randomised iteration order) |
//! | `truncating-cast` | narrowing `as` casts on frame-ID/DLC values |
//! | `float-reassociation` | float accumulation outside `qnn::tensor`'s pinned-order helpers |
//! | `panic-in-lib` | `unwrap`/`expect`/`panic!` in `canids-core` library code |
//!
//! ## Suppression
//!
//! ```text
//! let t0 = Instant::now(); // lint:allow(wallclock-in-sim): measures real service time
//! ```
//!
//! The reason is mandatory; a malformed allow is itself a finding
//! (`bad-allow`). An allow may also sit on its own comment line
//! directly above the offending line. The JSON report enumerates every
//! allow with its rule id and reason, so suppressions stay auditable
//! and their count per rule can be trended.
//!
//! ## Example
//!
//! ```
//! use canids_lint::{audit_source, Report, Rule};
//!
//! let mut report = Report::default();
//! audit_source(
//!     "crates/core/src/example.rs",
//!     "pub fn f() -> u32 { None::<u32>.unwrap() }",
//!     &mut report,
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, Rule::PanicInLib);
//! ```

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{audit_source, audit_workspace, classify, Context, SourceFile};
pub use report::{Allow, Finding, Report};
pub use rules::{Rule, ALL_RULES};
