//! The `canids_lint` CI gate.
//!
//! Usage: `canids_lint [--root <dir>] [--json <path>] [--quiet]`
//!
//! Walks `crates/`, `examples/` and `tests/` under the root (default:
//! the current directory), runs the five determinism rules, prints
//! findings, optionally writes the JSON report, and exits non-zero when
//! any finding survives suppression.

use std::path::PathBuf;
use std::process::ExitCode;

use canids_lint::audit_workspace;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("canids_lint [--root <dir>] [--json <path>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("canids_lint: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("canids_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("canids_lint: {msg}");
    eprintln!("usage: canids_lint [--root <dir>] [--json <path>] [--quiet]");
    ExitCode::from(2)
}
