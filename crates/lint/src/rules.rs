//! The five determinism rules.
//!
//! Each rule guards one way the workspace's bit-exactness guarantees
//! (event-skip equivalence, analytic-vs-event-driven transport pinning,
//! digit-for-digit `BENCH_<n>.json` baselines) have historically been —
//! or could be — broken. Detection is token-level and heuristic by
//! design (see [`crate::lexer`]); precision comes from the explicit,
//! audited `// lint:allow(<rule>): <reason>` escape hatch, not from type
//! inference.

use crate::engine::{Context, SourceFile};
use crate::lexer::{Tok, TokKind};
use crate::report::Finding;

/// Typed rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now`/`SystemTime` in simulated or report-producing
    /// code. Wall-clock reads make replays irreproducible; simulated
    /// time must come from `SimTime`. The single genuine wall-clock
    /// read lives behind `canids_core::telemetry::WallClock` — every
    /// measured path (the software-backend service timer, the bench
    /// harness) routes through that shim, so the workspace carries
    /// exactly one audited allow for this rule. The telemetry module
    /// gets no blanket exemption: a raw `Instant::now` there is still
    /// a finding.
    WallclockInSim,
    /// `HashMap`/`HashSet` anywhere in the workspace. Their iteration
    /// order is randomised per process, so any fold, report line or
    /// float accumulation over them diverges run to run; `BTreeMap`/
    /// `BTreeSet` provide the same API with a deterministic order.
    UnorderedIteration,
    /// A narrowing `as` cast in frame-ID/DLC context. Silent `as`
    /// truncation is the exact bug class behind the 29-bit extended-ID
    /// fix in PR 2; ID/DLC values must go through the checked
    /// constructors (`CanId::standard_from_raw`, `Dlc::from_wire`,
    /// `try_from`).
    TruncatingCast,
    /// Float accumulation (`.sum()`, additive `fold`, `+=` on a float
    /// local) outside the pinned-order kernel helpers in `qnn::tensor`.
    /// Summation order is the contract that lets the reassociated SIMD
    /// kernel ship on the inference path while training keeps the
    /// pinned order — accumulation anywhere else must name its order.
    FloatReassociation,
    /// `unwrap`/`expect`/`panic!` in non-test `canids-core` library
    /// code. Library panics take down whole serving harnesses; fallible
    /// paths must return typed `CoreError`s, and invariant-backed
    /// panics must document the invariant in an allow.
    PanicInLib,
    /// A malformed `lint:allow` comment (unknown rule id or missing
    /// `: <reason>`). Suppression must stay auditable, so a broken
    /// suppression is itself a finding.
    BadAllow,
}

/// Every real (matchable) rule, in documentation order.
pub const ALL_RULES: [Rule; 5] = [
    Rule::WallclockInSim,
    Rule::UnorderedIteration,
    Rule::TruncatingCast,
    Rule::FloatReassociation,
    Rule::PanicInLib,
];

impl Rule {
    /// Stable kebab-case id used in reports and `lint:allow`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallclockInSim => "wallclock-in-sim",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::TruncatingCast => "truncating-cast",
            Rule::FloatReassociation => "float-reassociation",
            Rule::PanicInLib => "panic-in-lib",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule id (as written inside `lint:allow(...)`).
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// One-line rationale attached to every finding of this rule.
    pub fn explanation(self) -> &'static str {
        match self {
            Rule::WallclockInSim => {
                "wall-clock time in a simulated/report path breaks replay determinism; \
                 use SimTime, or justify with lint:allow(wallclock-in-sim)"
            }
            Rule::UnorderedIteration => {
                "HashMap/HashSet iteration order is randomised per process; use \
                 BTreeMap/BTreeSet or sort before iterating"
            }
            Rule::TruncatingCast => {
                "narrowing `as` cast on an ID/DLC-typed value can silently truncate \
                 (the PR 2 29-bit bug class); use the checked conversion helpers"
            }
            Rule::FloatReassociation => {
                "float accumulation outside qnn::tensor's pinned-order helpers; summation \
                 order is part of the bit-exactness contract — route through the pinned \
                 helpers or document the fixed order with lint:allow(float-reassociation)"
            }
            Rule::PanicInLib => {
                "panicking in canids-core library code; return a typed CoreError or \
                 document the invariant with lint:allow(panic-in-lib)"
            }
            Rule::BadAllow => "malformed lint:allow comment",
        }
    }
}

/// Runs every rule over one lexed file, returning raw findings
/// (suppression is applied later by the engine).
pub fn run_rules(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    wallclock_in_sim(file, &mut out);
    unordered_iteration(file, &mut out);
    truncating_cast(file, &mut out);
    float_reassociation(file, &mut out);
    panic_in_lib(file, &mut out);
    // One finding per (rule, line): a single offending line never needs
    // more than one allow.
    out.sort_by_key(|a| (a.line, a.col, a.rule));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

fn finding(file: &SourceFile, rule: Rule, tok: &Tok, what: &str) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message: format!("{what}: {}", rule.explanation()),
    }
}

/// Rule 1: `Instant::now(...)` calls and any `SystemTime` mention in
/// non-test lib/bin code.
fn wallclock_in_sim(file: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(file.context, Context::Lib | Context::Bin) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" => text(toks, i + 1) == Some("::") && text(toks, i + 2) == Some("now"),
            "SystemTime" => true,
            _ => false,
        };
        if hit {
            out.push(finding(
                file,
                Rule::WallclockInSim,
                t,
                &format!("`{}`", t.text),
            ));
        }
    }
}

/// Rule 2: any `HashMap`/`HashSet` identifier, in every context — test
/// code included, because statistical assertions that fold floats over
/// an unordered map (the PR 4 jitter pins) are exactly as order-sensitive
/// as report code.
fn unordered_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in &file.lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(finding(
                file,
                Rule::UnorderedIteration,
                t,
                &format!("`{}`", t.text),
            ));
        }
    }
}

/// Narrow integer targets a truncating `as` cast can hit.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Rule 3: `<expr> as <narrow-int>` where the surrounding statement or
/// line names an ID/DLC-like identifier.
fn truncating_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW_INTS.contains(&target.text.as_str()) {
            continue;
        }
        // `as` only narrows when the source is wider; token-level we
        // approximate "ID/DLC-typed source" by the identifiers in reach.
        let in_reach = statement_range(toks, i, &[";", "{", "}", ","])
            .chain(same_line(toks, t.line))
            .any(|j| toks[j].kind == TokKind::Ident && is_id_like(&toks[j].text));
        if in_reach {
            out.push(finding(
                file,
                Rule::TruncatingCast,
                t,
                &format!("`as {}` on an ID/DLC-context value", target.text),
            ));
        }
    }
}

/// `true` for identifiers that look frame-ID- or DLC-typed.
fn is_id_like(t: &str) -> bool {
    let t = t.to_ascii_lowercase();
    t == "id"
        || t == "ids"
        || t == "dlc"
        || t == "canid"
        || t == "frameid"
        || t.starts_with("id_")
        || t.ends_with("_id")
        || t.contains("_id_")
        || t.ends_with("_ids")
        || t.starts_with("dlc_")
        || t.ends_with("_dlc")
        || t.contains("_dlc_")
}

/// The pinned-order accumulation primitives in `qnn::tensor` — the
/// functions that *define* the workspace's summation order. Float
/// accumulation inside these bodies is the contract, not a violation;
/// accumulation in any other `tensor.rs` function is a reassociation
/// point and must carry its own audited allow. Today exactly one such
/// site exists: `linear_forward_fast_into`, the inference-path kernel.
const PINNED_TENSOR_FNS: [&str; 6] = [
    "dot8",
    "dot",
    "pinned_sum_f32",
    "pinned_sum_f64",
    "linear_backward_input",
    "linear_backward_params",
];

/// Rule 4: float accumulation outside `qnn::tensor`'s pinned-order
/// helpers.
fn float_reassociation(file: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(file.context, Context::Lib | Context::Bin) {
        return;
    }
    // `qnn::tensor` defines the accumulation order, so it gets
    // function-level treatment instead of the token-level scan: each
    // non-blessed function that accumulates floats is one finding,
    // anchored at its `fn` line, so a reassociated kernel is exactly one
    // auditable allow and nothing else in the file can silently reorder.
    if file.rel_path.ends_with("crates/qnn/src/tensor.rs")
        || file.rel_path == "crates/qnn/src/tensor.rs"
    {
        tensor_float_reassociation(file, out);
        return;
    }
    let toks = &file.lexed.tokens;

    // Track local float bindings: `let mut x = 0.0;` / `let mut x: f64`.
    let float_locals = collect_float_locals(toks);

    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        // (a) `.sum()` / `.sum::<fN>()` with a float type in reach.
        if t.kind == TokKind::Ident && t.text == "sum" && text(toks, i.wrapping_sub(1)) == Some(".")
        {
            // `.sum::<uN/iN>()` accumulates integers exactly — the
            // turbofish names the accumulator type, so trust it.
            if text(toks, i + 1) == Some("::")
                && text(toks, i + 2) == Some("<")
                && toks.get(i + 3).is_some_and(|ty| is_int_type(&ty.text))
            {
                continue;
            }
            let floaty = statement_range(toks, i, &[";", "{", "}"])
                .chain(same_line(toks, t.line))
                .any(|j| is_float_hint(&toks[j]));
            if floaty {
                out.push(finding(file, Rule::FloatReassociation, t, "float `.sum()`"));
            }
            continue;
        }
        // (b) `.fold(...)` whose arguments add, with a float in reach.
        if t.kind == TokKind::Ident
            && t.text == "fold"
            && text(toks, i.wrapping_sub(1)) == Some(".")
        {
            if let Some(args) = call_args(toks, i + 1) {
                let adds = args.clone().any(|j| {
                    toks[j].kind == TokKind::Punct && (toks[j].text == "+" || toks[j].text == "+=")
                });
                let floaty = args.clone().any(|j| is_float_hint(&toks[j]))
                    || statement_range(toks, i, &[";", "{", "}"]).any(|j| is_float_hint(&toks[j]));
                if adds && floaty {
                    out.push(finding(
                        file,
                        Rule::FloatReassociation,
                        t,
                        "additive float `.fold(..)`",
                    ));
                }
            }
            continue;
        }
        // (c) `x += ...` where `x` is a tracked float local.
        if t.kind == TokKind::Punct && t.text == "+=" && i > 0 {
            let lhs = &toks[i - 1];
            if lhs.kind == TokKind::Ident && float_locals.contains(&lhs.text) {
                out.push(finding(
                    file,
                    Rule::FloatReassociation,
                    lhs,
                    &format!("`{} +=` float accumulation", lhs.text),
                ));
            }
        }
    }
}

/// Rule 4's function-level pass over `qnn::tensor` itself: flags every
/// non-test function whose body accumulates (`+=`, `.sum`, `.fold`)
/// unless the function is one of the [`PINNED_TENSOR_FNS`]. The finding
/// anchors at the `fn` line, so one reassociated kernel needs exactly
/// one `lint:allow(float-reassociation)` regardless of how many
/// accumulator lanes its body carries.
fn tensor_float_reassociation(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "fn" || file.is_test_line(t.line) {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident {
            continue;
        }
        // The body is the first brace-matched block after the signature.
        let mut j = i + 2;
        while j < toks.len() && text(toks, j) != Some("{") {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &toks[body_start..j.min(toks.len())];
        // Float accumulation only: `+=` into an indexed slot (the lane
        // arrays are all f32 here) or a tracked float local. Integer
        // loop counters (`o += 8`) are not accumulation.
        let float_locals = collect_float_locals(body);
        let accumulates = body.iter().enumerate().any(|(k, b)| {
            if b.kind == TokKind::Punct && b.text == "+=" && k > 0 {
                let lhs = &body[k - 1];
                return lhs.text == "]"
                    || (lhs.kind == TokKind::Ident && float_locals.contains(&lhs.text));
            }
            b.kind == TokKind::Ident
                && (b.text == "sum" || b.text == "fold")
                && k > 0
                && body[k - 1].text == "."
        });
        if accumulates && !PINNED_TENSOR_FNS.contains(&name.text.as_str()) {
            out.push(finding(
                file,
                Rule::FloatReassociation,
                t,
                &format!(
                    "fn `{}` accumulates floats outside the pinned-order helpers",
                    name.text
                ),
            ));
        }
    }
}

/// Names bound by `let [mut] NAME` where the initialiser or type
/// annotation is visibly floating-point.
fn collect_float_locals(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "let" {
            continue;
        }
        let mut j = i + 1;
        if text(toks, j) == Some("mut") {
            j += 1;
        }
        let Some(name) = toks.get(j) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        // Scan the rest of the statement for a float hint. A float
        // literal that is merely the RHS of a comparison (`x == 0.0`)
        // says nothing about the binding's own type.
        let stmt: Vec<usize> = statement_range(toks, j, &[";", "{", "}"]).collect();
        let floaty = stmt.iter().any(|&k| {
            is_float_hint(&toks[k])
                && !(k > 0
                    && toks[k - 1].kind == TokKind::Punct
                    && matches!(
                        toks[k - 1].text.as_str(),
                        "==" | "!=" | "<" | ">" | "<=" | ">="
                    ))
        });
        if !floaty {
            continue;
        }
        // A trailing integer cast (`.. as i64;`) pins the binding to an
        // integer type even when the expression passes through floats.
        let last_as = stmt
            .iter()
            .rev()
            .find(|&&k| toks[k].kind == TokKind::Ident && toks[k].text == "as");
        if let Some(&k) = last_as {
            if toks.get(k + 1).is_some_and(|ty| is_int_type(&ty.text)) {
                continue;
            }
        }
        names.push(name.text.clone());
    }
    names
}

/// `true` when the token indicates floating-point arithmetic.
fn is_float_hint(t: &Tok) -> bool {
    t.kind == TokKind::Float || (t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
}

/// `true` for any primitive integer type name.
fn is_int_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// Rule 5: `unwrap()` / `expect(..)` / `panic!` in `canids-core`
/// non-test library code.
fn panic_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.context != Context::Lib || !file.rel_path.starts_with("crates/core/src") {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                text(toks, i.wrapping_sub(1)) == Some(".") && text(toks, i + 1) == Some("(")
            }
            "panic" => text(toks, i + 1) == Some("!"),
            _ => false,
        };
        if hit {
            out.push(finding(file, Rule::PanicInLib, t, &format!("`{}`", t.text)));
        }
    }
}

/// The text of token `i`, if any.
fn text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

/// Token indices of the statement around `i`: walk back and forward to
/// the nearest boundary punctuation (exclusive).
fn statement_range<'a>(
    toks: &'a [Tok],
    i: usize,
    boundaries: &'a [&'a str],
) -> impl Iterator<Item = usize> + Clone + 'a {
    let is_boundary = move |j: usize| {
        toks[j].kind == TokKind::Punct && boundaries.contains(&toks[j].text.as_str())
    };
    let mut start = i;
    while start > 0 && !is_boundary(start - 1) {
        start -= 1;
    }
    let mut end = i;
    while end + 1 < toks.len() && !is_boundary(end + 1) {
        end += 1;
    }
    start..=end
}

/// Token indices on the given source line.
fn same_line(toks: &[Tok], line: usize) -> impl Iterator<Item = usize> + Clone + '_ {
    (0..toks.len()).filter(move |&j| toks[j].line == line)
}

/// Token indices of a call's arguments: `open` must point at `(`;
/// returns the indices strictly inside the matching parentheses.
fn call_args(toks: &[Tok], open: usize) -> Option<std::ops::Range<usize>> {
    if text(toks, open) != Some("(") {
        // Tolerate a turbofish between the method name and the parens.
        return None;
    }
    let mut depth = 1usize;
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    Some(open + 1..j.saturating_sub(1))
}
