//! Findings, suppressions and the JSON report.
//!
//! The report is hand-serialised (no serde: the auditor is
//! dependency-free) into a stable, diffable shape so CI can trend
//! finding and allow counts per rule across PRs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Rule;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path (`/`-separated on every platform).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What was matched and why it endangers bit-exactness.
    pub message: String,
}

/// One `// lint:allow(<rule>): <reason>` suppression found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// The mandatory justification after the colon.
    pub reason: String,
    /// Whether the allow actually matched (and suppressed) a finding.
    pub used: bool,
}

/// Full audit outcome over a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, workspace-relative, sorted.
    pub files: Vec<String>,
    /// Unsuppressed findings (these fail CI), in path order.
    pub findings: Vec<Finding>,
    /// Every suppression encountered, in path order.
    pub allows: Vec<Allow>,
}

impl Report {
    /// `true` when the audit passed (no findings survive suppression).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per rule id, sorted by rule.
    pub fn finding_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule.id()).or_insert(0) += 1;
        }
        m
    }

    /// Allows per rule id, sorted by rule.
    pub fn allow_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for a in &self.allows {
            *m.entry(a.rule.id()).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable summary, one line per finding plus totals.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}:{}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.id(),
                f.message
            );
        }
        let _ = writeln!(
            s,
            "canids_lint: {} file(s), {} finding(s), {} allow(s)",
            self.files.len(),
            self.findings.len(),
            self.allows.len()
        );
        for (rule, n) in self.allow_counts() {
            let _ = writeln!(s, "  allow[{rule}] = {n}");
        }
        s
    }

    /// The JSON report: findings, every allow with its rule id and
    /// reason, and per-rule counts for trending.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files.len());
        let _ = writeln!(s, "  \"clean\": {},", self.clean());

        s.push_str("  \"finding_counts\": {");
        push_count_map(&mut s, &self.finding_counts());
        s.push_str("},\n");

        s.push_str("  \"allow_counts\": {");
        push_count_map(&mut s, &self.allow_counts());
        s.push_str("},\n");

        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");

        s.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(a.rule.id()),
                json_str(&a.file),
                a.line,
                json_str(&a.reason),
                a.used
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn push_count_map(s: &mut String, m: &BTreeMap<&'static str, usize>) {
    for (i, (rule, n)) in m.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{}: {}", json_str(rule), n);
    }
}

/// Minimal JSON string escaping.
fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::default();
        r.files.push("a.rs".into());
        r.findings.push(Finding {
            rule: Rule::UnorderedIteration,
            file: "a.rs".into(),
            line: 3,
            col: 1,
            message: "say \"hi\"\n".into(),
        });
        r.allows.push(Allow {
            rule: Rule::PanicInLib,
            file: "a.rs".into(),
            line: 9,
            reason: "invariant".into(),
            used: true,
        });
        let j = r.render_json();
        assert!(j.contains("\"unordered-iteration\": 1"));
        assert!(j.contains("\"panic-in-lib\": 1"));
        assert!(j.contains("\\\"hi\\\"\\n"));
        assert!(j.contains("\"used\": true"));
        assert!(!r.clean());
    }
}
