//! Scoped-thread scatter/gather shared by the scenario-parallel paths
//! (bit-width DSE, multi-pipeline runs, multi-IP compilation, line-rate
//! sweeps, sharded replay, population serving).
//!
//! The scheduler is a deterministic work-stealing chunk queue: items are
//! pre-split into contiguous chunks dealt round-robin onto per-worker
//! deques; each worker drains its own deque from the front and, when
//! empty, steals whole chunks from the *back* of its neighbours in a
//! fixed scan order. Stealing balances skewed item costs (one slow
//! tenant/shard no longer pins a whole contiguous slice to one thread)
//! while the schedule stays execution-only: results are gathered by item
//! index, so any worker count and any steal interleaving return the
//! identical vector.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `f` over every item on a bounded scoped-thread pool (at most
/// `available_parallelism` workers, so a long item list cannot
/// oversubscribe the host) and gathers the results in input order. A
/// panic in any `f` propagates when the scope closes.
pub(crate) fn scoped_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(1, |c| c.get());
    scoped_map_with(items, workers, f)
}

/// [`scoped_map`] with an explicit pool size: exactly
/// `workers.clamp(1, items.len())` threads share the chunk deques. The
/// pool size is execution-only — results are gathered in input order
/// whatever the steal interleaving, so any worker count returns the
/// identical vector.
pub(crate) fn scoped_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    // Chunk granularity: aim for ~8 steals' worth of slack per worker so
    // the deques have something to steal, floor 1 so short lists still
    // split.
    let chunk = (n / (workers * 8)).max(1);
    let deques: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Deal chunks round-robin so every worker starts with local work and
    // the initial ownership is a pure function of (n, workers).
    let mut start = 0usize;
    let mut w = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        // lint:allow(panic-in-lib): chunk deque mutexes cannot be poisoned before the scope spawns
        deques[w].lock().expect("deque lock").push_back(start..end);
        start = end;
        w = (w + 1) % workers;
    }
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let f = &f;
            scope.spawn(move || loop {
                // Own deque first (front: cache-warm FIFO order) …
                // lint:allow(panic-in-lib): a poisoned deque lock means a sibling worker already panicked
                let mut job = deques[me].lock().expect("own deque lock").pop_front();
                if job.is_none() {
                    // … then steal whole chunks from the back of the
                    // victims, scanning neighbours in a fixed order.
                    for step in 1..workers {
                        let victim = (me + step) % workers;
                        // lint:allow(panic-in-lib): a poisoned deque lock means a sibling worker already panicked
                        let stolen = deques[victim].lock().expect("victim deque lock").pop_back();
                        if stolen.is_some() {
                            job = stolen;
                            break;
                        }
                    }
                }
                let Some(range) = job else { break };
                for i in range {
                    let r = f(&items[i]);
                    // lint:allow(panic-in-lib): rx is dropped only after the scope joins every worker
                    tx.send((i, r)).expect("gather receiver outlives the scope");
                }
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        // lint:allow(panic-in-lib): the deques cover 0..n exactly once, so every index arrives before rx closes
        .map(|r| r.expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..32).collect();
        let out = scoped_map(&items, |&i| i * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = scoped_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_worker_counts_agree_with_default() {
        // The pool size is an execution knob, never a semantic one:
        // every worker count (including a degenerate 0, clamped to 1,
        // and a pool far wider than the item list) gathers the same
        // in-order result vector.
        let items: Vec<usize> = (0..64).collect();
        let expect: Vec<usize> = items.iter().map(|&i| i * i).collect();
        for workers in [0usize, 1, 2, 3, 64, 1000] {
            let out = scoped_map_with(&items, workers, |&i| i * i);
            assert_eq!(out, expect, "workers = {workers}");
        }
        assert_eq!(scoped_map(&items, |&i| i * i), expect);
    }

    #[test]
    fn item_count_beyond_core_count_completes() {
        // More items than any plausible worker pool: the bounded pool
        // must still process every item exactly once, in order.
        let items: Vec<usize> = (0..500).collect();
        let out = scoped_map(&items, |&i| i + 1);
        assert_eq!(out, (1..=500).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_item_costs_still_gather_in_order() {
        // One pathologically slow item: stealing must redistribute the
        // rest without perturbing the gathered order.
        let items: Vec<usize> = (0..40).collect();
        let out = scoped_map_with(&items, 4, |&i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 3
        });
        assert_eq!(out, (0..40).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_dealing_covers_every_index_exactly_once() {
        // Mirror the dealing loop: for a spread of (n, workers) shapes
        // the round-robin chunk split must partition 0..n exactly.
        for n in [1usize, 2, 7, 8, 9, 63, 64, 65, 500] {
            for workers in [1usize, 2, 3, 8, 64] {
                let workers = workers.clamp(1, n);
                let chunk = (n / (workers * 8)).max(1);
                let mut seen = vec![0u32; n];
                let mut start = 0usize;
                while start < n {
                    let end = (start + chunk).min(n);
                    for slot in &mut seen[start..end] {
                        *slot += 1;
                    }
                    start = end;
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} workers={workers}");
            }
        }
    }
}
